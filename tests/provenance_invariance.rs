//! Shard-size and warm/cold invariance of the provenance index.
//!
//! Provenance is part of the deterministic output of a run: for a fixed
//! corpus and options, the serialized [`ProvenanceIndex`] and the report's
//! invariant `provenance` section must be byte-identical whatever
//! `shard_size` slices the corpus into, and whether shard results come
//! from a cold pipeline or replay out of a warm artifact cache. The
//! per-spec evidence cap makes this non-trivial — the streaming top-k
//! merge must keep the *globally* strongest evidence, not whatever the
//! last shard contributed.
//!
//! This test lives alone in its own binary: the telemetry registry and the
//! store incident log are process-global and are reset between runs.

use std::fs;

use uspec::{provenance_section, run_pipeline_cached, PipelineOptions};
use uspec_corpus::{generate_corpus, java_library, GenOptions, SliceSource};
use uspec_store::ArtifactStore;

/// One full pipeline run from a clean telemetry state. Returns the
/// serialized provenance index and the serialized invariant `provenance`
/// report section.
fn run(
    sources: &[(String, String)],
    shard_size: usize,
    store: Option<&ArtifactStore>,
) -> (String, String) {
    uspec_telemetry::reset();
    uspec_store::incidents::reset();
    let lib = java_library();
    let opts = PipelineOptions {
        shard_size,
        ..PipelineOptions::default()
    };
    let result = run_pipeline_cached(&SliceSource::new(sources), &lib.api_table(), &opts, store);
    let index = serde_json::to_string_pretty(&result.provenance).unwrap();
    let report = uspec::build_run_report("learn", &result, &opts, 0.6, 0.0);
    let section = serde_json::to_string_pretty(&report.invariant().provenance).unwrap();
    (index, section)
}

#[test]
fn provenance_is_invariant_across_shard_sizes_and_cache_state() {
    let lib = java_library();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 120,
            seed: 11,
            ..GenOptions::default()
        },
    );
    let sources: Vec<(String, String)> = files.into_iter().map(|f| (f.name, f.source)).collect();

    // Baseline at shard_size 64, then a shard size that slices mid-file
    // groups (17) and one that puts the whole corpus in a single shard
    // (1000 > 120).
    let (index64, section64) = run(&sources, 64, None);
    assert!(index64.len() > 2, "provenance was recorded");
    assert!(
        section64.contains("evidence_total"),
        "invariant report carries the provenance section: {section64}"
    );

    for shard_size in [17, 1000] {
        let (index, section) = run(&sources, shard_size, None);
        assert_eq!(
            index, index64,
            "shard_size {shard_size} changed the provenance index"
        );
        assert_eq!(
            section, section64,
            "shard_size {shard_size} changed the report's provenance section"
        );
    }

    // Cold cache (all misses, provenance computed and stored) and warm
    // cache (provenance replayed from the store) must both reproduce the
    // uncached bytes — including counterfactuals, which are attached after
    // the shard merge and are never part of cached payloads.
    let dir = std::env::temp_dir().join(format!("uspec-prov-inv-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let store = ArtifactStore::open(&dir).unwrap();

    let (index_cold, section_cold) = run(&sources, 64, Some(&store));
    assert_eq!(index_cold, index64, "cold cache changed the provenance");
    assert_eq!(section_cold, section64);

    let (index_warm, section_warm) = run(&sources, 64, Some(&store));
    assert_eq!(index_warm, index64, "warm cache changed the provenance");
    assert_eq!(section_warm, section64);

    // The section agrees with recomputing it directly from the index.
    uspec_telemetry::reset();
    uspec_store::incidents::reset();
    let opts = PipelineOptions {
        shard_size: 64,
        ..PipelineOptions::default()
    };
    let result = run_pipeline_cached(&SliceSource::new(&sources), &lib.api_table(), &opts, None);
    let direct = serde_json::to_string_pretty(&provenance_section(&result.provenance)).unwrap();
    assert_eq!(direct, section64);

    let _ = fs::remove_dir_all(&dir);
}
