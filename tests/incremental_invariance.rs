//! Incremental-rebuild invariance: an edit re-runs only its cone.
//!
//! The job graph's core promise has two halves. *Correctness*: a warm
//! rerun after an edit produces specs byte-identical to a from-scratch run
//! of the edited corpus. *Minimality*: the `jobs.*` counters prove that
//! only the edited file's cone executed — and, thanks to value-digest
//! early cutoff, that the cone stops at the digest layer when the edit
//! does not change the file's extracted samples or blueprints.
//!
//! Two edits are exercised:
//!
//! * a **benign** edit (an appended function with no API calls) — the
//!   file's five per-file jobs re-execute, but the model is never even
//!   demanded and the corpus score artifact is a store hit;
//! * an **API** edit (an appended store/retrieve idiom) — samples and
//!   blueprints genuinely change, so the model retrains and the corpus
//!   re-scores: seven executions, three invalidated cone roots.
//!
//! This test lives alone in its own binary: the telemetry registry is
//! process-global and the counter assertions need
//! `uspec_telemetry::reset()` between runs.

use std::fs;

use uspec::{run_pipeline_cached, PipelineOptions};
use uspec_corpus::{generate_corpus, java_library, GenOptions, SliceSource};
use uspec_store::ArtifactStore;
use uspec_telemetry::{JobKindStats, JobsSection};

/// One full pipeline run from a clean telemetry state: serialized learned
/// specs plus the job-engine section of the run report.
fn run(sources: &[(String, String)], store: Option<&ArtifactStore>) -> (String, JobsSection) {
    run_dirty(sources, store, &[])
}

/// Like [`run`], with `--dirty` forcing directives.
fn run_dirty(
    sources: &[(String, String)],
    store: Option<&ArtifactStore>,
    dirty: &[&str],
) -> (String, JobsSection) {
    uspec_telemetry::reset();
    let lib = java_library();
    let opts = PipelineOptions {
        shard_size: 24,
        dirty: dirty.iter().map(|s| s.to_string()).collect(),
        ..PipelineOptions::default()
    };
    let result = run_pipeline_cached(&SliceSource::new(sources), &lib.api_table(), &opts, store);
    let specs = serde_json::to_string_pretty(&result.learned).unwrap();
    let report = uspec::build_run_report("learn", &result, &opts, 0.6, 0.0);
    (specs, report.timings.jobs)
}

fn kind<'a>(jobs: &'a JobsSection, name: &str) -> &'a JobKindStats {
    jobs.kinds
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, s)| s)
        .unwrap_or_else(|| panic!("no per-kind row for {name:?}"))
}

#[test]
fn single_file_edit_reruns_only_its_cone() {
    let dir = std::env::temp_dir().join(format!("uspec-incr-inv-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let lib = java_library();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 60,
            seed: 17,
            ..GenOptions::default()
        },
    );
    let sources: Vec<(String, String)> = files.into_iter().map(|f| (f.name, f.source)).collect();
    let victim = sources.len() / 2;

    // The benign edit appends a function that makes no API calls: the
    // file's content fingerprint changes but its extracted samples and
    // pair blueprints do not.
    let mut benign = sources.clone();
    benign[victim]
        .1
        .push_str("\nfn benign9999() { s0 = \"edited\"; }\n");
    // The API edit appends a store/retrieve idiom: new samples, new
    // blueprints, so the model and score folds genuinely change.
    let mut api = sources.clone();
    api[victim].1.push_str(
        "\nfn api9999() {\n  v0 = new java.util.HashMap();\n  c0 = new java.util.HashMap();\n  c0.put(\"ik\", v0);\n  r0 = c0.get(\"ik\");\n  r0.size();\n}\n",
    );

    // Cold run populates the store and matches the uncached baseline.
    let (reference, _) = run(&sources, None);
    let store = ArtifactStore::open(&dir).unwrap();
    let (specs_cold, jobs_cold) = run(&sources, Some(&store));
    assert_eq!(specs_cold, reference, "cold cached run changed the specs");
    assert_eq!(jobs_cold.invalidated, 0, "nothing to invalidate cold");
    assert!(jobs_cold.executed > 0);

    // Benign edit: correctness against a from-scratch run of the edited
    // corpus...
    let (reference_benign, _) = run(&benign, None);
    let (specs_benign, jobs) = run(&benign, Some(&store));
    assert_eq!(
        specs_benign, reference_benign,
        "benign-edit rerun differs from a from-scratch run"
    );
    // ...and minimality: exactly the edited file's five per-file jobs
    // executed (analyze, stats, samples, pairs, digest), the cone root set
    // is the one moved file ref, and early cutoff held — the model was
    // never demanded, the corpus score artifact replayed from the store.
    assert_eq!(jobs.executed, 5, "benign cone: {:?}", jobs.kinds);
    assert_eq!(jobs.invalidated, 1, "one moved file ref");
    for k in ["analyze", "stats", "samples", "pairs", "digest"] {
        assert_eq!(kind(&jobs, k).executed, 1, "{k} executes once");
    }
    assert_eq!(*kind(&jobs, "model"), JobKindStats::default(), "cutoff");
    let score = kind(&jobs, "score");
    assert_eq!((score.executed, score.store_hits), (0, 1), "score replays");

    // API edit: correctness again...
    let (reference_api, _) = run(&api, None);
    let (specs_api, jobs) = run(&api, Some(&store));
    assert_eq!(
        specs_api, reference_api,
        "API-edit rerun differs from a from-scratch run"
    );
    // ...and the cone now extends through the digests to the model and
    // score folds: 5 per-file jobs + model + score = 7 executions, with
    // three invalidated roots (file ref, model key, score key).
    assert_eq!(jobs.executed, 7, "API cone: {:?}", jobs.kinds);
    assert_eq!(jobs.invalidated, 3, "file + model + score roots");
    assert_eq!(kind(&jobs, "model").executed, 1, "model retrains");
    assert_eq!(kind(&jobs, "score").executed, 1, "corpus re-scores");

    // A fully warm rerun of the final corpus executes nothing at all.
    let (specs_warm, jobs) = run(&api, Some(&store));
    assert_eq!(specs_warm, reference_api);
    assert_eq!(jobs.executed, 0, "warm rerun: {:?}", jobs.kinds);
    assert_eq!(jobs.invalidated, 0);
    assert!(jobs.reused > 0);

    // `--dirty` distrusts a file's cached entries even though its content
    // fingerprint still matches the store: the five per-file jobs are
    // forced, and because the recomputed digests come out unchanged the
    // model and score folds replay rather than re-execute. The directive
    // matches the file's basename as well as its full name (CLI corpora
    // are path-named), and cannot change the learned result.
    let victim_name = &api[victim].0;
    let basename = victim_name.rsplit('/').next().unwrap();
    let (specs_dirty, jobs) = run_dirty(&api, Some(&store), &[basename]);
    assert_eq!(specs_dirty, reference_api, "--dirty changed the result");
    assert_eq!(jobs.executed, 5, "dirty forces the per-file cone");
    assert_eq!(jobs.invalidated, 1, "the distrusted file is a cone root");
    assert_eq!(*kind(&jobs, "model"), JobKindStats::default(), "cutoff");
    assert_eq!(kind(&jobs, "score").executed, 0, "score replays");

    let _ = fs::remove_dir_all(&dir);
}
