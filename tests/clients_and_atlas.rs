//! Integration of client analyses (§7.4) and the Atlas baseline (§7.5)
//! with specifications learned by the real pipeline (not hand-written
//! ones).

use uspec_repro::atlas::{evaluate, run_atlas, AtlasOptions, ClassStatus};
use uspec_repro::clients::{check_taint, check_typestate, TaintConfig, TypestateProtocol};
use uspec_repro::corpus::{generate_corpus, java_library, python_library, GenOptions, Library};
use uspec_repro::lang::{lower_program, parse, LowerOptions, Symbol};
use uspec_repro::pta::{Pta, PtaOptions, SpecDb};
use uspec_repro::uspec::{run_pipeline, PipelineOptions};

fn learned_specs(lib: &Library, seed: u64) -> SpecDb {
    let sources: Vec<(String, String)> = generate_corpus(
        lib,
        &GenOptions {
            num_files: 1200,
            seed,
            ..GenOptions::default()
        },
    )
    .into_iter()
    .map(|f| (f.name, f.source))
    .collect();
    run_pipeline(&sources, &lib.api_table(), &PipelineOptions::default()).select(0.6)
}

#[test]
fn learned_specs_fix_fig8a_typestate_false_positive() {
    let lib = java_library();
    let table = lib.api_table();
    let specs = learned_specs(&lib, 42);
    let src = r#"
        fn main(flag0) {
            iters = new java.util.ArrayList();
            c = iters.get(0).hasNext();
            if (c) { x = iters.get(0).next(); }
        }
    "#;
    let program = parse(src).unwrap();
    let body = lower_program(&program, &table, &LowerOptions::default())
        .unwrap()
        .pop()
        .unwrap();
    let protocol = TypestateProtocol::iterator();
    let base = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
    let aug = Pta::run(&body, &specs, &PtaOptions::default());
    assert_eq!(
        check_typestate(&body, &base, &protocol).len(),
        1,
        "baseline FP"
    );
    assert_eq!(
        check_typestate(&body, &aug, &protocol).len(),
        0,
        "learned specs fix it"
    );
}

#[test]
fn learned_specs_fix_fig8b_taint_false_negative() {
    let lib = python_library();
    let table = lib.api_table();
    let specs = learned_specs(&lib, 7);
    let src = r#"
        fn main(request, html) {
            kwargs = new Dict();
            v = request.getParam("value");
            kwargs.setdefault("data-value", v);
            w = kwargs.SubscriptLoad("data-value");
            html.render(w);
        }
    "#;
    let program = parse(src).unwrap();
    let body = lower_program(&program, &table, &LowerOptions::default())
        .unwrap()
        .pop()
        .unwrap();
    let config = TaintConfig::new(&["getParam"], &["render"], &["escape"]);
    let base = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
    let aug = Pta::run(&body, &specs, &PtaOptions::default());
    assert_eq!(check_taint(&base, &config).len(), 0, "baseline FN");
    assert_eq!(check_taint(&aug, &config).len(), 1, "learned specs find it");
}

#[test]
fn atlas_fails_where_uspec_succeeds() {
    let lib = java_library();
    let results = run_atlas(&lib, &AtlasOptions::default());
    let evals = evaluate(&lib, &results);
    let status = |class: &str| {
        evals
            .iter()
            .find(|e| e.class == Symbol::intern(class))
            .map(|e| e.status)
            .expect("class evaluated")
    };
    // §7.5 qualitative claims.
    assert_eq!(status("java.util.HashMap"), ClassStatus::Sound);
    assert_eq!(status("java.util.Properties"), ClassStatus::Unsound);
    assert_eq!(status("java.sql.ResultSet"), ClassStatus::NoConstructor);
    assert_eq!(status("java.security.KeyStore"), ClassStatus::NoConstructor);
    assert_eq!(status("org.w3c.dom.NodeList"), ClassStatus::NoConstructor);

    // USpec learns (argument-sensitive!) specs for exactly those classes.
    let specs = learned_specs(&lib, 42);
    for class in [
        "java.util.Properties",
        "java.sql.ResultSet",
        "java.security.KeyStore",
    ] {
        let sym = Symbol::intern(class);
        assert!(
            specs
                .iter()
                .any(|s| s.class() == sym && lib.is_true_spec(s)),
            "USpec should learn a correct spec for {class}"
        );
    }
}
