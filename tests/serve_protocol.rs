//! Wire-protocol round trips against a live serve daemon.
//!
//! Covers the hostile-input contract (malformed JSON, oversized frames,
//! clients that disconnect mid-write must produce typed error responses
//! or clean closes, never a panic or a wedged worker) and the determinism
//! contract: concurrent clients all receive byte-identical answers, and
//! an `explain` answer matches what the batch pipeline + serializer
//! produce for the same corpus, byte for byte.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use uspec::run_pipeline_cached;
use uspec_corpus::{generate_corpus, java_library, GenOptions, Library, SliceSource};
use uspec_serve::json::{self, Json};
use uspec_serve::{roundtrip_unix, Listener, ServeOptions, Server};

/// A daemon over a small generated corpus on a temp Unix socket. The
/// watcher is effectively parked (long poll) — these tests exercise the
/// protocol, not re-learning.
struct Fixture {
    server: Option<Server>,
    socket: PathBuf,
    sources: Vec<(String, String)>,
    library: Library,
    dir: PathBuf,
}

impl Fixture {
    fn start(tag: &str, tweak: impl FnOnce(&mut ServeOptions)) -> Fixture {
        let dir = std::env::temp_dir().join(format!("uspec-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = dir.join("corpus");
        std::fs::create_dir_all(&corpus).unwrap();
        let library = java_library();
        let files = generate_corpus(
            &library,
            &GenOptions {
                num_files: 10,
                ..GenOptions::default()
            },
        );
        let mut sources = Vec::new();
        for f in &files {
            let path = corpus.join(&f.name);
            std::fs::write(&path, &f.source).unwrap();
            // The same (path-displayed, sorted) naming the server's corpus
            // walk produces — provenance file names must line up exactly.
            sources.push((path.display().to_string(), f.source.clone()));
        }
        sources.sort();
        let socket = dir.join("uspec.sock");
        let mut opts = ServeOptions {
            workers: 3,
            poll_ms: 3_600_000,
            ..ServeOptions::default()
        };
        tweak(&mut opts);
        let listener = Listener::bind_unix(&socket).unwrap();
        let server = Server::start(&corpus, &library, opts, listener).unwrap();
        Fixture {
            server: Some(server),
            socket,
            sources,
            library,
            dir,
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn envelope(line: &str) -> Json {
    json::parse(line).unwrap_or_else(|e| panic!("unparseable response `{line}`: {e}"))
}

/// Asserts an error envelope and returns its `error.code`.
fn error_code(line: &str) -> String {
    let v = envelope(line);
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(false)),
        "expected error: {line}"
    );
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error.code in {line}"))
        .to_owned()
}

/// Strips a success envelope down to the raw `result` bytes. The `req`
/// field is the one envelope value that legitimately varies run to run
/// (a process-global sequence), so only its shape is asserted.
fn result_payload(line: &str, id: u64, gen: u64) -> String {
    let prefix = format!("{{\"id\":{id},\"req\":");
    assert!(
        line.starts_with(&prefix),
        "unexpected envelope for id {id}: {line}"
    );
    let rest = &line[prefix.len()..];
    let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
    assert!(digits > 0, "req must be numeric: {line}");
    let rest = &rest[digits..];
    let mid = format!(",\"gen\":{gen},\"ok\":true,\"result\":");
    assert!(
        rest.starts_with(&mid) && rest.ends_with('}'),
        "unexpected envelope for id {id}: {line}"
    );
    rest[mid.len()..rest.len() - 1].to_owned()
}

/// Blanks the `req` sequence value so envelopes from different clients
/// can be compared byte for byte.
fn mask_req(line: &str) -> String {
    let Some(start) = line.find("\"req\":") else {
        return line.to_owned();
    };
    let digits_at = start + "\"req\":".len();
    let digits = line[digits_at..]
        .bytes()
        .take_while(u8::is_ascii_digit)
        .count();
    format!("{}R{}", &line[..digits_at], &line[digits_at + digits..])
}

#[test]
fn malformed_requests_get_typed_errors_and_the_connection_survives() {
    let fx = Fixture::start("malformed", |_| {});
    let responses = roundtrip_unix(
        &fx.socket,
        &[
            "this is not json",
            "[1,2,3]",
            r#"{"id":7,"params":{}}"#,
            r#"{"id":8,"method":"bogus.method"}"#,
            r#"{"id":9,"method":"alias.may","params":{"a":"not-a-method-id"}}"#,
            r#"{"id":10,"method":"analyze.snippet","params":{"source":"fn broken( {"}}"#,
            r#"{"id":11,"method":"status"}"#,
        ],
    )
    .unwrap();

    assert_eq!(error_code(&responses[0]), "parse");
    assert_eq!(error_code(&responses[1]), "parse");
    assert_eq!(error_code(&responses[2]), "parse");
    assert_eq!(
        envelope(&responses[2]).get("id").and_then(Json::as_u64),
        Some(7),
        "a recoverable id must be echoed even on parse failure"
    );
    assert_eq!(error_code(&responses[3]), "method");
    assert_eq!(error_code(&responses[4]), "params");
    assert_eq!(error_code(&responses[5]), "params");

    // After five rejected frames the same connection still answers.
    let status = envelope(&responses[6]);
    assert_eq!(status.get("ok"), Some(&Json::Bool(true)));
    let result = status.get("result").unwrap();
    assert_eq!(result.get("gen").and_then(Json::as_u64), Some(1));
    assert_eq!(result.get("files").and_then(Json::as_u64), Some(10));
}

#[test]
fn oversized_frames_are_rejected_without_wedging_the_worker() {
    let fx = Fixture::start("oversized", |o| o.max_frame_bytes = 512);
    let flood = "x".repeat(4096);
    let responses = roundtrip_unix(
        &fx.socket,
        &[flood.as_str(), r#"{"id":2,"method":"status"}"#],
    )
    .unwrap();

    assert_eq!(error_code(&responses[0]), "oversized");
    assert_eq!(
        envelope(&responses[0]).get("id"),
        Some(&Json::Null),
        "an oversized frame has no recoverable id"
    );
    assert_eq!(
        envelope(&responses[1]).get("ok"),
        Some(&Json::Bool(true)),
        "the request after the flood must still be answered: {}",
        responses[1]
    );
}

#[test]
fn mid_write_disconnects_never_kill_the_server() {
    let fx = Fixture::start("disconnect", |_| {});

    // A client that dies halfway through a frame (no newline ever comes).
    {
        let mut s = UnixStream::connect(&fx.socket).unwrap();
        s.write_all(b"{\"id\":1,\"method\":\"sta").unwrap();
    }
    // A client that sends a full request but hangs up before reading the
    // response (the server's write hits a closed pipe).
    {
        let mut s = UnixStream::connect(&fx.socket).unwrap();
        s.write_all(b"{\"id\":2,\"method\":\"status\"}\n").unwrap();
    }
    // And one that sends nothing at all.
    drop(UnixStream::connect(&fx.socket).unwrap());

    let responses = roundtrip_unix(&fx.socket, &[r#"{"id":3,"method":"status"}"#]).unwrap();
    assert_eq!(envelope(&responses[0]).get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn concurrent_clients_get_answers_byte_identical_to_the_batch_pipeline() {
    let fx = Fixture::start("determinism", |_| {});

    // The batch path: same sources, same pipeline entry point, same
    // serializer. This is what `uspec learn`/`explain --json` compute.
    let table = fx.library.api_table();
    let result = run_pipeline_cached(
        &SliceSource::new(&fx.sources),
        &table,
        &ServeOptions::default().pipeline,
        None,
    );
    let mut provenance = result.provenance;
    provenance.retain_specs(|s| result.learned.get(s).is_some());
    let expected_explain =
        serde_json::to_string(&uspec::explain_entries(&result.learned, &provenance, None)).unwrap();
    assert!(
        !result.learned.is_empty(),
        "fixture corpus must learn something for the comparison to bite"
    );

    let lines = [
        r#"{"id":1,"method":"explain"}"#,
        r#"{"id":2,"method":"spec.lookup"}"#,
        r#"{"id":3,"method":"alias.may","params":{"a":"java.util.HashMap.get/1","b":"java.util.HashMap.get/1"}}"#,
    ];
    let answers: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| scope.spawn(|| roundtrip_unix(&fx.socket, &lines).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let masked: Vec<Vec<String>> = answers
        .iter()
        .map(|lines| lines.iter().map(|l| mask_req(l)).collect())
        .collect();
    for other in &masked[1..] {
        assert_eq!(
            &masked[0], other,
            "every concurrent client must see identical bytes (modulo req)"
        );
    }
    assert_eq!(
        result_payload(&answers[0][0], 1, 1),
        expected_explain,
        "served explain must match the batch pipeline byte for byte"
    );
    let lookup = result_payload(&answers[0][1], 2, 1);
    assert!(
        lookup.starts_with('[') && lookup.contains("\"spec\""),
        "lookup answers rows: {lookup}"
    );
    let alias = envelope(&answers[0][2]);
    assert_eq!(alias.get("ok"), Some(&Json::Bool(true)));
}

/// Everything timing-derived in a `metrics.snapshot` payload: the slow
/// log (latencies reshuffle it) and every digit (counters tick, window
/// percentiles move). What survives is the full key structure.
fn strip_volatile(payload: &str) -> String {
    let start = payload.find("\"slow\":[").expect("snapshot has a slow log");
    let end = start + payload[start..].find(']').expect("slow log closes");
    let kept = format!("{}{}", &payload[..start], &payload[end..]);
    kept.chars().filter(|c| !c.is_ascii_digit()).collect()
}

#[test]
fn metrics_snapshot_key_sets_are_pinned_and_byte_stable() {
    let fx = Fixture::start("snapshot", |_| {});
    // One pipelined batch: both snapshots are taken back to back by the
    // same worker, so nothing but the snapshot request itself moves the
    // telemetry plane between them.
    let line1 = r#"{"id":1,"method":"metrics.snapshot"}"#;
    let line2 = r#"{"id":2,"method":"metrics.snapshot"}"#;
    let responses = roundtrip_unix(&fx.socket, &[line1, line2]).unwrap();
    let p1 = result_payload(&responses[0], 1, 1);
    let p2 = result_payload(&responses[1], 2, 1);

    // Two consecutive snapshots differ only in timing-derived digits and
    // the slow log — the exact key sets (top level, every counter and
    // gauge name, every window row and field) are byte-identical.
    assert_eq!(strip_volatile(&p1), strip_volatile(&p2));

    let snap = json::parse(&p1).unwrap();
    let Json::Obj(top) = &snap else {
        panic!("snapshot must be an object: {p1}")
    };
    assert_eq!(
        top.keys().map(String::as_str).collect::<Vec<_>>(),
        [
            "counters",
            "gauges",
            "gen",
            "histograms",
            "schema",
            "slo",
            "slow",
            "staleness_ms",
            "uptime_ms",
            "windows"
        ],
        "top-level snapshot keys are pinned — additions must bump the snapshot schema"
    );
    assert_eq!(snap.get("schema").and_then(Json::as_u64), Some(1));

    let Some(Json::Obj(windows)) = snap.get("windows") else {
        panic!("snapshot carries windows: {p1}")
    };
    // Streams are interned at server start: the full closed set is
    // present before any traffic, which is what keeps key sets stable.
    for stream in ["all", "status", "metrics.snapshot", "other", "shutdown"] {
        assert!(windows.contains_key(stream), "missing stream {stream}");
    }
    for (stream, w) in windows {
        let Json::Obj(fields) = w else {
            panic!("window {stream} must be an object")
        };
        assert_eq!(
            fields.keys().map(String::as_str).collect::<Vec<_>>(),
            [
                "errors",
                "mean_ns",
                "p50_ns",
                "p95_ns",
                "p99_ns",
                "requests",
                "total_errors",
                "total_p50_ns",
                "total_p95_ns",
                "total_p99_ns",
                "total_requests",
                "window_seconds"
            ],
            "window {stream} keys are pinned"
        );
    }

    let Some(Json::Obj(slo)) = snap.get("slo") else {
        panic!("snapshot carries slo: {p1}")
    };
    assert_eq!(
        slo.keys().map(String::as_str).collect::<Vec<_>>(),
        [
            "breaches",
            "error_rate_breaches",
            "max_staleness_ms",
            "p99_breaches",
            "staleness_breaches"
        ]
    );

    // The second snapshot observed the first request: its slow log and
    // the `all` window carry at least one completed request.
    let snap2 = json::parse(&p2).unwrap();
    let all = snap2.get("windows").and_then(|w| w.get("all")).unwrap();
    assert!(all.get("total_requests").and_then(Json::as_u64).unwrap() >= 1);
    let Some(Json::Arr(slow)) = snap2.get("slow") else {
        panic!("snapshot carries slow: {p2}")
    };
    assert!(!slow.is_empty(), "first request must land in the slow log");
    for q in slow {
        let Json::Obj(fields) = q else {
            panic!("slow entries are objects")
        };
        assert_eq!(
            fields.keys().map(String::as_str).collect::<Vec<_>>(),
            [
                "gen",
                "latency_ns",
                "method",
                "request_bytes",
                "response_bytes"
            ],
            "slow-query keys are pinned"
        );
    }
}

#[test]
fn status_reports_staleness_and_windowed_latency() {
    let fx = Fixture::start("status-window", |_| {});
    let responses = roundtrip_unix(
        &fx.socket,
        &[
            r#"{"id":1,"method":"status"}"#,
            r#"{"id":2,"method":"status"}"#,
        ],
    )
    .unwrap();
    let second = envelope(&responses[1]);
    let result = second.get("result").unwrap();
    assert_eq!(result.get("staleness_ms").and_then(Json::as_u64), Some(0));
    // The second status sees the first one in the sliding window.
    assert!(
        result
            .get("window_requests")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
    for key in [
        "window_errors",
        "window_p50_ns",
        "window_p95_ns",
        "window_p99_ns",
        "last_relearn_ns",
    ] {
        assert!(
            result.get(key).and_then(Json::as_u64).is_some(),
            "status carries {key}"
        );
    }
}
