//! Wire-protocol round trips against a live serve daemon.
//!
//! Covers the hostile-input contract (malformed JSON, oversized frames,
//! clients that disconnect mid-write must produce typed error responses
//! or clean closes, never a panic or a wedged worker) and the determinism
//! contract: concurrent clients all receive byte-identical answers, and
//! an `explain` answer matches what the batch pipeline + serializer
//! produce for the same corpus, byte for byte.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use uspec::run_pipeline_cached;
use uspec_corpus::{generate_corpus, java_library, GenOptions, Library, SliceSource};
use uspec_serve::json::{self, Json};
use uspec_serve::{roundtrip_unix, Listener, ServeOptions, Server};

/// A daemon over a small generated corpus on a temp Unix socket. The
/// watcher is effectively parked (long poll) — these tests exercise the
/// protocol, not re-learning.
struct Fixture {
    server: Option<Server>,
    socket: PathBuf,
    sources: Vec<(String, String)>,
    library: Library,
    dir: PathBuf,
}

impl Fixture {
    fn start(tag: &str, tweak: impl FnOnce(&mut ServeOptions)) -> Fixture {
        let dir = std::env::temp_dir().join(format!("uspec-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = dir.join("corpus");
        std::fs::create_dir_all(&corpus).unwrap();
        let library = java_library();
        let files = generate_corpus(
            &library,
            &GenOptions {
                num_files: 10,
                ..GenOptions::default()
            },
        );
        let mut sources = Vec::new();
        for f in &files {
            let path = corpus.join(&f.name);
            std::fs::write(&path, &f.source).unwrap();
            // The same (path-displayed, sorted) naming the server's corpus
            // walk produces — provenance file names must line up exactly.
            sources.push((path.display().to_string(), f.source.clone()));
        }
        sources.sort();
        let socket = dir.join("uspec.sock");
        let mut opts = ServeOptions {
            workers: 3,
            poll_ms: 3_600_000,
            ..ServeOptions::default()
        };
        tweak(&mut opts);
        let listener = Listener::bind_unix(&socket).unwrap();
        let server = Server::start(&corpus, &library, opts, listener).unwrap();
        Fixture {
            server: Some(server),
            socket,
            sources,
            library,
            dir,
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn envelope(line: &str) -> Json {
    json::parse(line).unwrap_or_else(|e| panic!("unparseable response `{line}`: {e}"))
}

/// Asserts an error envelope and returns its `error.code`.
fn error_code(line: &str) -> String {
    let v = envelope(line);
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(false)),
        "expected error: {line}"
    );
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error.code in {line}"))
        .to_owned()
}

/// Strips a success envelope down to the raw `result` bytes.
fn result_payload(line: &str, id: u64, gen: u64) -> String {
    let prefix = format!("{{\"id\":{id},\"gen\":{gen},\"ok\":true,\"result\":");
    assert!(
        line.starts_with(&prefix) && line.ends_with('}'),
        "unexpected envelope for id {id}: {line}"
    );
    line[prefix.len()..line.len() - 1].to_owned()
}

#[test]
fn malformed_requests_get_typed_errors_and_the_connection_survives() {
    let fx = Fixture::start("malformed", |_| {});
    let responses = roundtrip_unix(
        &fx.socket,
        &[
            "this is not json",
            "[1,2,3]",
            r#"{"id":7,"params":{}}"#,
            r#"{"id":8,"method":"bogus.method"}"#,
            r#"{"id":9,"method":"alias.may","params":{"a":"not-a-method-id"}}"#,
            r#"{"id":10,"method":"analyze.snippet","params":{"source":"fn broken( {"}}"#,
            r#"{"id":11,"method":"status"}"#,
        ],
    )
    .unwrap();

    assert_eq!(error_code(&responses[0]), "parse");
    assert_eq!(error_code(&responses[1]), "parse");
    assert_eq!(error_code(&responses[2]), "parse");
    assert_eq!(
        envelope(&responses[2]).get("id").and_then(Json::as_u64),
        Some(7),
        "a recoverable id must be echoed even on parse failure"
    );
    assert_eq!(error_code(&responses[3]), "method");
    assert_eq!(error_code(&responses[4]), "params");
    assert_eq!(error_code(&responses[5]), "params");

    // After five rejected frames the same connection still answers.
    let status = envelope(&responses[6]);
    assert_eq!(status.get("ok"), Some(&Json::Bool(true)));
    let result = status.get("result").unwrap();
    assert_eq!(result.get("gen").and_then(Json::as_u64), Some(1));
    assert_eq!(result.get("files").and_then(Json::as_u64), Some(10));
}

#[test]
fn oversized_frames_are_rejected_without_wedging_the_worker() {
    let fx = Fixture::start("oversized", |o| o.max_frame_bytes = 512);
    let flood = "x".repeat(4096);
    let responses = roundtrip_unix(
        &fx.socket,
        &[flood.as_str(), r#"{"id":2,"method":"status"}"#],
    )
    .unwrap();

    assert_eq!(error_code(&responses[0]), "oversized");
    assert_eq!(
        envelope(&responses[0]).get("id"),
        Some(&Json::Null),
        "an oversized frame has no recoverable id"
    );
    assert_eq!(
        envelope(&responses[1]).get("ok"),
        Some(&Json::Bool(true)),
        "the request after the flood must still be answered: {}",
        responses[1]
    );
}

#[test]
fn mid_write_disconnects_never_kill_the_server() {
    let fx = Fixture::start("disconnect", |_| {});

    // A client that dies halfway through a frame (no newline ever comes).
    {
        let mut s = UnixStream::connect(&fx.socket).unwrap();
        s.write_all(b"{\"id\":1,\"method\":\"sta").unwrap();
    }
    // A client that sends a full request but hangs up before reading the
    // response (the server's write hits a closed pipe).
    {
        let mut s = UnixStream::connect(&fx.socket).unwrap();
        s.write_all(b"{\"id\":2,\"method\":\"status\"}\n").unwrap();
    }
    // And one that sends nothing at all.
    drop(UnixStream::connect(&fx.socket).unwrap());

    let responses = roundtrip_unix(&fx.socket, &[r#"{"id":3,"method":"status"}"#]).unwrap();
    assert_eq!(envelope(&responses[0]).get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn concurrent_clients_get_answers_byte_identical_to_the_batch_pipeline() {
    let fx = Fixture::start("determinism", |_| {});

    // The batch path: same sources, same pipeline entry point, same
    // serializer. This is what `uspec learn`/`explain --json` compute.
    let table = fx.library.api_table();
    let result = run_pipeline_cached(
        &SliceSource::new(&fx.sources),
        &table,
        &ServeOptions::default().pipeline,
        None,
    );
    let mut provenance = result.provenance;
    provenance.retain_specs(|s| result.learned.get(s).is_some());
    let expected_explain =
        serde_json::to_string(&uspec::explain_entries(&result.learned, &provenance, None)).unwrap();
    assert!(
        !result.learned.is_empty(),
        "fixture corpus must learn something for the comparison to bite"
    );

    let lines = [
        r#"{"id":1,"method":"explain"}"#,
        r#"{"id":2,"method":"spec.lookup"}"#,
        r#"{"id":3,"method":"alias.may","params":{"a":"java.util.HashMap.get/1","b":"java.util.HashMap.get/1"}}"#,
    ];
    let answers: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| scope.spawn(|| roundtrip_unix(&fx.socket, &lines).unwrap()))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for other in &answers[1..] {
        assert_eq!(
            &answers[0], other,
            "every concurrent client must see identical bytes"
        );
    }
    assert_eq!(
        result_payload(&answers[0][0], 1, 1),
        expected_explain,
        "served explain must match the batch pipeline byte for byte"
    );
    let lookup = result_payload(&answers[0][1], 2, 1);
    assert!(
        lookup.starts_with('[') && lookup.contains("\"spec\""),
        "lookup answers rows: {lookup}"
    );
    let alias = envelope(&answers[0][2]);
    assert_eq!(alias.get("ok"), Some(&Json::Bool(true)));
}
