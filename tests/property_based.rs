//! Property-based tests over the whole stack: the corpus generator serves
//! as a program fuzzer (every generated file must flow through
//! parse → lower → PTA → event graph without panicking and with the §3
//! invariants intact), plus targeted properties of the core data
//! structures.

use proptest::prelude::*;
use uspec_repro::corpus::{generate_corpus, java_library, python_library, GenOptions};
use uspec_repro::graph::Pos;
use uspec_repro::lang::{lexer::lex, parse, MethodId, Symbol};
use uspec_repro::learn::ScoreFn;
use uspec_repro::pta::{Spec, SpecDb};
use uspec_repro::uspec::{analyze_source, PipelineOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated file analyzes end to end, and the resulting event
    /// graphs satisfy the §3.3 invariants: transitive closure, acyclicity,
    /// allocation events having no parents.
    #[test]
    fn generated_files_satisfy_event_graph_invariants(seed in 0u64..5000, java in any::<bool>()) {
        let lib = if java { java_library() } else { python_library() };
        let table = lib.api_table();
        let files = generate_corpus(&lib, &GenOptions { num_files: 2, seed, ..GenOptions::default() });
        for f in files {
            let graphs = analyze_source(&f.source, &table, &PipelineOptions::default())
                .expect("generated files analyze");
            for g in graphs {
                // Transitive closure: (a,b),(b,c) ∈ E ⟹ (a,c) ∈ E.
                for (a, b, _) in g.edges() {
                    prop_assert!(a != b, "no self edges");
                    for &c in g.children(b) {
                        if c != a {
                            prop_assert!(g.has_edge(a, c), "closure violated");
                        }
                    }
                    prop_assert!(!g.has_edge(b, a), "antisymmetry violated");
                }
                // alloc_G(e) only contains parent-less ret events.
                for e in g.event_ids() {
                    for a in g.alloc_set(e) {
                        prop_assert!(g.parents(a).is_empty());
                        prop_assert_eq!(g.event(a).pos, Pos::Ret);
                    }
                }
            }
        }
    }

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(input in "\\PC*") {
        let _ = lex(&input);
    }

    /// The parser never panics on arbitrary token soup.
    #[test]
    fn parser_total(input in "[a-z(){};=.\" ]{0,120}") {
        let _ = parse(&input);
    }

    /// SpecDb closure invariant holds for arbitrary spec sets.
    #[test]
    fn specdb_closure_invariant(raw in proptest::collection::vec((0u8..6, 0u8..6, 1u8..3), 0..12)) {
        let specs: Vec<Spec> = raw
            .into_iter()
            .map(|(t, s, x)| Spec::RetArg {
                target: MethodId::new("C", format!("t{t}").as_str(), x - 1),
                source: MethodId::new("C", format!("s{s}").as_str(), x),
                x,
            })
            .collect();
        let db = SpecDb::from_specs(specs);
        for spec in db.iter() {
            if let Spec::RetArg { target, .. } = spec {
                prop_assert!(db.has_ret_same(*target));
            }
        }
    }

    /// Scoring functions are monotone in the confidence values and bounded
    /// in [0, 1].
    #[test]
    fn score_functions_bounded(gamma in proptest::collection::vec(0.0f32..1.0, 0..40), matches in 0usize..10_000) {
        for f in [ScoreFn::TopKAvg(10), ScoreFn::Max, ScoreFn::Percentile(0.95), ScoreFn::MatchCount { soft: 20.0 }] {
            let s = f.score(&gamma, matches);
            prop_assert!((0.0..=1.0).contains(&s), "{f:?} out of range: {s}");
        }
        // Adding a higher value never lowers TopKAvg/Max.
        if !gamma.is_empty() {
            let mut more = gamma.clone();
            more.push(1.0);
            for f in [ScoreFn::TopKAvg(10), ScoreFn::Max] {
                prop_assert!(f.score(&more, matches) >= f.score(&gamma, matches) - 1e-6);
            }
        }
    }

    /// Pretty-printing is a parser inverse on every generated file.
    #[test]
    fn generated_files_pretty_print_roundtrip(seed in 0u64..5000) {
        use uspec_repro::lang::pretty::print_program;
        let lib = java_library();
        let files = generate_corpus(&lib, &GenOptions { num_files: 1, seed, ..GenOptions::default() });
        let p1 = parse(&files[0].source).expect("generated files parse");
        let printed = print_program(&p1);
        let p2 = parse(&printed).expect("printed files parse");
        prop_assert_eq!(print_program(&p1), print_program(&p2));
    }

    /// Specification sets survive JSON serialization.
    #[test]
    fn spec_json_roundtrip(raw in proptest::collection::vec((0u8..4, 1u8..3), 0..8)) {
        let specs: Vec<Spec> = raw
            .into_iter()
            .map(|(m, x)| Spec::RetArg {
                target: MethodId::new("a.B", format!("t{m}").as_str(), x - 1),
                source: MethodId::new("a.B", format!("s{m}").as_str(), x),
                x,
            })
            .collect();
        let json = serde_json::to_string(&specs).expect("serializes");
        let back: Vec<Spec> = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(specs, back);
    }

    /// Interning respects string identity for arbitrary strings.
    #[test]
    fn symbol_roundtrip(s in "\\PC{0,40}") {
        let sym = Symbol::intern(&s);
        prop_assert_eq!(sym.as_str(), s.as_str());
        prop_assert_eq!(Symbol::intern(&s), sym);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The augmented analysis with arbitrary (true-spec subset) databases
    /// never panics and only ever *adds* aliasing relative to baseline
    /// may-alias on return values.
    #[test]
    fn augmented_analysis_monotone(seed in 0u64..2000, mask in 0u64..1024) {
        use uspec_repro::lang::{lower_program, LowerOptions};
        use uspec_repro::pta::{Pta, PtaOptions};

        let lib = java_library();
        let table = lib.api_table();
        let all = lib.true_specs();
        let subset: Vec<Spec> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << (i % 10)) != 0)
            .map(|(_, s)| *s)
            .collect();
        let db = SpecDb::from_specs(subset);

        let files = generate_corpus(&lib, &GenOptions { num_files: 1, seed, ..GenOptions::default() });
        let program = parse(&files[0].source).expect("parses");
        let bodies = lower_program(&program, &table, &LowerOptions::default()).expect("lowers");
        for body in &bodies {
            let base = Pta::run(body, &SpecDb::empty(), &PtaOptions::default());
            let aug = Pta::run(body, &db, &PtaOptions::default());
            // Count aliasing ret-pairs under both; augmented ⊇ baseline.
            let pairs = |pta: &Pta| {
                let recs: Vec<_> = pta.call_records().collect();
                let mut n = 0;
                for i in 0..recs.len() {
                    for j in (i + 1)..recs.len() {
                        if Pta::may_alias(&recs[i].ret, &recs[j].ret) {
                            n += 1;
                        }
                    }
                }
                n
            };
            prop_assert!(pairs(&aug) >= pairs(&base));
        }
    }
}
