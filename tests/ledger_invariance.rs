//! Invariance of the run-ledger entry across sharding and cache state.
//!
//! A ledger entry splits into an `invariant` section (command, engine,
//! digest, deterministic counters) and machine-local `timings`. For a
//! fixed corpus and options, the invariant section must be byte-identical
//! no matter how the stream is sharded and no matter whether the artifact
//! cache was cold or warm — otherwise `uspec perf diff` would report
//! phantom regressions whenever the cache state changed. The corpus
//! fingerprint in the envelope must be equally stable, since `perf check`
//! uses it (via the digest) to decide which runs are comparable.
//!
//! Also pins the cost-attribution cross-validation exactly: per-kind
//! executed/memo/store counts in `timings.attribution` must equal the
//! independently-counted `timings.jobs` rows. This test lives alone in
//! its own binary: the telemetry registry and attribution log are
//! process-global, and exact equality needs `uspec_telemetry::reset()`
//! between runs without concurrent tests mutating them.

use uspec::{run_pipeline_cached, PipelineOptions};
use uspec_corpus::{generate_corpus, java_library, GenOptions, SliceSource};
use uspec_store::ArtifactStore;
use uspec_telemetry::ledger::{LedgerEntry, LedgerEnvelope};

fn fixed_envelope(corpus_fp: String) -> LedgerEnvelope {
    // Identity fields are pinned so entry comparisons see only what the
    // run computed, not where or when this test executed.
    LedgerEnvelope {
        git_rev: "test".into(),
        host: "test".into(),
        timestamp_ms: 1,
        corpus_fp,
    }
}

#[test]
fn ledger_invariants_survive_sharding_and_cache_state() {
    let lib = java_library();
    let table = lib.api_table();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 150,
            seed: 9,
            ..GenOptions::default()
        },
    );
    let sources: Vec<(String, String)> = files.into_iter().map(|f| (f.name, f.source)).collect();
    let cache_root =
        std::env::temp_dir().join(format!("uspec-ledger-invariance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);
    let store = ArtifactStore::open(&cache_root).unwrap();

    // cold/warm at shards of 64, then ragged (17) and single-shard (1000)
    // runs against the now-populated cache.
    let mut runs: Vec<(&str, LedgerEntry)> = Vec::new();
    for (label, shard_size) in [
        ("cold-64", 64),
        ("warm-64", 64),
        ("ragged-17", 17),
        ("one-shard-1000", 1000),
    ] {
        uspec_telemetry::reset();
        let opts = PipelineOptions {
            shard_size,
            ..PipelineOptions::default()
        };
        let result = run_pipeline_cached(&SliceSource::new(&sources), &table, &opts, Some(&store));
        let report = uspec::build_run_report("learn", &result, &opts, 0.6, 0.0);

        // Exact attribution/jobs agreement: both sides count the same
        // demands through independent paths (per-key cost records vs.
        // per-kind counters), so with no dropped records they must match.
        let attr = &report.timings.attribution;
        let jobs = &report.timings.jobs;
        assert_eq!(attr.dropped, 0, "{label}: cost log overflowed");
        assert!(attr.records > 0, "{label}: no cost records");
        assert_eq!(attr.kinds.len(), jobs.kinds.len());
        let mut demand_sum = 0;
        for ((ak, a), (jk, j)) in attr.kinds.iter().zip(jobs.kinds.iter()) {
            assert_eq!(ak, jk, "{label}: kind rows out of order");
            assert_eq!(a.executed, j.executed, "{label}/{ak}: executed");
            assert_eq!(a.memo_hits, j.memo_hits, "{label}/{ak}: memo hits");
            assert_eq!(a.store_hits, j.store_hits, "{label}/{ak}: store hits");
            assert_eq!(
                a.demands,
                a.executed + a.memo_hits + a.store_hits,
                "{label}/{ak}: demand accounting"
            );
            demand_sum += a.demands;
        }
        assert_eq!(attr.records, demand_sum, "{label}: record total");

        let entry =
            LedgerEntry::from_report(&report, fixed_envelope(result.corpus_fingerprint.hex()));
        runs.push((label, entry));
    }

    // The warm run really did reuse the cold run's artifacts.
    assert!(
        runs[1].1.timings.cache.hits > 0,
        "warm-64 run hit the store"
    );

    // Invariant section and corpus fingerprint: byte-identical everywhere.
    let baseline = serde_json::to_string_pretty(&runs[0].1.invariant).unwrap();
    for (label, entry) in &runs[1..] {
        let bytes = serde_json::to_string_pretty(&entry.invariant).unwrap();
        assert_eq!(baseline, bytes, "{label} changed the invariant section");
        assert_eq!(
            runs[0].1.envelope.corpus_fp, entry.envelope.corpus_fp,
            "{label} changed the corpus fingerprint"
        );
    }

    // And therefore perf diff between cold and warm is clean: identical
    // digests, zero counter drift.
    let d = uspec_telemetry::perf::diff(&runs[0].1, &runs[1].1);
    assert!(d.digest_equal, "cold/warm digests differ");
    assert!(
        d.counter_drift.is_empty(),
        "cold/warm counter drift: {:?}",
        d.counter_drift
    );

    let _ = std::fs::remove_dir_all(&cache_root);
}
