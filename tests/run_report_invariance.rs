//! Shard-size invariance of the run report.
//!
//! The `--metrics-out` report is split into deterministic sections
//! (`schema`, `command`, `engine`, `counters`, `diagnostics`) and a
//! machine-local `timings` section. For a fixed corpus and seed, the
//! deterministic sections — exposed as [`RunReport::invariant`] — must be
//! byte-identical no matter how the stream is sharded: sharding is a
//! memory-bounding detail, not an input to the analysis.
//!
//! This test lives alone in its own binary: the telemetry registry is
//! process-global, and the byte comparison needs `uspec_telemetry::reset()`
//! between runs without concurrent tests mutating counters.

use uspec::{run_pipeline_streaming, PipelineOptions};
use uspec_corpus::{generate_corpus, java_library, GenOptions, SliceSource};

#[test]
fn invariant_sections_are_shard_size_independent() {
    let lib = java_library();
    let table = lib.api_table();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 150,
            seed: 9,
            ..GenOptions::default()
        },
    );
    let sources: Vec<(String, String)> = files.into_iter().map(|f| (f.name, f.source)).collect();

    // 64 = several even shards, 17 = ragged shards, 1000 = one shard
    // (larger than the corpus).
    let mut baseline: Option<String> = None;
    let mut shard_counts = Vec::new();
    for shard_size in [64, 17, 1000] {
        uspec_telemetry::reset();
        let opts = PipelineOptions {
            shard_size,
            ..PipelineOptions::default()
        };
        let result = run_pipeline_streaming(&SliceSource::new(&sources), &table, &opts);
        let report = uspec::build_run_report("learn", &result, &opts, 0.6, 0.0);
        assert!(report.counters.corpus.files > 0);
        shard_counts.push(
            report
                .timings
                .histograms
                .get("pipeline.shard_files")
                .expect("shard histogram recorded")
                .count,
        );
        let bytes = serde_json::to_string_pretty(&report.invariant()).unwrap();
        match &baseline {
            None => baseline = Some(bytes),
            Some(b) => assert_eq!(
                b, &bytes,
                "shard_size={shard_size} changed the invariant report sections"
            ),
        }
    }
    // Sanity: the three configurations really did shard differently (the
    // stream is walked twice, so counts are 2× the per-pass shard count).
    assert_eq!(shard_counts.len(), 3);
    assert!(
        shard_counts[0] != shard_counts[1] && shard_counts[1] != shard_counts[2],
        "expected distinct shard counts, got {shard_counts:?}"
    );
}
