//! The streaming pipeline's output must be invariant under `shard_size`
//! and identical to the batch [`run_pipeline`] wrapper — same learned
//! scores, same selected `SpecDb` at τ = 0.6, same corpus totals — while
//! bounding resident event graphs to one shard's worth.

use uspec::{run_pipeline, run_pipeline_streaming, PipelineOptions};
use uspec_corpus::{generate_corpus, java_library, GenOptions, GeneratedSource, SliceSource};
use uspec_pta::{Spec, SpecDb};

fn spec_list(db: &SpecDb) -> Vec<Spec> {
    let mut v: Vec<Spec> = db.iter().copied().collect();
    v.sort();
    v
}

#[test]
fn streaming_is_equivalent_to_batch_for_every_shard_size() {
    let lib = java_library();
    let table = lib.api_table();
    let gen = GenOptions {
        num_files: 500,
        seed: 11,
        ..GenOptions::default()
    };
    let sources: Vec<(String, String)> = generate_corpus(&lib, &gen)
        .into_iter()
        .map(|f| (f.name, f.source))
        .collect();

    let batch = run_pipeline(&sources, &table, &PipelineOptions::default());
    assert_eq!(
        batch.corpus.peak_resident_graphs, batch.corpus.graphs,
        "batch holds every graph at once"
    );

    // Shard sizes chosen to cover: an even divisor, a ragged last shard,
    // and a size larger than the corpus (single shard).
    for shard_size in [64usize, 17, 1000] {
        let opts = PipelineOptions {
            shard_size,
            ..PipelineOptions::default()
        };
        let streamed = run_pipeline_streaming(&SliceSource::new(&sources), &table, &opts);

        assert_eq!(
            streamed.corpus.totals(),
            batch.corpus.totals(),
            "corpus totals at shard_size {shard_size}"
        );

        // Identical candidates: same Γ lists in the same order, same
        // match counts.
        assert_eq!(
            streamed.candidates.confidences, batch.candidates.confidences,
            "Γ_S lists at shard_size {shard_size}"
        );
        assert_eq!(
            streamed.candidates.match_counts,
            batch.candidates.match_counts
        );

        // Identical scores, bit for bit.
        assert_eq!(streamed.learned.scored.len(), batch.learned.scored.len());
        for (s, b) in streamed.learned.scored.iter().zip(&batch.learned.scored) {
            assert_eq!(s.spec, b.spec, "shard_size {shard_size}");
            assert_eq!(
                s.score.to_bits(),
                b.score.to_bits(),
                "score of {:?}",
                s.spec
            );
            assert_eq!(s.matches, b.matches);
        }

        // Identical SpecDb at the paper's τ = 0.6.
        assert_eq!(
            spec_list(&streamed.select(0.6)),
            spec_list(&batch.select(0.6)),
            "SpecDb at shard_size {shard_size}"
        );

        // Memory boundedness: a proper shard split never holds the whole
        // corpus (sanity floor: at least one shard's worth).
        if shard_size < sources.len() {
            assert!(
                streamed.corpus.peak_resident_graphs < batch.corpus.peak_resident_graphs,
                "shard_size {shard_size}: peak {} should be below batch {}",
                streamed.corpus.peak_resident_graphs,
                batch.corpus.peak_resident_graphs
            );
        } else {
            assert_eq!(
                streamed.corpus.peak_resident_graphs,
                batch.corpus.peak_resident_graphs
            );
        }
        assert!(streamed.corpus.peak_resident_graphs > 0);
    }
}

#[test]
fn generated_source_streams_identically_to_materialized_corpus() {
    // The on-demand generator must feed the pipeline the same corpus as an
    // eagerly materialized slice — nothing about streaming generation may
    // leak into the learned result.
    let lib = java_library();
    let table = lib.api_table();
    let gen = GenOptions {
        num_files: 200,
        seed: 23,
        ..GenOptions::default()
    };
    let opts = PipelineOptions {
        shard_size: 64,
        ..PipelineOptions::default()
    };

    let sources: Vec<(String, String)> = generate_corpus(&lib, &gen)
        .into_iter()
        .map(|f| (f.name, f.source))
        .collect();
    let from_slice = run_pipeline_streaming(&SliceSource::new(&sources), &table, &opts);
    let from_gen = run_pipeline_streaming(&GeneratedSource::new(&lib, &gen), &table, &opts);

    assert_eq!(from_gen.corpus.totals(), from_slice.corpus.totals());
    assert_eq!(
        from_gen.candidates.confidences,
        from_slice.candidates.confidences
    );
    assert_eq!(
        spec_list(&from_gen.select(0.6)),
        spec_list(&from_slice.select(0.6))
    );
}
