//! The paper's running example (Fig. 2 / Fig. 3 / §5.1 / §6.2) end to end.

use uspec_repro::graph::Pos;
use uspec_repro::lang::{lower_program, parse, ApiTable, LowerOptions, MethodId};
use uspec_repro::learn::{induced_edges, match_patterns};
use uspec_repro::pta::{Pta, PtaOptions, Spec, SpecDb};
use uspec_repro::uspec::{analyze_source, analyze_source_with_specs, PipelineOptions};

const FIG2: &str = r#"
    fn main(someApi) {
        map = new HashMap();
        map.put("key", someApi.getFile());
        name = map.get("key").getName();
    }
"#;

fn hashmap_specs() -> SpecDb {
    SpecDb::from_specs([Spec::RetArg {
        target: MethodId::new("HashMap", "get", 1),
        source: MethodId::new("HashMap", "put", 2),
        x: 2,
    }])
}

#[test]
fn fig3_solid_edges_in_api_unaware_graph() {
    let g = &analyze_source(FIG2, &ApiTable::new(), &PipelineOptions::default()).unwrap()[0];
    let ev = |method: &str, pos: Pos| {
        g.sites()
            .find(|(_, i)| i.method.method.as_str() == method)
            .and_then(|(s, _)| g.event_id(s, pos))
            .unwrap_or_else(|| panic!("missing ⟨{method},{pos:?}⟩"))
    };
    // The solid edges of Fig. 3.
    assert!(g.has_edge(ev("<new>", Pos::Ret), ev("put", Pos::Recv)));
    assert!(g.has_edge(ev("put", Pos::Recv), ev("get", Pos::Recv)));
    assert!(g.has_edge(ev("getFile", Pos::Ret), ev("put", Pos::Arg(2))));
    assert!(g.has_edge(ev("get", Pos::Ret), ev("getName", Pos::Recv)));
    // The dashed edge ℓ does NOT exist API-unaware.
    assert!(!g.has_edge(ev("getFile", Pos::Ret), ev("getName", Pos::Recv)));
}

#[test]
fn candidate_matching_instantiates_the_spec_of_section_5_1() {
    let g = &analyze_source(FIG2, &ApiTable::new(), &PipelineOptions::default()).unwrap()[0];
    let site = |m: &str| {
        g.api_sites()
            .find(|(_, i)| i.method.method.as_str() == m)
            .map(|(s, _)| s)
            .unwrap()
    };
    let matches = match_patterns(g, site("get"), site("put"));
    assert_eq!(matches.len(), 1);
    let Spec::RetArg { target, source, x } = matches[0].spec else {
        panic!("expected RetArg")
    };
    assert_eq!(
        (target.method.as_str(), source.method.as_str(), x),
        ("get", "put", 2)
    );

    // Exactly the single induced edge ℓ of Fig. 3.
    let edges = induced_edges(g, &matches[0]);
    assert_eq!(edges.len(), 1);
    let (a, b) = edges[0];
    assert_eq!(
        g.site_info(g.event(a).site).unwrap().method.method.as_str(),
        "getFile"
    );
    assert_eq!(g.event(b).pos, Pos::Recv);
}

#[test]
fn fig3_dashed_edges_appear_after_history_merge() {
    // §3.3: an analysis aware of the HashMap spec merges the histories of
    // o1 and o2, adding the dashed edges of Fig. 3, including ℓ.
    let g = &analyze_source_with_specs(
        FIG2,
        &ApiTable::new(),
        &hashmap_specs(),
        &PipelineOptions::default(),
    )
    .unwrap()[0];
    let ev = |method: &str, pos: Pos| {
        g.sites()
            .find(|(_, i)| i.method.method.as_str() == method)
            .and_then(|(s, _)| g.event_id(s, pos))
            .unwrap_or_else(|| panic!("missing ⟨{method},{pos:?}⟩"))
    };
    // ℓ: ⟨getFile,ret⟩ → ⟨getName,0⟩.
    assert!(g.has_edge(ev("getFile", Pos::Ret), ev("getName", Pos::Recv)));
    // The merged history of §3.3:
    // (⟨getFile,ret⟩, ⟨put,2⟩, ⟨get,ret⟩, ⟨getName,0⟩).
    assert!(g.has_edge(ev("put", Pos::Arg(2)), ev("get", Pos::Ret)));
    assert!(g.has_edge(ev("getFile", Pos::Ret), ev("get", Pos::Ret)));
}

#[test]
fn ghost_fields_of_section_6_2() {
    // §6.2's example: the ghost field (get, "key") written by put, read by
    // get — observable as the put value flowing to the get return.
    let program = parse(FIG2).unwrap();
    let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
        .unwrap()
        .pop()
        .unwrap();
    let pta = Pta::run(&body, &hashmap_specs(), &PtaOptions::default());
    let put = pta
        .call_records()
        .find(|c| c.method.method.as_str() == "put")
        .unwrap();
    let get = pta
        .call_records()
        .find(|c| c.method.method.as_str() == "get")
        .unwrap();
    let get_name = pta
        .call_records()
        .find(|c| c.method.method.as_str() == "getName")
        .unwrap();
    assert!(Pta::may_alias(&put.args[1], &get.ret));
    assert_eq!(
        get.ret,
        *get_name.recv.as_ref().unwrap(),
        "getName's receiver is exactly get's return"
    );
    // The heap contains a ghost field entry.
    assert!(pta
        .heap
        .iter()
        .any(|((_, f), _)| matches!(f, uspec_repro::pta::FieldKey::Ghost(_))));
}

#[test]
fn fig4_low_confidence_match_is_still_a_match() {
    // Fig. 4: map.put("key","value"); map.get("key") — matches the pattern
    // even though its induced edge will score low (the value is a literal
    // with no consistent consumer relation).
    let src = r#"
        fn main() {
            map = new HashMap();
            map.put("key", "value");
            value = map.get("key");
        }
    "#;
    let g = &analyze_source(src, &ApiTable::new(), &PipelineOptions::default()).unwrap()[0];
    let site = |m: &str| {
        g.api_sites()
            .find(|(_, i)| i.method.method.as_str() == m)
            .map(|(s, _)| s)
            .unwrap()
    };
    let matches = match_patterns(g, site("get"), site("put"));
    assert_eq!(matches.len(), 1, "Fig. 4 is a pattern match");
}
