//! End-to-end pipeline integration: both universes, ground-truth quality
//! gates, anti-pattern filtering, and the §5.4 extension.

use uspec_repro::corpus::{generate_corpus, java_library, python_library, GenOptions, Library};
use uspec_repro::lang::MethodId;
use uspec_repro::pta::Spec;
use uspec_repro::uspec::{precision_recall, run_pipeline, PipelineOptions, PipelineResult};

fn run(lib: &Library, n: usize, seed: u64) -> PipelineResult {
    let sources: Vec<(String, String)> = generate_corpus(
        lib,
        &GenOptions {
            num_files: n,
            seed,
            ..GenOptions::default()
        },
    )
    .into_iter()
    .map(|f| (f.name, f.source))
    .collect();
    run_pipeline(&sources, &lib.api_table(), &PipelineOptions::default())
}

#[test]
fn java_pipeline_meets_quality_gates() {
    let lib = java_library();
    let result = run(&lib, 2500, 42);
    assert_eq!(result.corpus.failures, 0);

    let points = precision_recall(&result.learned, |s| lib.is_true_spec(s), &[0.6]);
    assert!(
        points[0].precision >= 0.75,
        "precision at τ=0.6 should be high, got {:.3}",
        points[0].precision
    );
    assert!(
        points[0].recall >= 0.5,
        "recall at τ=0.6 should be substantial, got {:.3}",
        points[0].recall
    );

    // Showcase specifications of Tab. 3 are learned.
    let db = result.select(0.6);
    let get = MethodId::new("java.util.HashMap", "get", 1);
    let put = MethodId::new("java.util.HashMap", "put", 2);
    assert!(db.contains(&Spec::RetArg {
        target: get,
        source: put,
        x: 2
    }));
    assert!(db.has_ret_same(MethodId::new("android.view.ViewGroup", "findViewById", 1)));
    assert!(db.has_ret_same(MethodId::new("java.security.KeyStore", "getKey", 2)));
    assert!(db.has_ret_same(MethodId::new("java.sql.ResultSet", "getString", 1)));
    let sp_get = MethodId::new("android.util.SparseArray", "get", 1);
    let sp_put = MethodId::new("android.util.SparseArray", "put", 2);
    assert!(db.contains(&Spec::RetArg {
        target: sp_get,
        source: sp_put,
        x: 2
    }));
}

#[test]
fn java_anti_patterns_are_filtered() {
    let lib = java_library();
    let result = run(&lib, 2500, 42);
    // §7.2: "Specifications like RetSame(nextInt) for SecureRandom are
    // successfully filtered out by scoring based on the probabilistic
    // model" — they are candidates but score very low.
    for (class, method) in [
        ("java.security.SecureRandom", "nextInt"),
        ("java.util.Random", "nextInt"),
        ("java.util.Iterator", "next"),
    ] {
        let spec = Spec::RetSame {
            method: MethodId::new(class, method, 0),
        };
        if let Some(entry) = result.learned.get(&spec) {
            assert!(
                entry.score < 0.3,
                "{spec:?} must be filtered, scored {:.3}",
                entry.score
            );
        }
    }
}

#[test]
fn python_pipeline_learns_dict_and_config_parser() {
    let lib = python_library();
    let result = run(&lib, 2500, 7);
    let db = result.select(0.6);
    let load = MethodId::new("Dict", "SubscriptLoad", 1);
    let store = MethodId::new("Dict", "SubscriptStore", 2);
    assert!(db.contains(&Spec::RetArg {
        target: load,
        source: store,
        x: 2
    }));
    // The three-argument SafeConfigParser spec of Tab. 3.
    let get = MethodId::new("configParser.SafeConfigParser", "get", 2);
    let set = MethodId::new("configParser.SafeConfigParser", "set", 3);
    assert!(db.contains(&Spec::RetArg {
        target: get,
        source: set,
        x: 3
    }));
}

#[test]
fn planted_false_positives_survive_like_in_table3() {
    // Tab. 3 deliberately includes two incorrect, high-scoring specs; our
    // corpus plants the same failure modes.
    let java = java_library();
    let jr = run(&java, 2500, 42);
    let rule = Spec::RetArg {
        target: MethodId::new(
            "org.antlr.runtime.tree.TreeAdaptor",
            "rulePostProcessing",
            1,
        ),
        source: MethodId::new("org.antlr.runtime.tree.TreeAdaptor", "addChild", 2),
        x: 2,
    };
    assert!(!java.is_true_spec(&rule));
    let entry = jr.learned.get(&rule).expect("candidate extracted");
    assert!(
        entry.score > 0.6,
        "FP survives selection: {:.3}",
        entry.score
    );

    let py = python_library();
    let pr = run(&py, 2500, 7);
    let pop = Spec::RetSame {
        method: MethodId::new("List", "pop", 0),
    };
    assert!(!py.is_true_spec(&pop));
    let entry = pr.learned.get(&pop).expect("candidate extracted");
    assert!(
        entry.score > 0.6,
        "FP survives selection: {:.3}",
        entry.score
    );
}

#[test]
fn extension_rule_holds_on_selected_set() {
    let lib = java_library();
    let result = run(&lib, 800, 3);
    let db = result.select(0.6);
    // Property (3) of §5.4.
    for spec in db.iter() {
        if let Spec::RetArg { target, .. } = spec {
            assert!(db.has_ret_same(*target), "closure violated for {spec:?}");
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let lib = python_library();
    let a = run(&lib, 300, 9);
    let b = run(&lib, 300, 9);
    assert_eq!(a.learned.len(), b.learned.len());
    for (x, y) in a.learned.scored.iter().zip(&b.learned.scored) {
        assert_eq!(x.spec, y.spec);
        assert!((x.score - y.score).abs() < 1e-9);
    }
}
