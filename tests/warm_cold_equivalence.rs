//! Warm/cold equivalence of the artifact cache.
//!
//! The cache is a pure memoization layer: for a fixed corpus and options,
//! a run must produce byte-identical learned specifications and an
//! identical invariant report section whether it runs with no cache, with
//! a cold cache (all misses), or with a warm cache (all hits). Corrupted
//! cache entries must degrade to misses — recorded as incidents in the
//! machine-local `timings.cache` section — without changing any result.
//!
//! This test lives alone in its own binary: the telemetry registry and the
//! store incident log are process-global, and the assertions on hit/miss
//! counters need `uspec_telemetry::reset()` between runs without
//! concurrent tests mutating them.

use std::fs;
use std::path::{Path, PathBuf};

use uspec::{run_pipeline_cached, PipelineOptions};
use uspec_corpus::{generate_corpus, java_library, GenOptions, SliceSource};
use uspec_store::ArtifactStore;
use uspec_telemetry::CacheSection;

/// One full pipeline run from a clean telemetry state. Returns the
/// serialized learned specs, the serialized invariant report section, and
/// the cache counters the run accumulated.
fn run(
    sources: &[(String, String)],
    store: Option<&ArtifactStore>,
) -> (String, String, CacheSection) {
    uspec_telemetry::reset();
    uspec_store::incidents::reset();
    let lib = java_library();
    let opts = PipelineOptions {
        shard_size: 32,
        ..PipelineOptions::default()
    };
    let result = run_pipeline_cached(&SliceSource::new(sources), &lib.api_table(), &opts, store);
    let specs = serde_json::to_string_pretty(&result.learned).unwrap();
    let report = uspec::build_run_report("learn", &result, &opts, 0.6, 0.0);
    let invariant = serde_json::to_string_pretty(&report.invariant()).unwrap();
    (specs, invariant, report.timings.cache)
}

/// Every object file currently in the store, sorted for determinism.
fn object_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for bucket in fs::read_dir(dir.join("objects")).unwrap() {
        let bucket = bucket.unwrap().path();
        if !bucket.is_dir() {
            continue;
        }
        for f in fs::read_dir(&bucket).unwrap() {
            out.push(f.unwrap().path());
        }
    }
    out.sort();
    out
}

#[test]
fn warm_runs_are_byte_identical_and_corruption_degrades_to_misses() {
    let dir = std::env::temp_dir().join(format!("uspec-warm-cold-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    let lib = java_library();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 120,
            seed: 11,
            ..GenOptions::default()
        },
    );
    let sources: Vec<(String, String)> = files.into_iter().map(|f| (f.name, f.source)).collect();

    // Baseline: no cache at all.
    let (specs0, invariant0, cache0) = run(&sources, None);
    assert_eq!(cache0.lookups, 0, "no store, no lookups");
    assert!(cache0.incidents.is_empty());

    // Cold: every lookup misses, every shard result is written.
    let store = ArtifactStore::open(&dir).unwrap();
    let (specs1, invariant1, cache1) = run(&sources, Some(&store));
    assert_eq!(specs1, specs0, "cold cached run changed the learned specs");
    assert_eq!(
        invariant1, invariant0,
        "cold run changed the invariant report"
    );
    assert!(cache1.lookups > 0);
    assert_eq!(cache1.hits, 0, "nothing to hit on a cold cache");
    assert_eq!(cache1.misses, cache1.lookups);
    assert!(cache1.bytes_written > 0);
    assert_eq!(cache1.corrupt, 0);

    // Warm: every lookup hits, nothing is rewritten. The warm run makes
    // *fewer* lookups than the cold one — a model store hit means no
    // file's samples are ever demanded — so only the hit/miss shape is
    // asserted, not the lookup count.
    let (specs2, invariant2, cache2) = run(&sources, Some(&store));
    assert_eq!(specs2, specs0, "warm run changed the learned specs");
    assert_eq!(
        invariant2, invariant0,
        "warm run changed the invariant report"
    );
    assert!(cache2.lookups > 0);
    assert_eq!(
        cache2.hits, cache2.lookups,
        "warm run should hit every lookup"
    );
    assert_eq!(cache2.misses, 0);
    assert_eq!(cache2.bytes_written, 0);

    // Corrupt EVERY object — truncate even indices, flip a payload byte in
    // odd ones. Refs stay intact, so nothing is *invalidated*; every
    // durable result is simply unreadable.
    let objects = object_files(&dir);
    assert!(objects.len() >= 2, "expected many cached objects");
    for (i, path) in objects.iter().enumerate() {
        let mut bytes = fs::read(path).unwrap();
        if i % 2 == 0 {
            bytes.truncate(bytes.len() / 2);
        } else {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        fs::write(path, &bytes).unwrap();
    }

    // Damaged entries read as misses (with incidents, capped at
    // `MAX_RETAINED`), every job re-executes, and the results are
    // unchanged.
    let (specs3, invariant3, cache3) = run(&sources, Some(&store));
    assert_eq!(specs3, specs0, "corrupted cache changed the learned specs");
    assert_eq!(
        invariant3, invariant0,
        "corrupted cache changed the invariant report"
    );
    assert_eq!(cache3.hits, 0, "every object was damaged");
    assert_eq!(cache3.misses, cache3.lookups);
    assert_eq!(
        cache3.corrupt, cache3.lookups,
        "every miss was a corruption"
    );
    assert!(!cache3.incidents.is_empty());
    assert!(
        cache3.incidents.len() <= uspec_store::incidents::MAX_RETAINED,
        "incident log is capped: {}",
        cache3.incidents.len()
    );
    assert!(cache3.bytes_written > 0, "damaged entries are rewritten");

    // The rewrite healed the store: verify is clean and the next run is
    // all hits again.
    let verify = store.verify().unwrap();
    assert!(verify.corrupt.is_empty(), "{:?}", verify.corrupt);
    let (_, _, cache4) = run(&sources, Some(&store));
    assert_eq!(cache4.hits, cache4.lookups);

    let _ = fs::remove_dir_all(&dir);
}
