#!/usr/bin/env bash
# Repo CI entry point: formatting, lints, tests.
#
# Works both online (real crates.io dependencies) and in offline sandboxes:
# when the registry is unreachable, the functional stand-ins under
# .offline-stubs/ are wired in via a generated [patch.crates-io] config (see
# .offline-stubs/README.md). Release artifacts are never built against the
# stubs — this is a CI/test convenience only.
set -euo pipefail
cd "$(dirname "$0")"

# Flags must come AFTER the subcommand: `cargo clippy` re-invokes an inner
# `cargo check`, and only post-subcommand flags are forwarded to it.
FLAGS=()
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    echo "crates.io unreachable — using .offline-stubs via [patch.crates-io]"
    mkdir -p target
    PATCH=target/offline-patch.toml
    {
        echo "[patch.crates-io]"
        for stub in .offline-stubs/*/Cargo.toml; do
            name=$(basename "$(dirname "$stub")")
            echo "$name = { path = \"$(pwd)/.offline-stubs/$name\" }"
        done
    } > "$PATCH"
    FLAGS=(--offline --config "$PATCH")
fi

cargo fmt --all -- --check
cargo clippy "${FLAGS[@]+"${FLAGS[@]}"}" --workspace --all-targets -- -D warnings
cargo test "${FLAGS[@]+"${FLAGS[@]}"}" -q --workspace
cargo bench "${FLAGS[@]+"${FLAGS[@]}"}" --workspace --no-run
# Points-to engine perf smoke: verifies the worklist solver is byte-identical
# to the naive reference on the bench bodies and records throughput,
# per-config pass histograms, and the lowering/propagation timing split in
# BENCH_pta.json.
cargo bench "${FLAGS[@]+"${FLAGS[@]}"}" -p uspec-bench --bench perf_pta -- --smoke
# Telemetry overhead smoke: asserts the always-on metrics registry costs
# < 3% wall time on the instrumented hot path (BENCH_telemetry.json).
cargo bench "${FLAGS[@]+"${FLAGS[@]}"}" -p uspec-bench --bench perf_telemetry -- --smoke
# Incremental job-graph smoke: cold vs warm vs single-file-edit reruns must
# be byte-identical (BENCH_incremental.json; the 10x edit-speedup floor is
# asserted only on full-sized runs, not in --smoke).
cargo bench "${FLAGS[@]+"${FLAGS[@]}"}" -p uspec-bench --bench perf_incremental -- --smoke
# Serve daemon smoke: concurrent-client qps/latency, edit-to-fresh lag, and
# byte-identity of served answers against the batch pipeline
# (BENCH_serve.json; the edit-job-fraction cap is asserted on full runs).
cargo bench "${FLAGS[@]+"${FLAGS[@]}"}" -p uspec-bench --bench perf_serve -- --smoke
# Run-report smoke: a real `eval` must emit a metrics file that the
# validator accepts (schema version, exact key set at every level — our
# unknown-field drift detector — and non-zero stage timings), and a span
# timeline that parses as a Chrome trace_events document (complete events,
# monotonic timestamps).
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    eval --lang java --files 120 --metrics-out target/ci-report.json \
    --trace-out target/ci-trace.json -q
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-repro --bin check_report -- target/ci-report.json
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-repro --bin check_trace -- target/ci-trace.json
# Provenance smoke: a learned spec file must explain itself — every scored
# spec's evidence back to corpus file:line plus a counterfactual.
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    generate --lang java --files 120 --out target/ci-corpus -q
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    learn --lang java --out target/ci-specs.json target/ci-corpus -q
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    explain target/ci-specs.json --all -q > target/ci-explain.txt
grep -q "features:" target/ci-explain.txt \
    || { echo "ci: explain printed no feature contributions"; exit 1; }
# Analyze trace smoke: the single-file command exports a span timeline too
# (at least the run-wide cli.analyze span), in the same Chrome format.
src_file=$(ls target/ci-corpus/*.u | head -1)
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    analyze --lang java --trace-out target/ci-analyze-trace.json "$src_file" -q \
    > /dev/null
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-repro --bin check_trace -- target/ci-analyze-trace.json
# Artifact-cache smoke: a cold eval populates the store, a warm re-run must
# draw from it (nonzero hits in the machine-local timings.cache section,
# which check_report cross-validates against lookups), and the store must
# verify clean afterwards. The store bench compiles above via --no-run.
rm -rf target/ci-cache
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    eval --lang java --files 120 --cache-dir target/ci-cache -q
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    eval --lang java --files 120 --cache-dir target/ci-cache \
    --metrics-out target/ci-warm-report.json -q
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-repro --bin check_report -- target/ci-warm-report.json
if grep -q '"hits": 0,' target/ci-warm-report.json; then
    echo "ci: warm eval recorded zero cache hits"; exit 1
fi
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    cache verify --cache-dir target/ci-cache -q
# Run-ledger + perf sentinel: two identical evals against one cache append
# ledger entries that validate structurally (check_ledger), diff clean
# (identical invariant digests, zero counter drift), and satisfy the
# declarative budgets in perf-budgets.toml. Then the negative test: a
# seeded timing regression in a copied ledger must make `perf check` fail.
rm -rf target/ci-perf-cache
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    eval --lang java --files 120 --cache-dir target/ci-perf-cache -q
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    eval --lang java --files 120 --cache-dir target/ci-perf-cache -q
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-repro --bin check_ledger -- target/ci-perf-cache/ledger
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    perf list --cache-dir target/ci-perf-cache -q
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    perf diff prev latest --cache-dir target/ci-perf-cache -q > target/ci-perf-diff.txt
grep -q "invariant digest: identical" target/ci-perf-diff.txt \
    || { echo "ci: identical runs produced different invariant digests"; exit 1; }
grep -q "counters: no drift" target/ci-perf-diff.txt \
    || { echo "ci: perf diff found counter drift between identical runs"; exit 1; }
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    perf check --cache-dir target/ci-perf-cache --budgets perf-budgets.toml -q
rm -rf target/ci-ledger-regressed
cp -r target/ci-perf-cache/ledger target/ci-ledger-regressed
latest=$(ls target/ci-ledger-regressed/*.json | sort | tail -1)
sed -i -E 's/"total_seconds": [0-9.eE+-]+/"total_seconds": 9999.0/' "$latest"
if cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    perf check --ledger target/ci-ledger-regressed --budgets perf-budgets.toml -q; then
    echo "ci: perf check accepted a seeded regression"; exit 1
fi
# Serve smoke: start the daemon over a small corpus with the full
# observability plane armed (Prometheus exposition, SLO sentinel), query
# it through the one-shot client, edit a corpus file, poll until the new
# generation is served (the watcher + incremental re-learn path), shut it
# down over the protocol, and validate the final metrics report (whose
# timings.serve section check_report cross-validates: requests =
# dispatched + rejected, windows partition `all`, SLO sums agree).
rm -rf target/ci-serve-corpus target/ci-serve-cache
rm -f target/ci-serve.prom
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    generate --lang java --files 40 --out target/ci-serve-corpus -q
SOCK=target/ci-serve.sock
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    serve --lang java --socket "$SOCK" --cache-dir target/ci-serve-cache \
    --metrics-out target/ci-serve-report.json \
    --prom-out target/ci-serve.prom --budgets perf-budgets.toml \
    target/ci-serve-corpus -q &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.2; done
[ -S "$SOCK" ] || { echo "ci: serve daemon never bound its socket"; exit 1; }
send() {
    cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
        serve --send "$1" --socket "$SOCK" --timeout 10 -q
}
send '{"id":1,"method":"status"}' | grep -q '"ok":true' \
    || { echo "ci: serve status failed"; exit 1; }
send '{"id":2,"method":"spec.lookup"}' | grep -q '"spec":' \
    || { echo "ci: serve lookup returned no specs"; exit 1; }
send '{"id":3,"method":"nonsense"}' | grep -q '"code":"method"' \
    || { echo "ci: unknown method not rejected with a typed error"; exit 1; }
# First Prometheus scrape (the daemon rewrites the file about once a
# second once the idle loop is pumping).
for _ in $(seq 1 100); do [ -s target/ci-serve.prom ] && break; sleep 0.2; done
[ -s target/ci-serve.prom ] \
    || { echo "ci: daemon never wrote its Prometheus exposition"; exit 1; }
cp target/ci-serve.prom target/ci-serve-scrape1.prom
# Edit a corpus file; the daemon must pick it up and serve a new generation.
printf '\nfn ci_edit() { s0 = "edited"; }\n' >> "$(ls target/ci-serve-corpus/*.u | head -1)"
fresh=""
for _ in $(seq 1 150); do
    if send '{"id":4,"method":"status"}' | grep -q '"gen":2'; then fresh=yes; break; fi
    sleep 0.2
done
[ -n "$fresh" ] || { echo "ci: edited corpus never produced generation 2"; exit 1; }
# Second scrape after the traffic above: syntax must hold in both and
# every counter must be monotone non-decreasing between them.
sleep 1.5
cp target/ci-serve.prom target/ci-serve-scrape2.prom
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-repro --bin check_metrics -- \
    target/ci-serve-scrape1.prom target/ci-serve-scrape2.prom
# `uspec top` renders the same snapshot as a table: the busy streams and
# the slow-query log must both be visible.
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    top --socket "$SOCK" --timeout 10 -q > target/ci-serve-top.txt
grep -q "spec.lookup" target/ci-serve-top.txt \
    || { echo "ci: uspec top shows no spec.lookup traffic"; exit 1; }
grep -q "slowest requests" target/ci-serve-top.txt \
    || { echo "ci: uspec top shows no slow-query log"; exit 1; }
send '{"id":5,"method":"shutdown"}' | grep -q "shutting down" \
    || { echo "ci: serve shutdown not acknowledged"; exit 1; }
wait "$SERVE_PID"
trap - EXIT
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-repro --bin check_report -- target/ci-serve-report.json
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-repro --bin check_ledger -- target/ci-serve-cache/ledger
# SLO enforcement from the ledger: the [serve] ceilings must hold for the
# exit entry the daemon just appended. Only the [serve] table applies —
# the batch budgets (warm_speedup, cache_hit_rate) are calibrated for the
# eval ledger, not a daemon whose mid-run entries have near-zero wall
# time — so extract it from the single source of truth.
sed -n '/^\[serve\]/,$p' perf-budgets.toml > target/ci-serve-budgets.toml
cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    perf check --cache-dir target/ci-serve-cache \
    --budgets target/ci-serve-budgets.toml -q
# Negative test: a seeded p99 regression in a copied ledger must fail.
rm -rf target/ci-serve-ledger-breach
cp -r target/ci-serve-cache/ledger target/ci-serve-ledger-breach
latest=$(ls target/ci-serve-ledger-breach/*.json | sort | tail -1)
sed -i -E 's/"total_p99_ns": [0-9]+/"total_p99_ns": 9000000000/' "$latest"
if cargo run "${FLAGS[@]+"${FLAGS[@]}"}" -q -p uspec-cli --bin uspec -- \
    perf check --ledger target/ci-serve-ledger-breach \
    --budgets target/ci-serve-budgets.toml -q; then
    echo "ci: perf check accepted a seeded serve p99 breach"; exit 1
fi
echo "ci: all checks passed"
