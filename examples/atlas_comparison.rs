//! §7.5: the dynamic Atlas baseline side by side with USpec.
//!
//! Atlas executes synthesized unit tests against the (here: interpreted)
//! library and generalizes observed object flows; USpec never runs the
//! library — it learns from static usage alone.
//!
//! Run with: `cargo run --release --example atlas_comparison`

use uspec_repro::atlas::{evaluate, run_atlas, AtlasOptions, CArg, CKey, ClassStatus, Interp};
use uspec_repro::corpus::{generate_corpus, java_library, GenOptions};
use uspec_repro::lang::Symbol;
use uspec_repro::uspec::{run_pipeline, PipelineOptions};

fn main() {
    let lib = java_library();

    // ---- A taste of the concrete interpreter Atlas tests against -------
    let mut m = Interp::new(&lib);
    let map = m
        .construct(Symbol::intern("java.util.HashMap"))
        .expect("constructible");
    let v = m.fresh(None);
    m.call(
        map,
        Symbol::intern("put"),
        &[CArg::Key(CKey::Str("k".into())), CArg::Obj(v)],
    )
    .expect("put works");
    let got = m
        .call(
            map,
            Symbol::intern("get"),
            &[CArg::Key(CKey::Str("k".into()))],
        )
        .expect("get works");
    println!("concrete run: get(\"k\") == put value? {}", got == Some(v));

    // ---- Atlas over the whole library ------------------------------------
    let results = run_atlas(&lib, &AtlasOptions::default());
    let evals = evaluate(&lib, &results);
    let count = |status: ClassStatus| evals.iter().filter(|e| e.status == status).count();
    println!("\nAtlas over {} classes:", evals.len());
    println!("  sound:           {}", count(ClassStatus::Sound));
    println!("  unsound:         {}", count(ClassStatus::Unsound));
    println!("  no constructor:  {}", count(ClassStatus::NoConstructor));
    println!("  trivially empty: {}", count(ClassStatus::TriviallyEmpty));
    println!("\nfailures the paper highlights:");
    for class in [
        "java.util.Properties",
        "java.sql.ResultSet",
        "java.security.KeyStore",
    ] {
        let e = evals
            .iter()
            .find(|e| e.class == Symbol::intern(class))
            .expect("evaluated");
        println!(
            "  {class}: {:?} (missed {} true flows)",
            e.status,
            e.missed.len()
        );
    }

    // ---- USpec on the same classes ----------------------------------------
    let sources: Vec<(String, String)> = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 1500,
            seed: 21,
            ..GenOptions::default()
        },
    )
    .into_iter()
    .map(|f| (f.name, f.source))
    .collect();
    let result = run_pipeline(&sources, &lib.api_table(), &PipelineOptions::default());
    let specs = result.select(0.6);
    println!("\nUSpec (static, unsupervised) on the same classes:");
    for class in [
        "java.util.Properties",
        "java.sql.ResultSet",
        "java.security.KeyStore",
    ] {
        let sym = Symbol::intern(class);
        let learned: Vec<String> = specs
            .iter()
            .filter(|s| s.class() == sym)
            .map(|s| format!("{s:?}"))
            .collect();
        println!(
            "  {class}: {}",
            if learned.is_empty() {
                "-".into()
            } else {
                learned.join(", ")
            }
        );
    }
}
