//! Specification mining in depth: inspect every stage of the pipeline —
//! event graphs, the probabilistic model's edge predictions, candidate
//! matching, induced edges, and scoring.
//!
//! Run with: `cargo run --release --example learn_specs`

use uspec_repro::corpus::{generate_corpus, python_library, GenOptions};
use uspec_repro::graph::Pos;
use uspec_repro::learn::{induced_edges, match_patterns};
use uspec_repro::uspec::{analyze_source, run_pipeline, PipelineOptions};

fn main() {
    let lib = python_library();
    let table = lib.api_table();
    let opts = PipelineOptions::default();

    // ---- Stage 1: event graphs (§3) ------------------------------------
    let snippet = r#"
        fn main(flag0) {
            kwargs = new Dict();
            v = "hello";
            kwargs.SubscriptStore("greeting", v);
            w = kwargs.SubscriptLoad("greeting");
            s = w.strip();
        }
    "#;
    let graphs = analyze_source(snippet, &table, &opts).expect("snippet analyzes");
    let g = &graphs[0];
    println!(
        "event graph: {} events, {} edges",
        g.num_events(),
        g.num_edges()
    );
    for (site, info) in g.sites() {
        let events: Vec<String> = [Pos::Recv, Pos::Arg(1), Pos::Arg(2), Pos::Ret]
            .iter()
            .filter(|&&p| g.event_id(site, p).is_some())
            .map(|p| format!("⟨{},{p}⟩", info.method.method))
            .collect();
        println!("  site {}: {}", info.method, events.join(" "));
    }

    // ---- Stage 2: pattern matching (§5.1) --------------------------------
    let load = g
        .api_sites()
        .find(|(_, i)| i.method.method.as_str() == "SubscriptLoad")
        .map(|(s, _)| s)
        .expect("load site");
    let store = g
        .api_sites()
        .find(|(_, i)| i.method.method.as_str() == "SubscriptStore")
        .map(|(s, _)| s)
        .expect("store site");
    let matches = match_patterns(g, load, store);
    println!("\npattern matches at (SubscriptLoad, SubscriptStore):");
    for m in &matches {
        let edges = induced_edges(g, m);
        println!("  {:?} induces {} edge(s)", m.spec, edges.len());
        for (a, b) in edges {
            println!(
                "    {:?}@{:?} → {:?}@{:?}",
                g.site_info(g.event(a).site).map(|i| i.method.method),
                g.event(a).pos,
                g.site_info(g.event(b).site).map(|i| i.method.method),
                g.event(b).pos
            );
        }
    }

    // ---- Stage 3: the full pipeline on a corpus (§4–5) -------------------
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 1500,
            seed: 3,
            ..GenOptions::default()
        },
    );
    let sources: Vec<(String, String)> = files.into_iter().map(|f| (f.name, f.source)).collect();
    let result = run_pipeline(&sources, &table, &opts);

    println!(
        "\ncorpus: {} files, {} candidate specifications",
        result.corpus.files,
        result.learned.len()
    );
    println!("\nall candidates with ground-truth label (✓ valid, ✗ invalid):");
    for s in &result.learned.scored {
        let mark = if lib.is_true_spec(&s.spec) {
            "✓"
        } else {
            "✗"
        };
        println!(
            "  {mark} {:.3}  Γ={:<3} matches={:<3} {:?}",
            s.score, s.scored_edges, s.matches, s.spec
        );
    }

    // ---- Stage 4: the §5.4 extension -------------------------------------
    let db = result.select(0.6);
    let extended: Vec<_> = db.extension_added().collect();
    println!(
        "\nselected {} specs at τ = 0.6; the §5.4 closure added {} RetSame specs:",
        db.len(),
        extended.len()
    );
    for s in extended.iter().take(5) {
        println!("  {s:?}");
    }
}
