//! Client analyses (§7.4 / Fig. 8): how learned aliasing specifications
//! remove a type-state false positive and a taint false negative.
//!
//! Run with: `cargo run --release --example client_analysis`

use uspec_repro::clients::{check_taint, check_typestate, TaintConfig, TypestateProtocol};
use uspec_repro::corpus::{generate_corpus, java_library, python_library, GenOptions};
use uspec_repro::lang::{lower_program, parse, LowerOptions};
use uspec_repro::pta::{Pta, PtaOptions, SpecDb};
use uspec_repro::uspec::{run_pipeline, PipelineOptions};

fn learn(lib: &uspec_repro::corpus::Library, n: usize, seed: u64) -> SpecDb {
    let sources: Vec<(String, String)> = generate_corpus(
        lib,
        &GenOptions {
            num_files: n,
            seed,
            ..GenOptions::default()
        },
    )
    .into_iter()
    .map(|f| (f.name, f.source))
    .collect();
    run_pipeline(&sources, &lib.api_table(), &PipelineOptions::default()).select(0.6)
}

fn main() {
    // ---- Fig. 8a: type-state --------------------------------------------
    let java = java_library();
    let table = java.api_table();
    let specs = learn(&java, 1500, 11);

    // The real-world pattern of Fig. 8a: the iterator is re-read from the
    // list instead of being bound to a variable.
    let fig8a = r#"
        fn main(flag0) {
            iters = new java.util.ArrayList();
            c = iters.get(0).hasNext();
            if (c) {
                x = iters.get(0).next();
            }
        }
    "#;
    let program = parse(fig8a).expect("parses");
    let body = lower_program(&program, &table, &LowerOptions::default())
        .expect("lowers")
        .pop()
        .expect("one function");
    let protocol = TypestateProtocol::iterator();

    let baseline = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
    let augmented = Pta::run(&body, &specs, &PtaOptions::default());
    println!("Fig. 8a — hasNext/next protocol on `iters.get(0)`:");
    println!(
        "  API-unaware baseline: {} violation(s)  ← false positive",
        check_typestate(&body, &baseline, &protocol).len()
    );
    println!(
        "  with learned specs:   {} violation(s)",
        check_typestate(&body, &augmented, &protocol).len()
    );

    // ---- Fig. 8b: taint ----------------------------------------------------
    let py = python_library();
    let table = py.api_table();
    let specs = learn(&py, 1500, 13);

    let fig8b = r#"
        fn main(request, html) {
            kwargs = new Dict();
            value = request.getParam("value");
            kwargs.setdefault("data-value", value);
            rendered = kwargs.SubscriptLoad("data-value");
            html.render(rendered);
        }
    "#;
    let program = parse(fig8b).expect("parses");
    let body = lower_program(&program, &table, &LowerOptions::default())
        .expect("lowers")
        .pop()
        .expect("one function");
    let config = TaintConfig::new(&["getParam"], &["render"], &["escape"]);

    let baseline = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
    let augmented = Pta::run(&body, &specs, &PtaOptions::default());
    println!("\nFig. 8b — XSS through a dict round-trip:");
    println!(
        "  API-unaware baseline: {} finding(s)  ← false negative",
        check_taint(&baseline, &config).len()
    );
    println!(
        "  with learned specs:   {} finding(s)",
        check_taint(&augmented, &config).len()
    );
}
