//! Quickstart: learn API aliasing specifications from a generated corpus
//! and use them to answer a may-alias query.
//!
//! Run with: `cargo run --release --example quickstart`

use uspec_repro::corpus::{generate_corpus, java_library, GenOptions};
use uspec_repro::lang::{lower_program, parse, LowerOptions, MethodId};
use uspec_repro::pta::{Pta, PtaOptions, Spec};
use uspec_repro::uspec::{run_pipeline, PipelineOptions};

fn main() {
    // 1. A "large dataset of programs": here, 800 generated files using the
    //    synthetic Java-like API universe.
    let lib = java_library();
    let table = lib.api_table();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 800,
            seed: 7,
            ..GenOptions::default()
        },
    );
    let sources: Vec<(String, String)> = files.into_iter().map(|f| (f.name, f.source)).collect();

    // 2. Run the unsupervised learning pipeline (Fig. 1 of the paper).
    let result = run_pipeline(&sources, &table, &PipelineOptions::default());
    println!(
        "analyzed {} files → {} event graphs ({} events, {} edges)",
        result.corpus.files, result.corpus.graphs, result.corpus.events, result.corpus.edges
    );
    println!(
        "model: {} positive / {} negative samples, train accuracy {:.3}",
        result.model_stats.n_pos, result.model_stats.n_neg, result.model_stats.train_accuracy
    );

    // 3. Select specifications at τ = 0.6 (§5.3).
    let specs = result.select(0.6);
    println!("\nlearned {} specifications; top 10 by score:", specs.len());
    for s in result.learned.scored.iter().take(10) {
        println!(
            "  {:.3}  (matches: {:>3})  {:?}",
            s.score, s.matches, s.spec
        );
    }

    // 4. Use the learned specifications in the augmented may-alias analysis
    //    (§6) on a program the paper's Fig. 2 is based on.
    let program = parse(
        r#"
        fn main(db: java.sql.Connection) {
            map = new java.util.HashMap();
            f = new java.io.File("data.txt");
            map.put("key", f);
            x = map.get("key");
            name = x.getName();
        }
        "#,
    )
    .expect("example parses");
    let body = lower_program(&program, &table, &LowerOptions::default())
        .expect("example lowers")
        .pop()
        .expect("one function");
    let pta = Pta::run(&body, &specs, &PtaOptions::default());
    let put = pta
        .call_records()
        .find(|c| c.method.method.as_str() == "put")
        .expect("put call");
    let get = pta
        .call_records()
        .find(|c| c.method.method.as_str() == "get")
        .expect("get call");
    let aliases = Pta::may_alias(&put.args[1], &get.ret);
    println!("\nmay-alias(put's value, get's return) = {aliases}");
    assert!(aliases, "the learned RetArg(get, put, 2) closes the gap");

    // The spec that made it possible:
    let spec = Spec::RetArg {
        target: MethodId::new("java.util.HashMap", "get", 1),
        source: MethodId::new("java.util.HashMap", "put", 2),
        x: 2,
    };
    println!(
        "thanks to {:?} (score {:.3})",
        spec,
        result.learned.get(&spec).map(|s| s.score).unwrap_or(0.0)
    );
}
