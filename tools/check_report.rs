//! CI validator for `--metrics-out` run reports.
//!
//! Usage: `check_report <report.json>`
//!
//! Two complementary checks on the same bytes:
//!
//! 1. a **typed** round-trip (`serde_json::from_str::<RunReport>`) proving
//!    the file deserializes into the current schema structs, and
//! 2. a **structural** scan with the tiny JSON reader below, comparing the
//!    key set at every level of the report against an explicit whitelist.
//!
//! The second pass is what catches schema drift in *both* directions: a
//! field added to the structs without bumping `schema` (extra key) and a
//! field dropped from the producer (missing key). The derive setup used
//! offline cannot express `deny_unknown_fields`, so the scan is the only
//! unknown-field detector we have.
//!
//! Also asserts run-level sanity: `schema == 7`, analyzed files > 0,
//! non-zero stage timings (a report whose spans are all empty means the
//! instrumentation was compiled out or disabled — CI should notice), and
//! internally consistent cache and job-engine accounting
//! (`hits + misses == lookups`; `reused` equals the per-kind
//! `memo_hits + store_hits` sum). The cost-attribution roll-up is
//! cross-validated against the independently-maintained job counters and
//! spans: when no records were dropped, per-kind executed/memo/store
//! counts must match `timings.jobs` exactly, and per-kind executed wall
//! time must be at least the nested `job.<kind>` span total. The serve
//! section's traffic accounting is cross-validated the same way: total
//! requests must equal the per-method dispatch sum plus rejected frames,
//! rejected frames are a lower bound on error responses, the sliding
//! windows must be internally ordered (p50 ≤ p95 ≤ p99, errors ≤
//! requests, recent ≤ lifetime) with the per-stream rows summing to the
//! `all` row, and the SLO breach total must equal its per-budget parts.

use std::process::ExitCode;

use uspec_telemetry::{RunReport, REPORT_SCHEMA_VERSION};

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects as ordered key/value lists).

// The reader is a complete JSON parser but the checker only ever walks
// objects, so scalar payloads go unread.
#[allow(dead_code)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Reader<'a> {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc as char),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut r = Reader::new(text);
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing data"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Schema whitelist (schema version 7). Every struct level of RunReport.

const SCHEMA_7: &[(&str, &[&str])] = &[
    (
        "",
        &[
            "schema",
            "command",
            "engine",
            "counters",
            "diagnostics",
            "provenance",
            "timings",
        ],
    ),
    (
        "counters",
        &["corpus", "pta", "model", "candidates", "metrics"],
    ),
    (
        "counters.corpus",
        &[
            "files",
            "failures",
            "duplicates",
            "graphs",
            "events",
            "edges",
        ],
    ),
    (
        "counters.pta",
        &[
            "bodies",
            "passes",
            "propagations",
            "constraints",
            "non_converged",
            "pass_histogram",
        ],
    ),
    (
        "counters.model",
        &[
            "samples_pos",
            "samples_neg",
            "models",
            "epochs",
            "epoch_loss",
            "final_loss",
            "train_accuracy",
        ],
    ),
    ("counters.candidates", &["extracted", "selected", "tau"]),
    ("diagnostics", &["retained", "dropped", "total_problems"]),
    (
        "provenance",
        &[
            "specs",
            "evidence_total",
            "evidence_retained",
            "evidence_overflow",
            "per_spec",
        ],
    ),
    (
        "timings",
        &[
            "total_seconds",
            "spans",
            "gauges",
            "histograms",
            "cache",
            "jobs",
            "attribution",
            "serve",
        ],
    ),
    (
        "timings.serve",
        &[
            "requests",
            "rejected",
            "errors",
            "batches",
            "connections",
            "relearns",
            "watch_scans",
            "by_method",
            "windows",
            "slow",
            "slo",
        ],
    ),
    (
        "timings.serve.slo",
        &[
            "breaches",
            "p99_breaches",
            "error_rate_breaches",
            "staleness_breaches",
            "max_staleness_ms",
        ],
    ),
    (
        "timings.jobs",
        &["executed", "reused", "invalidated", "kinds"],
    ),
    (
        "timings.attribution",
        &["records", "dropped", "kinds", "top_self"],
    ),
    (
        "timings.cache",
        &[
            "lookups",
            "hits",
            "misses",
            "bytes_read",
            "bytes_written",
            "evicted",
            "corrupt",
            "incidents",
        ],
    ),
];

fn lookup<'a>(root: &'a Json, path: &str) -> Option<&'a Json> {
    let mut node = root;
    for part in path.split('.').filter(|p| !p.is_empty()) {
        node = node.get(part)?;
    }
    Some(node)
}

fn check(report_text: &str) -> Result<String, String> {
    // 1. Typed round-trip: the producer's structs can read the file back.
    let typed: RunReport = serde_json::from_str(report_text)
        .map_err(|e| format!("typed deserialization failed: {e}"))?;
    if typed.schema != REPORT_SCHEMA_VERSION {
        return Err(format!(
            "schema version {} != expected {REPORT_SCHEMA_VERSION}",
            typed.schema
        ));
    }

    // 2. Structural scan: exact key set at every level.
    let root = parse(report_text)?;
    for &(path, expected) in SCHEMA_7 {
        let node = lookup(&root, path).ok_or_else(|| format!("missing section `{path}`"))?;
        let mut keys = node.keys();
        keys.sort_unstable();
        let mut want: Vec<&str> = expected.to_vec();
        want.sort_unstable();
        for k in &keys {
            if !want.contains(k) {
                return Err(format!(
                    "unknown field `{k}` in `{path}` — schema drift? bump the \
                     schema version and teach check_report about the field"
                ));
            }
        }
        for w in &want {
            if !keys.contains(w) {
                return Err(format!("field `{w}` missing from `{path}`"));
            }
        }
    }
    // Each span stat must carry the three timing fields.
    if let Some(Json::Obj(spans)) = lookup(&root, "timings.spans") {
        for (name, stat) in spans {
            let mut keys = stat.keys();
            keys.sort_unstable();
            if keys != ["count", "max_ns", "total_ns"] {
                return Err(format!("span `{name}` has unexpected fields {keys:?}"));
            }
        }
    }
    // Each histogram snapshot carries its buckets plus the derived tails.
    if let Some(Json::Obj(hists)) = lookup(&root, "timings.histograms") {
        for (name, snap) in hists {
            let mut keys = snap.keys();
            keys.sort_unstable();
            if keys != ["buckets", "count", "p50", "p95", "p99", "sum"] {
                return Err(format!("histogram `{name}` has unexpected fields {keys:?}"));
            }
        }
    }
    // Each serve window row is a `[stream, snapshot]` pair whose snapshot
    // carries exactly the WindowSnapshot fields.
    if let Some(Json::Arr(rows)) = lookup(&root, "timings.serve.windows") {
        for row in rows {
            let Json::Arr(pair) = row else {
                return Err("serve window row is not a [stream, snapshot] pair".into());
            };
            let (Some(Json::Str(stream)), Some(snap)) = (pair.first(), pair.get(1)) else {
                return Err("serve window row is not a [stream, snapshot] pair".into());
            };
            let mut keys = snap.keys();
            keys.sort_unstable();
            if keys
                != [
                    "errors",
                    "mean_ns",
                    "p50_ns",
                    "p95_ns",
                    "p99_ns",
                    "requests",
                    "total_errors",
                    "total_p50_ns",
                    "total_p95_ns",
                    "total_p99_ns",
                    "total_requests",
                    "window_seconds",
                ]
            {
                return Err(format!(
                    "serve window `{stream}` has unexpected fields {keys:?}"
                ));
            }
        }
    }
    // Each slow-query entry carries exactly the SlowQuery fields.
    if let Some(Json::Arr(slow)) = lookup(&root, "timings.serve.slow") {
        for entry in slow {
            let mut keys = entry.keys();
            keys.sort_unstable();
            if keys
                != [
                    "gen",
                    "latency_ns",
                    "method",
                    "request_bytes",
                    "response_bytes",
                ]
            {
                return Err(format!("slow-query entry has unexpected fields {keys:?}"));
            }
        }
    }

    // 3. Run-level sanity.
    if typed.counters.corpus.files == 0 {
        return Err("counters.corpus.files is 0 — the run analyzed nothing".into());
    }
    let timed_spans = typed
        .timings
        .spans
        .values()
        .filter(|s| s.count > 0 && s.total_ns > 0)
        .count();
    if timed_spans == 0 {
        return Err("no span recorded any time — telemetry disabled or compiled out?".into());
    }
    if typed.timings.total_seconds <= 0.0 {
        return Err("timings.total_seconds is not positive".into());
    }
    let cache = &typed.timings.cache;
    if cache.hits + cache.misses != cache.lookups {
        return Err(format!(
            "cache accounting broken: {} hits + {} misses != {} lookups",
            cache.hits, cache.misses, cache.lookups
        ));
    }
    let jobs = &typed.timings.jobs;
    let kind_reuse: u64 = jobs
        .kinds
        .iter()
        .map(|(_, k)| k.memo_hits + k.store_hits)
        .sum();
    if jobs.reused != kind_reuse {
        return Err(format!(
            "job accounting broken: {} reused != {} per-kind memo + store hits",
            jobs.reused, kind_reuse
        ));
    }
    // Cost attribution cross-validates against the job-engine counters:
    // both sides are recorded independently (per-key cost records vs.
    // per-kind counters), so agreement means neither path lost events.
    // Exactness requires the record log not to have hit its cap.
    let attr = &typed.timings.attribution;
    if attr.dropped == 0 {
        for (kind, a) in &attr.kinds {
            let Some((_, j)) = jobs.kinds.iter().find(|(k, _)| k == kind) else {
                return Err(format!("attribution kind `{kind}` unknown to timings.jobs"));
            };
            if a.executed != j.executed
                || a.memo_hits != j.memo_hits
                || a.store_hits != j.store_hits
            {
                return Err(format!(
                    "attribution/jobs disagree for `{kind}`: \
                     executed {}/{}, memo {}/{}, store {}/{}",
                    a.executed, j.executed, a.memo_hits, j.memo_hits, a.store_hits, j.store_hits
                ));
            }
            if a.demands != a.executed + a.memo_hits + a.store_hits {
                return Err(format!(
                    "attribution accounting broken for `{kind}`: {} demands != {} + {} + {}",
                    a.demands, a.executed, a.memo_hits, a.store_hits
                ));
            }
            // The executed wall clock starts before the `job.<kind>` span
            // guard is created, so it strictly contains the span.
            let span_total = typed
                .timings
                .spans
                .get(&format!("job.{kind}"))
                .map(|s| s.total_ns)
                .unwrap_or(0);
            if a.exec_ns < span_total {
                return Err(format!(
                    "attribution exec_ns {} for `{kind}` is below the job.{kind} \
                     span total {span_total}",
                    a.exec_ns
                ));
            }
        }
        let kind_records: u64 = attr.kinds.iter().map(|(_, k)| k.demands).sum();
        if attr.records != kind_records {
            return Err(format!(
                "attribution records {} != per-kind demand sum {kind_records}",
                attr.records
            ));
        }
    }
    // Serve traffic accounting (all-zero for batch commands): every frame
    // either reached a method handler (a by_method row) or was rejected,
    // and every rejected frame produced an error response.
    let serve = &typed.timings.serve;
    let dispatched: u64 = serve.by_method.iter().map(|(_, n)| n).sum();
    if serve.requests != dispatched + serve.rejected {
        return Err(format!(
            "serve accounting broken: {} requests != {dispatched} dispatched + {} rejected",
            serve.requests, serve.rejected
        ));
    }
    if serve.errors < serve.rejected {
        return Err(format!(
            "serve accounting broken: {} error responses < {} rejected frames",
            serve.errors, serve.rejected
        ));
    }
    // Window rows: internally ordered percentiles, errors bounded by
    // requests, the recent window bounded by lifetime totals — and the
    // per-stream rows must partition the `all` row exactly, because every
    // frame is recorded into `all` plus exactly one method stream.
    for (stream, w) in &serve.windows {
        if w.errors > w.requests || w.total_errors > w.total_requests {
            return Err(format!(
                "serve window `{stream}` counts more errors than requests"
            ));
        }
        if w.requests > w.total_requests || w.errors > w.total_errors {
            return Err(format!(
                "serve window `{stream}` recent window exceeds lifetime totals"
            ));
        }
        if w.p50_ns > w.p95_ns || w.p95_ns > w.p99_ns {
            return Err(format!(
                "serve window `{stream}` percentiles unordered: p50 {} p95 {} p99 {}",
                w.p50_ns, w.p95_ns, w.p99_ns
            ));
        }
        if w.total_p50_ns > w.total_p95_ns || w.total_p95_ns > w.total_p99_ns {
            return Err(format!(
                "serve window `{stream}` lifetime percentiles unordered: \
                 p50 {} p95 {} p99 {}",
                w.total_p50_ns, w.total_p95_ns, w.total_p99_ns
            ));
        }
    }
    if let Some((_, all)) = serve.windows.iter().find(|(s, _)| s == "all") {
        if all.total_requests != serve.requests {
            return Err(format!(
                "serve window `all` saw {} requests but serve.requests is {}",
                all.total_requests, serve.requests
            ));
        }
        let stream_requests: u64 = serve
            .windows
            .iter()
            .filter(|(s, _)| s != "all")
            .map(|(_, w)| w.total_requests)
            .sum();
        let stream_errors: u64 = serve
            .windows
            .iter()
            .filter(|(s, _)| s != "all")
            .map(|(_, w)| w.total_errors)
            .sum();
        if stream_requests != all.total_requests || stream_errors != all.total_errors {
            return Err(format!(
                "serve windows don't partition `all`: Σ streams {stream_requests} \
                 requests / {stream_errors} errors vs all {} / {}",
                all.total_requests, all.total_errors
            ));
        }
    }
    // Slow-query log: slowest-first order, methods that actually exist.
    for pair in serve.slow.windows(2) {
        if pair[0].latency_ns < pair[1].latency_ns {
            return Err("serve slow-query log is not sorted slowest-first".into());
        }
    }
    let slo = &serve.slo;
    if slo.breaches != slo.p99_breaches + slo.error_rate_breaches + slo.staleness_breaches {
        return Err(format!(
            "slo accounting broken: {} breaches != {} p99 + {} error-rate + {} staleness",
            slo.breaches, slo.p99_breaches, slo.error_rate_breaches, slo.staleness_breaches
        ));
    }

    let prov = &typed.provenance;
    if prov.per_spec.len() as u64 != prov.specs {
        return Err(format!(
            "provenance lists {} per-spec rows for {} specs",
            prov.per_spec.len(),
            prov.specs
        ));
    }
    if prov.evidence_retained + prov.evidence_overflow != prov.evidence_total {
        return Err(format!(
            "provenance accounting broken: {} retained + {} overflow != {} total",
            prov.evidence_retained, prov.evidence_overflow, prov.evidence_total
        ));
    }

    Ok(format!(
        "report OK: schema {}, command `{}`, engine `{}`, {} files, {} candidates, \
         {} evidence records over {} specs, {} timed spans, cache {}/{} hits, \
         jobs {} executed / {} reused, {} cost records attributed, \
         {} serve requests",
        typed.schema,
        typed.command,
        typed.engine,
        typed.counters.corpus.files,
        typed.counters.candidates.extracted,
        typed.provenance.evidence_retained,
        typed.provenance.specs,
        timed_spans,
        typed.timings.cache.hits,
        typed.timings.cache.lookups,
        typed.timings.jobs.executed,
        typed.timings.jobs.reused,
        typed.timings.attribution.records,
        typed.timings.serve.requests
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check_report <report.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_report: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_report: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
