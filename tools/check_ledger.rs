//! CI validator for run-ledger directories.
//!
//! Usage: `check_ledger <ledger-dir>`
//!
//! Validates every entry in the directory (and requires at least one):
//!
//! 1. a **typed** parse into [`LedgerEntry`] with the current
//!    `LEDGER_SCHEMA_VERSION` — missing fields fail here;
//! 2. an **exact key-set** check by byte round-trip: the CLI writes
//!    entries with `serde_json::to_string_pretty` of the same struct, so
//!    re-serializing the parsed entry must reproduce the file exactly.
//!    Unknown fields (which typed parsing silently drops), reordered
//!    fields, or a drifted producer all surface as a byte difference;
//! 3. **envelope sanity**: non-empty git revision, host, command, and
//!    corpus fingerprint, a non-zero timestamp, and a 32-hex invariant
//!    digest;
//! 4. **accounting**: cache `hits + misses == lookups`, per-kind
//!    attribution `demands == executed + memo_hits + store_hits`, and
//!    (when no records were dropped) the record total equals the
//!    per-kind demand sum;
//! 5. **serve accounting** (all-zero for batch entries): dispatched
//!    frames plus rejected frames never exceed total requests (mid-run
//!    entries appended by the daemon's re-learner may have frames still
//!    in flight, so this is a lower bound rather than an equality),
//!    rejected frames bound error responses from below, sliding windows
//!    are internally ordered, and the SLO breach total equals its
//!    per-budget parts.

use std::process::ExitCode;

use uspec_store::LedgerDir;
use uspec_telemetry::ledger::{LedgerEntry, LEDGER_SCHEMA_VERSION};

fn check_entry(id: &str, text: &str) -> Result<LedgerEntry, String> {
    let e: LedgerEntry = serde_json::from_str(text)
        .map_err(|err| format!("{id}: typed deserialization failed: {err}"))?;
    if e.schema != LEDGER_SCHEMA_VERSION {
        return Err(format!(
            "{id}: schema {} != expected {LEDGER_SCHEMA_VERSION}",
            e.schema
        ));
    }

    // Exact key set via byte round-trip against the producer's serializer.
    let round = serde_json::to_string_pretty(&e)
        .map_err(|err| format!("{id}: re-serialization failed: {err}"))?;
    if round != text {
        return Err(format!(
            "{id}: entry does not round-trip byte-identically — unknown, extra, \
             or reordered fields (schema drift? bump LEDGER_SCHEMA_VERSION)"
        ));
    }

    let env = &e.envelope;
    if env.git_rev.is_empty() || env.host.is_empty() {
        return Err(format!("{id}: empty git_rev or host in envelope"));
    }
    if env.timestamp_ms == 0 {
        return Err(format!("{id}: envelope timestamp_ms is 0"));
    }
    if env.corpus_fp.is_empty() {
        return Err(format!("{id}: envelope corpus_fp is empty"));
    }
    let inv = &e.invariant;
    if inv.command.is_empty() || inv.engine.is_empty() {
        return Err(format!("{id}: empty command or engine"));
    }
    if inv.digest.len() != 32 || !inv.digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!(
            "{id}: invariant digest `{}` is not 32 hex chars",
            inv.digest
        ));
    }

    let cache = &e.timings.cache;
    if cache.hits + cache.misses != cache.lookups {
        return Err(format!(
            "{id}: cache accounting broken: {} hits + {} misses != {} lookups",
            cache.hits, cache.misses, cache.lookups
        ));
    }
    let attr = &e.timings.attribution;
    let mut demand_sum = 0u64;
    for (kind, a) in &attr.kinds {
        if a.demands != a.executed + a.memo_hits + a.store_hits {
            return Err(format!(
                "{id}: attribution accounting broken for `{kind}`: \
                 {} demands != {} + {} + {}",
                a.demands, a.executed, a.memo_hits, a.store_hits
            ));
        }
        demand_sum += a.demands;
    }
    if attr.dropped == 0 && attr.records != demand_sum {
        return Err(format!(
            "{id}: attribution records {} != per-kind demand sum {demand_sum}",
            attr.records
        ));
    }
    let serve = &e.timings.serve;
    let dispatched: u64 = serve.by_method.iter().map(|(_, n)| n).sum();
    if serve.requests < dispatched + serve.rejected {
        return Err(format!(
            "{id}: serve accounting broken: {} requests < {dispatched} dispatched \
             + {} rejected",
            serve.requests, serve.rejected
        ));
    }
    if serve.errors < serve.rejected {
        return Err(format!(
            "{id}: serve accounting broken: {} error responses < {} rejected frames",
            serve.errors, serve.rejected
        ));
    }
    for (stream, w) in &serve.windows {
        if w.errors > w.requests
            || w.total_errors > w.total_requests
            || w.requests > w.total_requests
            || w.p50_ns > w.p95_ns
            || w.p95_ns > w.p99_ns
            || w.total_p50_ns > w.total_p95_ns
            || w.total_p95_ns > w.total_p99_ns
        {
            return Err(format!(
                "{id}: serve window `{stream}` is internally inconsistent"
            ));
        }
    }
    let slo = &serve.slo;
    if slo.breaches != slo.p99_breaches + slo.error_rate_breaches + slo.staleness_breaches {
        return Err(format!(
            "{id}: slo accounting broken: {} breaches != {} + {} + {}",
            slo.breaches, slo.p99_breaches, slo.error_rate_breaches, slo.staleness_breaches
        ));
    }
    Ok(e)
}

fn check(dir: &str) -> Result<String, String> {
    let ledger = LedgerDir::open(dir).map_err(|e| format!("opening {dir}: {e}"))?;
    let entries = ledger
        .entries()
        .map_err(|e| format!("reading {dir}: {e}"))?;
    if entries.is_empty() {
        return Err(format!(
            "{dir}: no ledger entries — did the run record one?"
        ));
    }
    let mut commands = Vec::new();
    for (id, text) in &entries {
        let e = check_entry(id, text)?;
        commands.push(e.invariant.command.clone());
    }
    Ok(format!(
        "ledger OK: {} entr{} ({}) in {dir}",
        entries.len(),
        if entries.len() == 1 { "y" } else { "ies" },
        commands.join(", ")
    ))
}

fn main() -> ExitCode {
    let Some(dir) = std::env::args().nth(1) else {
        eprintln!("usage: check_ledger <ledger-dir>");
        return ExitCode::FAILURE;
    };
    match check(&dir) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_ledger: {e}");
            ExitCode::FAILURE
        }
    }
}
