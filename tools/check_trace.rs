//! CI validator for `--trace-out` span timelines.
//!
//! Usage: `check_trace <trace.json>`
//!
//! Checks that the file is a loadable Chrome `trace_events` document of
//! the shape our exporter promises:
//!
//! - top level is `{"traceEvents": [...]}` with at least one event;
//! - every event is *complete* (`ph: "X"`) with a non-empty name and the
//!   full `ts`/`dur`/`pid`/`tid` field set — begin/end (`B`/`E`) pairs
//!   would also be a valid Chrome trace, but our exporter never emits
//!   them, so seeing one means the writer drifted;
//! - `ts` is monotonically non-decreasing in file order, which is what
//!   lets Perfetto stream the file without a sort.

use std::process::ExitCode;

use serde::Deserialize;

#[derive(Deserialize)]
#[allow(non_snake_case)]
struct TraceDoc {
    traceEvents: Vec<TraceEvent>,
}

#[derive(Deserialize)]
struct TraceEvent {
    name: String,
    ph: String,
    ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
}

fn check(text: &str) -> Result<String, String> {
    let doc: TraceDoc =
        serde_json::from_str(text).map_err(|e| format!("not a trace_events document: {e}"))?;
    if doc.traceEvents.is_empty() {
        return Err("traceEvents is empty — were spans armed for this run?".into());
    }
    let mut last_ts = 0u64;
    let mut total_dur = 0u64;
    for (i, ev) in doc.traceEvents.iter().enumerate() {
        if ev.name.is_empty() {
            return Err(format!("event {i} has an empty name"));
        }
        if ev.ph != "X" {
            return Err(format!(
                "event {i} (`{}`) has ph `{}`; the exporter only emits complete \
                 `X` events",
                ev.name, ev.ph
            ));
        }
        if ev.pid != 1 {
            return Err(format!("event {i} (`{}`) has pid {}", ev.name, ev.pid));
        }
        if ev.tid == 0 {
            return Err(format!("event {i} (`{}`) has tid 0", ev.name));
        }
        if ev.ts < last_ts {
            return Err(format!(
                "event {i} (`{}`) breaks ts monotonicity: {} after {last_ts}",
                ev.name, ev.ts
            ));
        }
        last_ts = ev.ts;
        total_dur += ev.dur;
    }
    Ok(format!(
        "trace OK: {} complete events, {} µs summed duration, last start at {} µs",
        doc.traceEvents.len(),
        total_dur,
        last_ts
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check_trace <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_trace: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
