//! CI validator for the daemon's `--prom-out` Prometheus text exposition.
//!
//! Usage: `check_metrics <scrape1.prom> [<scrape2.prom>]`
//!
//! With one file, syntax-checks the exposition:
//!
//! 1. every sample line is `name[{label="value",...}] <number>` with the
//!    metric name matching `[a-zA-Z_:][a-zA-Z0-9_:]*` and label names
//!    matching `[a-zA-Z_][a-zA-Z0-9_]*`;
//! 2. every sample is preceded by a `# TYPE name counter|gauge`
//!    declaration for its family, each family is declared exactly once,
//!    and no `(name, labels)` series appears twice;
//! 3. the scrape contains at least one sample — an empty exposition means
//!    the daemon never wrote its telemetry plane.
//!
//! With two files (an earlier and a later scrape of the *same* daemon),
//! additionally asserts counter semantics: every series belonging to a
//! `counter` family in the first scrape must still exist in the second
//! with a value that did not decrease. A shrinking counter means the
//! exposition writer is mislabeling gauges or the registry lost events.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed exposition: family kinds by name, and every series value
/// keyed by `(metric name, label text)`.
#[derive(Debug)]
struct Scrape {
    kinds: BTreeMap<String, String>,
    series: BTreeMap<(String, String), f64>,
}

fn metric_name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn label_name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Validates `{key="value",...}` label text (without the braces) and
/// returns it in canonical form. Values may escape `\\`, `\"`, and `\n`.
fn check_labels(text: &str) -> Result<String, String> {
    let mut rest = text;
    let mut labels = Vec::new();
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label pair `{rest}` has no `=`"))?;
        let name = &rest[..eq];
        if !label_name_ok(name) {
            return Err(format!("bad label name `{name}`"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label `{name}` value is not quoted"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after_quote = loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| format!("label `{name}` value is unterminated"))?;
            match c {
                '"' => break i + 1,
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| format!("label `{name}` ends in a bare backslash"))?;
                    if !matches!(esc, '\\' | '"' | 'n') {
                        return Err(format!("label `{name}` has bad escape `\\{esc}`"));
                    }
                    value.push('\\');
                    value.push(esc);
                }
                c => value.push(c),
            }
        };
        labels.push(format!("{name}=\"{value}\""));
        rest = &rest[after_quote..];
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None if rest.is_empty() => break,
            None => return Err(format!("junk `{rest}` after label `{name}`")),
        }
    }
    Ok(labels.join(","))
}

fn parse_scrape(path: &str, text: &str) -> Result<Scrape, String> {
    let mut scrape = Scrape {
        kinds: BTreeMap::new(),
        series: BTreeMap::new(),
    };
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let err = |what: String| format!("{path}:{lineno}: {what}");
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let Some(decl) = comment.trim_start().strip_prefix("TYPE ") else {
                continue; // HELP lines and free comments are legal.
            };
            let mut parts = decl.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(err(format!("malformed TYPE line `{line}`")));
            };
            if !metric_name_ok(name) {
                return Err(err(format!("bad metric name `{name}` in TYPE line")));
            }
            if kind != "counter" && kind != "gauge" {
                return Err(err(format!(
                    "family `{name}` has unsupported type `{kind}`"
                )));
            }
            if scrape
                .kinds
                .insert(name.to_owned(), kind.to_owned())
                .is_some()
            {
                return Err(err(format!("family `{name}` declared twice")));
            }
            continue;
        }
        // A sample: name[{labels}] value
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !metric_name_ok(name) {
            return Err(err(format!("bad metric name `{name}`")));
        }
        let rest = &line[name_end..];
        let (labels, value_text) = if let Some(rest) = rest.strip_prefix('{') {
            let close = rest
                .find('}')
                .ok_or_else(|| err(format!("unterminated labels on `{name}`")))?;
            (
                check_labels(&rest[..close]).map_err(err)?,
                rest[close + 1..].trim(),
            )
        } else {
            (String::new(), rest.trim())
        };
        let value: f64 = value_text.parse().map_err(|_| {
            err(format!(
                "sample `{name}` has non-numeric value `{value_text}`"
            ))
        })?;
        if !scrape.kinds.contains_key(name) {
            return Err(err(format!(
                "sample `{name}` has no preceding `# TYPE {name} ...` declaration"
            )));
        }
        if scrape
            .series
            .insert((name.to_owned(), labels.clone()), value)
            .is_some()
        {
            let series = if labels.is_empty() {
                name.to_owned()
            } else {
                format!("{name}{{{labels}}}")
            };
            return Err(err(format!("series `{series}` appears twice")));
        }
    }
    if scrape.series.is_empty() {
        return Err(format!(
            "{path}: no samples — the daemon never exported its telemetry plane"
        ));
    }
    Ok(scrape)
}

fn check_monotone(path2: &str, first: &Scrape, second: &Scrape) -> Result<usize, String> {
    let mut counters = 0usize;
    for ((name, labels), v1) in &first.series {
        if first.kinds.get(name).map(String::as_str) != Some("counter") {
            continue;
        }
        counters += 1;
        let series = if labels.is_empty() {
            name.clone()
        } else {
            format!("{name}{{{labels}}}")
        };
        let v2 = second
            .series
            .get(&(name.clone(), labels.clone()))
            .ok_or(format!(
                "{path2}: counter `{series}` vanished between scrapes"
            ))?;
        if second.kinds.get(name).map(String::as_str) != Some("counter") {
            return Err(format!("{path2}: `{name}` changed type between scrapes"));
        }
        if v2 < v1 {
            return Err(format!(
                "{path2}: counter `{series}` went backwards: {v1} -> {v2}"
            ));
        }
    }
    Ok(counters)
}

fn run(paths: &[String]) -> Result<String, String> {
    let read = |p: &String| {
        std::fs::read_to_string(p).map_err(|e| format!("check_metrics: reading {p}: {e}"))
    };
    let first = parse_scrape(&paths[0], &read(&paths[0])?)?;
    let mut msg = format!(
        "metrics OK: {} families, {} series in {}",
        first.kinds.len(),
        first.series.len(),
        paths[0]
    );
    if let Some(path2) = paths.get(1) {
        let second = parse_scrape(path2, &read(path2)?)?;
        let counters = check_monotone(path2, &first, &second)?;
        msg.push_str(&format!(
            "; {counters} counters monotone into {path2} ({} series)",
            second.series.len()
        ));
    }
    Ok(msg)
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.len() > 2 {
        eprintln!("usage: check_metrics <scrape1.prom> [<scrape2.prom>]");
        return ExitCode::FAILURE;
    }
    match run(&paths) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_metrics: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# TYPE uspec_serve_requests_total counter
uspec_serve_requests_total 42
# TYPE uspec_serve_window_requests_total counter
uspec_serve_window_requests_total{stream=\"all\"} 42
uspec_serve_window_requests_total{stream=\"status\"} 2
# TYPE uspec_serve_staleness_ms_live gauge
uspec_serve_staleness_ms_live 0
";

    #[test]
    fn accepts_a_well_formed_scrape() {
        let s = parse_scrape("t.prom", GOOD).unwrap();
        assert_eq!(s.kinds.len(), 3);
        assert_eq!(s.series.len(), 4);
        assert_eq!(
            s.series[&(
                "uspec_serve_window_requests_total".into(),
                "stream=\"all\"".into()
            )],
            42.0
        );
    }

    #[test]
    fn rejects_samples_without_a_type_declaration() {
        let err = parse_scrape("t.prom", "uspec_orphan 1\n").unwrap_err();
        assert!(err.contains("no preceding"), "{err}");
    }

    #[test]
    fn rejects_bad_names_labels_values_and_duplicates() {
        for (text, want) in [
            ("# TYPE 9bad counter\n9bad 1\n", "bad metric name"),
            ("# TYPE x histogram\nx 1\n", "unsupported type"),
            ("# TYPE x counter\nx{9l=\"v\"} 1\n", "bad label name"),
            ("# TYPE x counter\nx{l=\"v} 1\n", "unterminated"),
            ("# TYPE x counter\nx nope\n", "non-numeric"),
            ("# TYPE x counter\nx 1\nx 2\n", "appears twice"),
            (
                "# TYPE x counter\n# TYPE x counter\nx 1\n",
                "declared twice",
            ),
            ("", "no samples"),
        ] {
            let err = parse_scrape("t.prom", text).unwrap_err();
            assert!(err.contains(want), "`{text}` gave `{err}`");
        }
    }

    #[test]
    fn counters_must_be_monotone_between_scrapes() {
        let first = parse_scrape("a.prom", GOOD).unwrap();
        let second = parse_scrape("b.prom", &GOOD.replace(" 42", " 43")).unwrap();
        assert_eq!(check_monotone("b.prom", &first, &second).unwrap(), 3);
        // Gauges may move freely; only counters are pinned.
        let regressed = parse_scrape("b.prom", &GOOD.replace(" 2", " 1")).unwrap();
        let err = check_monotone("b.prom", &first, &regressed).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
        // A counter disappearing is as bad as shrinking.
        let truncated = parse_scrape(
            "b.prom",
            &GOOD.replace(
                "uspec_serve_window_requests_total{stream=\"status\"} 2\n",
                "",
            ),
        )
        .unwrap();
        let err = check_monotone("b.prom", &first, &truncated).unwrap_err();
        assert!(err.contains("vanished"), "{err}");
    }
}
