//! Workspace-level umbrella crate for the USpec reproduction.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See [`uspec`] for the end-to-end pipeline API.

pub use uspec;
pub use uspec_atlas as atlas;
pub use uspec_clients as clients;
pub use uspec_corpus as corpus;
pub use uspec_graph as graph;
pub use uspec_lang as lang;
pub use uspec_learn as learn;
pub use uspec_model as model;
pub use uspec_pta as pta;
