//! Atlas-style active learning of points-to specifications (§7.5).
//!
//! Atlas (Bastani et al., PLDI 2018) synthesizes unit tests against a
//! library, executes them, and generalizes observed object flows into
//! points-to specifications. This module reimplements that loop with the
//! documented limitations that drive the §7.5 comparison:
//!
//! * **Default-constructor-only instantiation** — factory-only classes
//!   (`java.sql.ResultSet`, `java.security.KeyStore`,
//!   `org.w3c.dom.NodeList`) yield no tests and thus no specification.
//! * **Argument insensitivity** — an observed flow `put(k, v); get(k) == v`
//!   is generalized to "get may return anything passed to put", with no key
//!   condition (none of Atlas's outputs instantiate `RetSame`/`RetArg`).
//! * **Std-lib-tuned heuristics** — argument pools are small (collision
//!   friendly) only for the classes Atlas's implementation special-cases;
//!   elsewhere keys rarely collide and flows go unobserved, so reads are
//!   (unsoundly) concluded to return fresh objects (the
//!   `java.util.Properties` failure the paper reports).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use uspec_corpus::{ArgKind, Library, MethodSem};
use uspec_lang::{MethodId, Symbol};

use crate::interp::{CArg, CKey, CVal, Interp};

/// Options controlling test synthesis.
#[derive(Clone, Debug)]
pub struct AtlasOptions {
    /// Test sequences per class.
    pub tests_per_class: usize,
    /// Calls per test sequence.
    pub max_seq_len: usize,
    /// Argument-pool size for classes the implementation is *not* tuned
    /// for (large pools make key collisions — and hence flow observations —
    /// rare).
    pub untuned_pool: usize,
    /// Argument-pool size for tuned (std-lib) classes.
    pub tuned_pool: usize,
    /// Classes the implementation is tuned for.
    pub tuned_classes: Vec<Symbol>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AtlasOptions {
    fn default() -> AtlasOptions {
        AtlasOptions {
            tests_per_class: 60,
            max_seq_len: 8,
            untuned_pool: 100_000,
            tuned_pool: 2,
            tuned_classes: [
                "java.util.HashMap",
                "java.util.Hashtable",
                "java.util.ArrayList",
            ]
            .iter()
            .map(|s| Symbol::intern(s))
            .collect(),
            seed: 0xA71A5,
        }
    }
}

/// An argument-insensitive flow specification, Atlas's output language:
/// "`target` may return any object previously passed as argument `arg` of
/// `source` on the same receiver".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowSpec {
    /// The write method.
    pub source: MethodId,
    /// 1-based argument position of the flowing object.
    pub arg: u8,
    /// The read method.
    pub target: MethodId,
}

impl std::fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.ret ⊇ {}.arg{}", self.target, self.source, self.arg)
    }
}

/// Per-class outcome of running Atlas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// No accessible constructor — no tests could be generated.
    NoConstructor,
    /// Inferred flow specifications (possibly empty).
    Specs(Vec<FlowSpec>),
}

/// Result for one class.
#[derive(Clone, Debug)]
pub struct AtlasResult {
    /// The class.
    pub class: Symbol,
    /// The outcome.
    pub outcome: Outcome,
}

/// Runs Atlas-style inference for every class of the library.
pub fn run_atlas(lib: &Library, opts: &AtlasOptions) -> Vec<AtlasResult> {
    let mut out: Vec<AtlasResult> = lib
        .classes()
        .map(|c| AtlasResult {
            class: c.name,
            outcome: infer_class(lib, c.name, opts),
        })
        .collect();
    out.sort_by_key(|r| r.class);
    out
}

fn infer_class(lib: &Library, class: Symbol, opts: &AtlasOptions) -> Outcome {
    let c = lib.class(class).expect("registered class");
    if !c.constructible {
        return Outcome::NoConstructor;
    }
    let methods: Vec<_> = c.methods.iter().filter(|m| !m.is_static).cloned().collect();
    if methods.is_empty() {
        return Outcome::Specs(Vec::new());
    }
    let pool = if opts.tuned_classes.contains(&class) {
        opts.tuned_pool
    } else {
        opts.untuned_pool
    };
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ class.index() as u64);
    let mut specs: BTreeSet<FlowSpec> = BTreeSet::new();

    for _ in 0..opts.tests_per_class {
        let mut interp = Interp::new(lib);
        let recv = interp.construct(class).expect("constructible");
        // (marker object, method it was passed to, position).
        let mut passed: Vec<(CVal, MethodId, u8)> = Vec::new();
        for _ in 0..opts.max_seq_len {
            let m = methods.choose(&mut rng).expect("non-empty").clone();
            let mut args = Vec::new();
            for (i, kind) in m.args.iter().enumerate() {
                let arg = match kind {
                    ArgKind::Str => CArg::Key(CKey::Str(format!("s{}", rng.gen_range(0..pool)))),
                    ArgKind::Int => CArg::Key(CKey::Int(rng.gen_range(0..pool as i64))),
                    ArgKind::Obj => {
                        let marker = interp.fresh(None);
                        passed.push((
                            marker,
                            MethodId {
                                class,
                                method: m.name,
                                arity: m.arity,
                            },
                            (i + 1) as u8,
                        ));
                        CArg::Obj(marker)
                    }
                };
                args.push(arg);
            }
            let Ok(ret) = interp.call(recv, m.name, &args) else {
                continue;
            };
            if let Some(v) = ret {
                for &(marker, source, pos) in &passed {
                    if marker == v {
                        specs.insert(FlowSpec {
                            source,
                            arg: pos,
                            target: MethodId {
                                class,
                                method: m.name,
                                arity: m.arity,
                            },
                        });
                    }
                }
            }
        }
    }
    Outcome::Specs(specs.into_iter().collect())
}

/// Ground-truth status of Atlas's output for one class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassStatus {
    /// No constructor — no specification at all.
    NoConstructor,
    /// All true flows found.
    Sound,
    /// Some true flow missed: Atlas effectively claims reads return fresh
    /// objects, which is unsound.
    Unsound,
    /// The class has no container flows and none were claimed.
    TriviallyEmpty,
}

/// Per-class evaluation against the library's true flows.
#[derive(Clone, Debug)]
pub struct ClassEval {
    /// The class.
    pub class: Symbol,
    /// The status.
    pub status: ClassStatus,
    /// Flows found.
    pub found: Vec<FlowSpec>,
    /// True flows missed.
    pub missed: Vec<FlowSpec>,
}

/// The true argument-insensitive flows of a class, derived from its
/// executable semantics.
pub fn true_flows(lib: &Library, class: Symbol) -> Vec<FlowSpec> {
    let Some(c) = lib.class(class) else {
        return Vec::new();
    };
    let mid = |name: Symbol, arity: u8| MethodId {
        class,
        method: name,
        arity,
    };
    let mut out = Vec::new();
    for s in &c.methods {
        match s.sem {
            MethodSem::Store { value_arg } => {
                for t in &c.methods {
                    if matches!(t.sem, MethodSem::Load | MethodSem::Take) && t.arity + 1 == s.arity
                    {
                        out.push(FlowSpec {
                            source: mid(s.name, s.arity),
                            arg: value_arg,
                            target: mid(t.name, t.arity),
                        });
                    }
                }
            }
            MethodSem::StackPush { value_arg } => {
                for t in &c.methods {
                    if matches!(t.sem, MethodSem::StackPop) {
                        out.push(FlowSpec {
                            source: mid(s.name, s.arity),
                            arg: value_arg,
                            target: mid(t.name, t.arity),
                        });
                    }
                }
            }
            _ => {}
        }
    }
    out.sort_unstable();
    out
}

/// Evaluates Atlas results against the ground truth.
pub fn evaluate(lib: &Library, results: &[AtlasResult]) -> Vec<ClassEval> {
    results
        .iter()
        .map(|r| {
            let truth = true_flows(lib, r.class);
            match &r.outcome {
                Outcome::NoConstructor => ClassEval {
                    class: r.class,
                    status: ClassStatus::NoConstructor,
                    found: Vec::new(),
                    missed: truth,
                },
                Outcome::Specs(found) => {
                    let missed: Vec<FlowSpec> = truth
                        .iter()
                        .filter(|t| !found.contains(t))
                        .copied()
                        .collect();
                    let status = if truth.is_empty() && found.is_empty() {
                        ClassStatus::TriviallyEmpty
                    } else if missed.is_empty() {
                        ClassStatus::Sound
                    } else {
                        ClassStatus::Unsound
                    };
                    ClassEval {
                        class: r.class,
                        status,
                        found: found.clone(),
                        missed,
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_corpus::java_library;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn eval_for(class: &str) -> ClassEval {
        let lib = java_library();
        let results = run_atlas(&lib, &AtlasOptions::default());
        let evals = evaluate(&lib, &results);
        evals
            .into_iter()
            .find(|e| e.class == sym(class))
            .expect("class evaluated")
    }

    #[test]
    fn tuned_hashmap_is_sound() {
        let e = eval_for("java.util.HashMap");
        assert_eq!(e.status, ClassStatus::Sound, "missed: {:?}", e.missed);
        assert!(!e.found.is_empty());
    }

    #[test]
    fn factory_only_classes_get_nothing() {
        for c in [
            "java.sql.ResultSet",
            "java.security.KeyStore",
            "org.w3c.dom.NodeList",
        ] {
            let e = eval_for(c);
            assert_eq!(e.status, ClassStatus::NoConstructor, "{c}");
        }
    }

    #[test]
    fn untuned_properties_is_unsound() {
        // §7.5: "Atlas produced unsound results for aliasing between the
        // getProperty and setProperty methods of java.util.Properties".
        let e = eval_for("java.util.Properties");
        assert_eq!(e.status, ClassStatus::Unsound, "found: {:?}", e.found);
    }

    #[test]
    fn flows_are_argument_insensitive() {
        let e = eval_for("java.util.HashMap");
        // The output language has no key conditions — just (source, arg,
        // target) triples.
        for f in &e.found {
            assert!(f.arg >= 1);
            assert_eq!(f.source.class, sym("java.util.HashMap"));
        }
    }

    #[test]
    fn true_flows_derivation() {
        let lib = java_library();
        let flows = true_flows(&lib, sym("java.util.HashMap"));
        assert_eq!(flows.len(), 2, "{flows:?}"); // get and remove
        let list_flows = true_flows(&lib, sym("java.util.ArrayList"));
        assert!(list_flows.len() >= 2, "{list_flows:?}"); // set→get/remove, add→(no pop)
    }

    #[test]
    fn determinism() {
        let lib = java_library();
        let a = run_atlas(&lib, &AtlasOptions::default());
        let b = run_atlas(&lib, &AtlasOptions::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.outcome, y.outcome);
        }
    }
}

#[cfg(test)]
mod tuning_tests {
    use super::*;
    use uspec_corpus::java_library;

    #[test]
    fn tuning_the_pool_fixes_properties() {
        // The §7.5 Properties unsoundness is purely an artifact of Atlas's
        // std-lib-tuned heuristics: adding Properties to the tuned list
        // (i.e. "adapting Atlas's code", as the paper did for some
        // libraries) makes it sound.
        let lib = java_library();
        let mut opts = AtlasOptions::default();
        opts.tuned_classes
            .push(Symbol::intern("java.util.Properties"));
        let results = run_atlas(&lib, &opts);
        let evals = evaluate(&lib, &results);
        let e = evals
            .iter()
            .find(|e| e.class == Symbol::intern("java.util.Properties"))
            .unwrap();
        assert_eq!(e.status, ClassStatus::Sound, "missed: {:?}", e.missed);
    }

    #[test]
    fn fewer_tests_reduce_coverage() {
        let lib = java_library();
        let starving = AtlasOptions {
            tests_per_class: 1,
            max_seq_len: 2,
            ..AtlasOptions::default()
        };
        let results = run_atlas(&lib, &starving);
        let evals = evaluate(&lib, &results);
        let sound = evals
            .iter()
            .filter(|e| e.status == ClassStatus::Sound)
            .count();
        let full = evaluate(&lib, &run_atlas(&lib, &AtlasOptions::default()));
        let sound_full = full
            .iter()
            .filter(|e| e.status == ClassStatus::Sound)
            .count();
        assert!(sound <= sound_full, "starved run cannot find more");
    }

    #[test]
    fn different_seeds_same_qualitative_outcome() {
        let lib = java_library();
        for seed in [1u64, 2, 3] {
            let results = run_atlas(
                &lib,
                &AtlasOptions {
                    seed,
                    ..AtlasOptions::default()
                },
            );
            let evals = evaluate(&lib, &results);
            let hash_map = evals
                .iter()
                .find(|e| e.class == Symbol::intern("java.util.HashMap"))
                .unwrap();
            assert_eq!(hash_map.status, ClassStatus::Sound, "seed {seed}");
        }
    }
}
