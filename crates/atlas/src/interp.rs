//! Concrete interpreter for library semantics.
//!
//! The Atlas baseline (Bastani et al., PLDI 2018) infers points-to
//! specifications by *executing* synthesized unit tests against the library
//! and observing object identities. The paper's Atlas runs against real
//! JVM classes; this interpreter executes the [`MethodSem`] semantics of
//! the ground-truth registry instead, preserving exactly the observable
//! behaviour that matters: which calls return which previously-passed
//! objects.

use std::collections::HashMap;
use uspec_corpus::{LibMethod, Library, MethodSem};
use uspec_lang::Symbol;

/// A concrete object identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CVal(pub u32);

/// A concrete key component (for container indexing).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CKey {
    /// String key.
    Str(String),
    /// Integer key.
    Int(i64),
    /// Object identity used as a key.
    Obj(CVal),
}

/// A concrete argument.
#[derive(Clone, Debug)]
pub enum CArg {
    /// A primitive key value.
    Key(CKey),
    /// An object.
    Obj(CVal),
}

impl CArg {
    fn as_key(&self) -> CKey {
        match self {
            CArg::Key(k) => k.clone(),
            CArg::Obj(v) => CKey::Obj(*v),
        }
    }
}

/// Errors during interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The class is not registered.
    UnknownClass(Symbol),
    /// The class cannot be instantiated with `new`.
    NotConstructible(Symbol),
    /// No such method on the receiver's class.
    UnknownMethod(Symbol, Symbol),
    /// Wrong number of arguments.
    Arity(Symbol, Symbol),
    /// The stored-value argument was not an object.
    NonObjectValue(Symbol, Symbol),
    /// The receiver has no class (e.g. a marker object).
    ClasslessReceiver,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            InterpError::NotConstructible(c) => write!(f, "class `{c}` has no public constructor"),
            InterpError::UnknownMethod(c, m) => write!(f, "no method `{m}` on `{c}`"),
            InterpError::Arity(c, m) => write!(f, "arity mismatch calling `{c}.{m}`"),
            InterpError::NonObjectValue(c, m) => {
                write!(f, "`{c}.{m}` expected an object value argument")
            }
            InterpError::ClasslessReceiver => write!(f, "receiver has no class"),
        }
    }
}

impl std::error::Error for InterpError {}

#[derive(Clone, Debug, Default)]
struct ObjState {
    class: Option<Symbol>,
    store: HashMap<Vec<CKey>, CVal>,
    stack: Vec<CVal>,
    cache: HashMap<(Symbol, Vec<CKey>), CVal>,
}

/// The concrete machine.
#[derive(Debug)]
pub struct Interp<'l> {
    lib: &'l Library,
    objs: Vec<ObjState>,
    statics: HashMap<Symbol, CVal>,
}

impl<'l> Interp<'l> {
    /// Creates a machine over a library.
    pub fn new(lib: &'l Library) -> Interp<'l> {
        Interp {
            lib,
            objs: Vec::new(),
            statics: HashMap::new(),
        }
    }

    /// Allocates a fresh object with an optional class.
    pub fn fresh(&mut self, class: Option<Symbol>) -> CVal {
        let v = CVal(self.objs.len() as u32);
        self.objs.push(ObjState {
            class,
            ..ObjState::default()
        });
        v
    }

    /// `new C()`.
    ///
    /// # Errors
    ///
    /// Fails for unknown or factory-only classes — the latter is precisely
    /// the Atlas limitation of §7.5.
    pub fn construct(&mut self, class: Symbol) -> Result<CVal, InterpError> {
        let c = self
            .lib
            .class(class)
            .ok_or(InterpError::UnknownClass(class))?;
        if !c.constructible {
            return Err(InterpError::NotConstructible(class));
        }
        Ok(self.fresh(Some(class)))
    }

    /// The class of an object, if any.
    pub fn class_of(&self, v: CVal) -> Option<Symbol> {
        self.objs[v.0 as usize].class
    }

    /// Calls the static method `class.method(args)`.
    ///
    /// Static state (e.g. a `LoadSame` cache for `re.compile`) lives on a
    /// per-class synthetic object.
    ///
    /// # Errors
    ///
    /// Fails on unknown classes/methods and arity mismatches.
    pub fn call_static(
        &mut self,
        class: Symbol,
        method: Symbol,
        args: &[CArg],
    ) -> Result<Option<CVal>, InterpError> {
        let c = self
            .lib
            .class(class)
            .ok_or(InterpError::UnknownClass(class))?;
        let m = c
            .method(method)
            .ok_or(InterpError::UnknownMethod(class, method))?
            .clone();
        if m.arity as usize != args.len() {
            return Err(InterpError::Arity(class, method));
        }
        // Synthetic class object holding static state.
        let holder = match self.statics.get(&class) {
            Some(&v) => v,
            None => {
                let v = self.fresh(None);
                self.statics.insert(class, v);
                v
            }
        };
        self.dispatch(holder, class, &m, args)
    }

    /// Calls `recv.method(args)`, returning the returned object (if any).
    ///
    /// # Errors
    ///
    /// Fails on unknown methods, arity mismatches and non-object value
    /// arguments.
    pub fn call(
        &mut self,
        recv: CVal,
        method: Symbol,
        args: &[CArg],
    ) -> Result<Option<CVal>, InterpError> {
        let class = self.objs[recv.0 as usize]
            .class
            .ok_or(InterpError::ClasslessReceiver)?;
        let c = self
            .lib
            .class(class)
            .ok_or(InterpError::UnknownClass(class))?;
        let m = c
            .method(method)
            .ok_or(InterpError::UnknownMethod(class, method))?
            .clone();
        if m.arity as usize != args.len() {
            return Err(InterpError::Arity(class, method));
        }
        self.dispatch(recv, class, &m, args)
    }

    fn dispatch(
        &mut self,
        recv: CVal,
        class: Symbol,
        m: &LibMethod,
        args: &[CArg],
    ) -> Result<Option<CVal>, InterpError> {
        let ret_class = m.ret;
        match m.sem {
            MethodSem::Store { value_arg } => {
                let (key, value) = split_store_args(class, m, args, value_arg)?;
                self.objs[recv.0 as usize].store.insert(key, value);
                Ok(None)
            }
            MethodSem::Load => {
                let key: Vec<CKey> = args.iter().map(CArg::as_key).collect();
                match self.objs[recv.0 as usize].store.get(&key) {
                    Some(&v) => Ok(Some(v)),
                    None => Ok(Some(self.fresh(ret_class))),
                }
            }
            MethodSem::Take => {
                let key: Vec<CKey> = args.iter().map(CArg::as_key).collect();
                match self.objs[recv.0 as usize].store.remove(&key) {
                    Some(v) => Ok(Some(v)),
                    None => Ok(Some(self.fresh(ret_class))),
                }
            }
            MethodSem::LoadSame => {
                let key: Vec<CKey> = args.iter().map(CArg::as_key).collect();
                if let Some(&v) = self.objs[recv.0 as usize].cache.get(&(m.name, key.clone())) {
                    return Ok(Some(v));
                }
                let v = self.fresh(ret_class);
                self.objs[recv.0 as usize].cache.insert((m.name, key), v);
                Ok(Some(v))
            }
            MethodSem::FreshPerCall => Ok(Some(self.fresh(ret_class))),
            MethodSem::StackPush { value_arg } => {
                let (_, value) = split_store_args(class, m, args, value_arg)?;
                self.objs[recv.0 as usize].stack.push(value);
                Ok(None)
            }
            MethodSem::StackPop => match self.objs[recv.0 as usize].stack.pop() {
                Some(v) => Ok(Some(v)),
                None => Ok(Some(self.fresh(ret_class))),
            },
            MethodSem::ReturnsSelf => Ok(Some(recv)),
            MethodSem::Void => Ok(None),
        }
    }
}

fn split_store_args(
    class: Symbol,
    m: &LibMethod,
    args: &[CArg],
    value_arg: u8,
) -> Result<(Vec<CKey>, CVal), InterpError> {
    let mut key = Vec::new();
    let mut value = None;
    for (i, a) in args.iter().enumerate() {
        if (i + 1) as u8 == value_arg {
            match a {
                CArg::Obj(v) => value = Some(*v),
                CArg::Key(_) => return Err(InterpError::NonObjectValue(class, m.name)),
            }
        } else {
            key.push(a.as_key());
        }
    }
    let value = value.ok_or(InterpError::NonObjectValue(class, m.name))?;
    Ok((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_corpus::java_library;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn hashmap_put_get_roundtrip() {
        let lib = java_library();
        let mut m = Interp::new(&lib);
        let map = m.construct(sym("java.util.HashMap")).unwrap();
        let v = m.fresh(None);
        m.call(
            map,
            sym("put"),
            &[CArg::Key(CKey::Str("k".into())), CArg::Obj(v)],
        )
        .unwrap();
        let got = m
            .call(map, sym("get"), &[CArg::Key(CKey::Str("k".into()))])
            .unwrap();
        assert_eq!(got, Some(v), "get(k) returns the stored object");
        let miss = m
            .call(map, sym("get"), &[CArg::Key(CKey::Str("other".into()))])
            .unwrap();
        assert_ne!(miss, Some(v));
    }

    #[test]
    fn load_same_caches_per_key() {
        let lib = java_library();
        let mut m = Interp::new(&lib);
        let vg = m.construct(sym("android.view.ViewGroup")).unwrap();
        let a = m
            .call(vg, sym("findViewById"), &[CArg::Key(CKey::Int(7))])
            .unwrap();
        let b = m
            .call(vg, sym("findViewById"), &[CArg::Key(CKey::Int(7))])
            .unwrap();
        let c = m
            .call(vg, sym("findViewById"), &[CArg::Key(CKey::Int(8))])
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stack_semantics() {
        let lib = java_library();
        let mut m = Interp::new(&lib);
        let list = m.construct(sym("java.util.ArrayList")).unwrap();
        let v1 = m.fresh(None);
        let v2 = m.fresh(None);
        m.call(list, sym("add"), &[CArg::Obj(v1)]).unwrap();
        m.call(list, sym("add"), &[CArg::Obj(v2)]).unwrap();
        let it = m.call(list, sym("iterator"), &[]).unwrap().unwrap();
        let first = m.call(it, sym("next"), &[]).unwrap();
        let second = m.call(it, sym("next"), &[]).unwrap();
        // Iterator over our stack model pops in LIFO order; what matters is
        // that consecutive nexts differ (RetSame(next) is false)...
        assert_ne!(first, second);
        // ...but note our iterator is created empty (it doesn't share the
        // list's storage), so next() returns fresh objects.
        assert!(first.is_some());
    }

    #[test]
    fn factory_only_construction_fails() {
        let lib = java_library();
        let mut m = Interp::new(&lib);
        let err = m.construct(sym("java.sql.ResultSet")).unwrap_err();
        assert_eq!(
            err,
            InterpError::NotConstructible(sym("java.sql.ResultSet"))
        );
    }

    #[test]
    fn returns_self_semantics() {
        let lib = java_library();
        let mut m = Interp::new(&lib);
        let sb = m.construct(sym("java.lang.StringBuilder")).unwrap();
        let v = m.fresh(None);
        let r = m.call(sb, sym("append"), &[CArg::Obj(v)]).unwrap();
        assert_eq!(r, Some(sb));
    }

    #[test]
    fn errors_are_reported() {
        let lib = java_library();
        let mut m = Interp::new(&lib);
        let map = m.construct(sym("java.util.HashMap")).unwrap();
        assert!(matches!(
            m.call(map, sym("bogus"), &[]),
            Err(InterpError::UnknownMethod(..))
        ));
        assert!(matches!(
            m.call(map, sym("get"), &[]),
            Err(InterpError::Arity(..))
        ));
        let marker = m.fresh(None);
        assert!(matches!(
            m.call(marker, sym("get"), &[]),
            Err(InterpError::ClasslessReceiver)
        ));
    }
}
