//! Dynamic validation of aliasing specifications against the executable
//! library semantics.
//!
//! The paper's authors label learned specifications by reading library
//! documentation; our registry makes the semantics *executable*, so every
//! specification can instead be checked by running its defining scenario
//! concretely. This doubles as a consistency check between the declarative
//! ground truth (`Library::is_true_spec`) and the interpreter.

use uspec_corpus::{ArgKind, Library, MethodSem, Obtain};
use uspec_lang::Symbol;
use uspec_pta::Spec;

use crate::interp::{CArg, CKey, CVal, Interp};

/// Obtains an instance of `class` by executing its [`Obtain`] recipe.
/// Returns `None` when the class cannot be obtained (factory-only without a
/// recipe).
pub fn obtain_instance(lib: &Library, interp: &mut Interp<'_>, class: Symbol) -> Option<CVal> {
    let c = lib.class(class)?;
    match &c.obtain {
        Obtain::New => interp.construct(class).ok(),
        Obtain::Factory(steps) => {
            let mut cur: Option<CVal> = None;
            for (i, step) in steps.iter().enumerate() {
                let args = fixed_args(&step.args, 100 + i as i64);
                let ret = match (step.on, cur) {
                    (Some(on), _) => interp.call_static(on, step.method, &args).ok()?,
                    (None, Some(recv)) => interp.call(recv, step.method, &args).ok()?,
                    (None, None) => return None,
                };
                cur = ret;
            }
            cur
        }
    }
}

/// Fixed, deterministic argument values for a scenario.
fn fixed_args(kinds: &[ArgKind], salt: i64) -> Vec<CArg> {
    kinds
        .iter()
        .enumerate()
        .map(|(i, k)| match k {
            ArgKind::Str => CArg::Key(CKey::Str(format!("k{salt}_{i}"))),
            ArgKind::Int => CArg::Key(CKey::Int(salt * 10 + i as i64)),
            ArgKind::Obj => CArg::Key(CKey::Int(-1)), // replaced by callers
        })
        .collect()
}

/// Executes the defining scenario of `spec` concretely.
///
/// Returns `Some(true)` when the aliasing the specification claims is
/// observable, `Some(false)` when the scenario runs but the aliasing does
/// not occur, and `None` when the scenario cannot be set up (unknown
/// class/method, unobtainable receiver).
pub fn spec_holds(lib: &Library, spec: &Spec) -> Option<bool> {
    let class = spec.class();
    let c = lib.class(class)?;
    let mut interp = Interp::new(lib);
    let recv = obtain_instance(lib, &mut interp, class)?;

    match spec {
        Spec::RetSame { method } => {
            let m = c.method(method.method)?;
            if m.is_static {
                return None;
            }
            // Exercise every store-like method once so reads have something
            // to return (RetSame(get) is about *matching* reads, which in
            // the defining scenario follow a write with the same key as the
            // reads — see §5.1's matching conditions).
            let read_args = fixed_args(&m.args, 7);
            for s in &c.methods {
                if let MethodSem::Store { value_arg } | MethodSem::StackPush { value_arg } = s.sem {
                    if s.arity == m.arity + 1 {
                        let marker = interp.fresh(None);
                        let mut args = Vec::new();
                        let mut key_iter = read_args.iter();
                        for (i, _) in s.args.iter().enumerate() {
                            if (i + 1) as u8 == value_arg {
                                args.push(CArg::Obj(marker));
                            } else {
                                args.push(key_iter.next()?.clone());
                            }
                        }
                        let _ = interp.call(recv, s.name, &args);
                    }
                }
            }
            let r1 = interp.call(recv, method.method, &read_args).ok()??;
            let r2 = interp.call(recv, method.method, &read_args).ok()??;
            Some(r1 == r2)
        }
        Spec::RetArg { target, source, x } => {
            let s = c.method(source.method)?;
            let t = c.method(target.method)?;
            if s.is_static || t.is_static || s.arity != t.arity + 1 {
                return None;
            }
            let marker = interp.fresh(None);
            let keys = fixed_args(&t.args, 9);
            let mut s_args = Vec::new();
            let mut key_iter = keys.iter();
            for (i, kind) in s.args.iter().enumerate() {
                if (i + 1) as u8 == *x {
                    s_args.push(CArg::Obj(marker));
                } else {
                    match key_iter.next() {
                        Some(k) => s_args.push(k.clone()),
                        None => s_args.push(fixed_args(&[*kind], 9).remove(0)),
                    }
                }
            }
            interp.call(recv, source.method, &s_args).ok()?;
            let ret = interp.call(recv, target.method, &keys).ok()??;
            Some(ret == marker)
        }
        Spec::RetRecv { method } => {
            let m = c.method(method.method)?;
            if m.is_static {
                return None;
            }
            let mut args = fixed_args(&m.args, 3);
            for (i, kind) in m.args.iter().enumerate() {
                if *kind == ArgKind::Obj {
                    let v = interp.fresh(None);
                    args[i] = CArg::Obj(v);
                }
            }
            let ret = interp.call(recv, method.method, &args).ok()??;
            Some(ret == recv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_corpus::{java_library, python_library};
    use uspec_lang::MethodId;

    #[test]
    fn every_declared_true_spec_is_dynamically_confirmed() {
        for lib in [java_library(), python_library()] {
            for spec in lib.true_specs() {
                match spec_holds(&lib, &spec) {
                    Some(true) => {}
                    Some(false) => {
                        panic!("{spec:?} is declared true but the interpreter refutes it")
                    }
                    None => {} // unobtainable receiver — cannot validate
                }
            }
        }
    }

    #[test]
    fn planted_false_specs_are_dynamically_refuted() {
        let java = java_library();
        let py = python_library();
        let falses = [
            (
                &py,
                Spec::RetSame {
                    method: MethodId::new("List", "pop", 0),
                },
            ),
            (
                &java,
                Spec::RetSame {
                    method: MethodId::new("java.util.Iterator", "next", 0),
                },
            ),
            (
                &java,
                Spec::RetSame {
                    method: MethodId::new("java.security.SecureRandom", "nextInt", 0),
                },
            ),
            (
                &java,
                Spec::RetArg {
                    target: MethodId::new(
                        "org.antlr.runtime.tree.TreeAdaptor",
                        "rulePostProcessing",
                        1,
                    ),
                    source: MethodId::new("org.antlr.runtime.tree.TreeAdaptor", "addChild", 2),
                    x: 2,
                },
            ),
        ];
        for (lib, spec) in falses {
            assert_eq!(
                spec_holds(lib, &spec),
                Some(false),
                "{spec:?} must be refuted"
            );
        }
    }

    #[test]
    fn factory_chain_receivers_are_obtainable() {
        let lib = java_library();
        let spec = Spec::RetSame {
            method: MethodId::new("java.sql.ResultSet", "getString", 1),
        };
        assert_eq!(spec_holds(&lib, &spec), Some(true));
        let key = Spec::RetSame {
            method: MethodId::new("java.security.KeyStore", "getKey", 2),
        };
        assert_eq!(spec_holds(&lib, &key), Some(true));
    }

    #[test]
    fn ret_recv_validation() {
        let lib = java_library();
        let append = Spec::RetRecv {
            method: MethodId::new("java.lang.StringBuilder", "append", 1),
        };
        assert_eq!(spec_holds(&lib, &append), Some(true));
        let trim = Spec::RetRecv {
            method: MethodId::new("java.lang.String", "trim", 0),
        };
        assert_eq!(
            spec_holds(&lib, &trim),
            Some(false),
            "trim returns a cached value, not the receiver"
        );
    }

    #[test]
    fn unknown_specs_are_unvalidatable() {
        let lib = java_library();
        let bogus = Spec::RetSame {
            method: MethodId::new("no.such.Class", "m", 0),
        };
        assert_eq!(spec_holds(&lib, &bogus), None);
    }
}

#[cfg(test)]
mod completeness_tests {
    use super::*;
    use uspec_corpus::{java_library, python_library};
    use uspec_lang::MethodId;

    /// Enumerates every spec of the hypothesis class over one library's
    /// methods and requires the declarative labels to agree with concrete
    /// execution wherever a scenario is executable. This keeps the
    /// ground-truth registry *complete*, not just sound: a missing
    /// `true_ret_arg` shows up as a disagreement here (which is exactly how
    /// the `Dict.setdefault`/`get` labels were found to be missing).
    #[test]
    fn registry_labels_are_complete_wrt_semantics() {
        for lib in [java_library(), python_library()] {
            let mut disagreements = Vec::new();
            for c in lib.classes() {
                let mid = |name, arity| MethodId {
                    class: c.name,
                    method: name,
                    arity,
                };
                let mut candidates: Vec<Spec> = Vec::new();
                for m in c.methods.iter().filter(|m| !m.is_static) {
                    candidates.push(Spec::RetSame {
                        method: mid(m.name, m.arity),
                    });
                    candidates.push(Spec::RetRecv {
                        method: mid(m.name, m.arity),
                    });
                    for s in c.methods.iter().filter(|s| !s.is_static) {
                        if s.arity == m.arity + 1 {
                            for x in 1..=s.arity {
                                candidates.push(Spec::RetArg {
                                    target: mid(m.name, m.arity),
                                    source: mid(s.name, s.arity),
                                    x,
                                });
                            }
                        }
                    }
                }
                for spec in candidates {
                    if let Some(dynamic) = spec_holds(&lib, &spec) {
                        let declared = lib.is_true_spec(&spec);
                        // RetRecv truths are declared only for builders; a
                        // dynamic `false` with no declaration is fine, and
                        // RetSame(m) for ReturnsSelf methods holds
                        // dynamically whether declared or not — require
                        // agreement only where it matters: dynamic==true
                        // must be declared, declared must hold.
                        if dynamic != declared {
                            disagreements.push((spec, declared, dynamic));
                        }
                    }
                }
            }
            assert!(
                disagreements.is_empty(),
                "{}: registry labels disagree with semantics: {disagreements:#?}",
                lib.universe
            );
        }
    }
}
