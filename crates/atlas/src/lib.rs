//! # uspec-atlas
//!
//! Reimplementation of the **Atlas** baseline (Bastani et al., *Active
//! Learning of Points-to Specifications*, PLDI 2018) used in the paper's
//! §7.5 comparison.
//!
//! Atlas synthesizes unit tests against a library, runs them, and
//! generalizes the observed object flows into argument-insensitive
//! points-to specifications. Here the "library" is the executable
//! ground-truth semantics of [`uspec_corpus`], interpreted by
//! [`interp::Interp`]; [`synth`] implements the test-synthesis loop with
//! Atlas's documented limitations (default-constructor-only instantiation,
//! argument insensitivity, std-lib-tuned argument pools), so the §7.5
//! failure modes — empty specs for factory-only classes, unsound results
//! for `java.util.Properties` — fall out naturally.

#![warn(missing_docs)]

pub mod interp;
pub mod synth;
pub mod validate;

pub use interp::{CArg, CKey, CVal, Interp, InterpError};
pub use synth::{
    evaluate, run_atlas, true_flows, AtlasOptions, AtlasResult, ClassEval, ClassStatus, FlowSpec,
    Outcome,
};
pub use validate::{obtain_instance, spec_holds};
