//! Recursive-descent parser producing the [`ast`](crate::ast).

use crate::ast::*;
use crate::error::{LangError, LangErrorKind};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use crate::Symbol;

/// Parses a complete source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// # use uspec_lang::parser::parse;
/// let program = parse(r#"
///     fn main(db: sql.Database) {
///         map = new java.util.HashMap();
///         f = db.getFile("a");
///         map.put("key", f);
///         x = map.get("key");
///         s = x.getName();
///     }
/// "#)?;
/// assert_eq!(program.funcs.len(), 1);
/// # Ok::<(), uspec_lang::LangError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    Parser {
        tokens,
        pos: 0,
        next_id: 0,
    }
    .program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> TokenKind {
        self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let tok = *self.peek();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Token, LangError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> LangError {
        LangError::new(
            LangErrorKind::UnexpectedToken {
                expected: expected.to_owned(),
                found: self.peek().kind.describe(),
            },
            self.peek().span,
        )
    }

    fn ident(&mut self, what: &str) -> Result<(Symbol, Span), LangError> {
        match self.peek().kind {
            TokenKind::Ident(sym) => {
                let span = self.bump().span;
                Ok((sym, span))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn program(mut self) -> Result<Program, LangError> {
        let mut classes: Vec<ClassDecl> = Vec::new();
        let mut funcs: Vec<FuncDecl> = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::Eof => break,
                TokenKind::KwClass => {
                    let class = self.class_decl()?;
                    if classes.iter().any(|c| c.name == class.name) {
                        return Err(LangError::new(
                            LangErrorKind::DuplicateClass(class.name.as_str().to_owned()),
                            class.span,
                        ));
                    }
                    classes.push(class);
                }
                TokenKind::KwFn => {
                    let func = self.func_decl()?;
                    if funcs.iter().any(|f| f.name == func.name) {
                        return Err(LangError::new(
                            LangErrorKind::DuplicateFunction(func.name.as_str().to_owned()),
                            func.span,
                        ));
                    }
                    funcs.push(func);
                }
                _ => return Err(self.unexpected("`class`, `fn` or end of input")),
            }
        }
        Ok(Program {
            classes,
            funcs,
            next_node_id: self.next_id,
        })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, LangError> {
        let start = self.expect(TokenKind::KwClass, "`class`")?.span;
        let (name, _) = self.ident("class name")?;
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut methods: Vec<FuncDecl> = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let m = self.func_decl()?;
            if methods.iter().any(|o| o.name == m.name) {
                return Err(LangError::new(
                    LangErrorKind::DuplicateFunction(format!("{name}.{}", m.name)),
                    m.span,
                ));
            }
            methods.push(m);
        }
        let end = self.expect(TokenKind::RBrace, "`}`")?.span;
        Ok(ClassDecl {
            name,
            methods,
            span: start.to(end),
        })
    }

    fn func_decl(&mut self) -> Result<FuncDecl, LangError> {
        let start = self.expect(TokenKind::KwFn, "`fn`")?.span;
        let (name, _) = self.ident("function name")?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                let (pname, _) = self.ident("parameter name")?;
                let ty = if self.peek().kind == TokenKind::Colon {
                    self.bump();
                    Some(self.dotted_name()?)
                } else {
                    None
                };
                params.push(Param { name: pname, ty });
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        let body = self.block()?;
        Ok(FuncDecl {
            name,
            params,
            body,
            span: start,
        })
    }

    /// Parses `a.b.c` into a single dot-joined symbol.
    fn dotted_name(&mut self) -> Result<Symbol, LangError> {
        let (first, _) = self.ident("name")?;
        let mut text = first.as_str().to_owned();
        while self.peek().kind == TokenKind::Dot {
            self.bump();
            let (seg, _) = self.ident("name segment")?;
            text.push('.');
            text.push_str(seg.as_str());
        }
        Ok(Symbol::intern(&text))
    }

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace, "`}`")?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let start = self.peek().span;
        match self.peek().kind {
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let then_blk = self.block()?;
                let else_blk = if self.peek().kind == TokenKind::KwElse {
                    self.bump();
                    Some(self.block()?)
                } else {
                    None
                };
                Ok(Stmt {
                    id: self.fresh_id(),
                    kind: StmtKind::If {
                        cond,
                        then_blk,
                        else_blk,
                    },
                    span: start,
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt {
                    id: self.fresh_id(),
                    kind: StmtKind::While { cond, body },
                    span: start,
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek().kind == TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect(TokenKind::Semi, "`;`")?.span;
                Ok(Stmt {
                    id: self.fresh_id(),
                    kind: StmtKind::Return(value),
                    span: start.to(end),
                })
            }
            TokenKind::KwLet => {
                self.bump();
                self.assign_or_expr_stmt(start)
            }
            _ => self.assign_or_expr_stmt(start),
        }
    }

    /// Parses `target = expr;` or a bare expression statement.
    fn assign_or_expr_stmt(&mut self, start: Span) -> Result<Stmt, LangError> {
        // Lookahead: IDENT (= | .IDENT =) means an assignment target.
        if let TokenKind::Ident(name) = self.peek().kind {
            if self.peek2() == TokenKind::Eq {
                self.bump(); // ident
                self.bump(); // `=`
                let value = self.expr()?;
                let end = self.expect(TokenKind::Semi, "`;`")?.span;
                return Ok(Stmt {
                    id: self.fresh_id(),
                    kind: StmtKind::Assign {
                        target: AssignTarget::Var(name),
                        value,
                    },
                    span: start.to(end),
                });
            }
            // `a.b = ...` field store: IDENT DOT IDENT EQ
            if self.peek2() == TokenKind::Dot {
                if let (TokenKind::Ident(field), TokenKind::Eq) = (
                    self.tokens[(self.pos + 2).min(self.tokens.len() - 1)].kind,
                    self.tokens[(self.pos + 3).min(self.tokens.len() - 1)].kind,
                ) {
                    self.bump(); // base
                    self.bump(); // dot
                    self.bump(); // field
                    self.bump(); // `=`
                    let value = self.expr()?;
                    let end = self.expect(TokenKind::Semi, "`;`")?.span;
                    return Ok(Stmt {
                        id: self.fresh_id(),
                        kind: StmtKind::Assign {
                            target: AssignTarget::Field { base: name, field },
                            value,
                        },
                        span: start.to(end),
                    });
                }
            }
        }
        let value = self.expr()?;
        let end = self.expect(TokenKind::Semi, "`;`")?.span;
        Ok(Stmt {
            id: self.fresh_id(),
            kind: StmtKind::Expr(value),
            span: start.to(end),
        })
    }

    fn expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.unary()?;
        match self.peek().kind {
            TokenKind::EqEq | TokenKind::NotEq => {
                let op = if self.bump().kind == TokenKind::EqEq {
                    CmpOp::Eq
                } else {
                    CmpOp::Ne
                };
                let rhs = self.unary()?;
                let span = lhs.span.to(rhs.span);
                Ok(Expr {
                    id: self.fresh_id(),
                    kind: ExprKind::Cmp {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    span,
                })
            }
            _ => Ok(lhs),
        }
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        if self.peek().kind == TokenKind::Bang {
            let start = self.bump().span;
            let inner = self.unary()?;
            let span = start.to(inner.span);
            return Ok(Expr {
                id: self.fresh_id(),
                kind: ExprKind::Not(Box::new(inner)),
                span,
            });
        }
        self.postfix()
    }

    /// Parses an atom followed by `.name` / `.name(args)` suffixes.
    ///
    /// Bare dotted paths stay unresolved ([`ExprKind::Path`] /
    /// [`Callee::Path`]) because `a.b.m()` may be a field chain on local `a`
    /// or a static call on class `a.b`; lowering decides with scope
    /// information.
    fn postfix(&mut self) -> Result<Expr, LangError> {
        // Bare identifier: accumulate a dotted path while possible.
        if let TokenKind::Ident(first) = self.peek().kind {
            let start = self.bump().span;
            let mut segments = vec![first];
            let mut end = start;
            loop {
                if self.peek().kind != TokenKind::Dot {
                    break;
                }
                // A segment must follow; if it is `name(`, this is a call.
                let TokenKind::Ident(seg) = self.peek2() else {
                    return Err(self.unexpected("name segment after `.`"));
                };
                self.bump(); // dot
                let seg_span = self.bump().span; // segment
                end = seg_span;
                if self.peek().kind == TokenKind::LParen {
                    segments.push(seg);
                    let args = self.call_args()?;
                    let call = Expr {
                        id: self.fresh_id(),
                        kind: ExprKind::Call {
                            callee: Callee::Path(segments),
                            args,
                        },
                        span: start.to(self.prev_span()),
                    };
                    return self.postfix_suffixes(call);
                }
                segments.push(seg);
            }
            // Bare `f(...)` free-function call.
            if segments.len() == 1 && self.peek().kind == TokenKind::LParen {
                let args = self.call_args()?;
                let call = Expr {
                    id: self.fresh_id(),
                    kind: ExprKind::Call {
                        callee: Callee::Free(first),
                        args,
                    },
                    span: start.to(self.prev_span()),
                };
                return self.postfix_suffixes(call);
            }
            let path = Expr {
                id: self.fresh_id(),
                kind: ExprKind::Path(segments),
                span: start.to(end),
            };
            return self.postfix_suffixes(path);
        }
        let atom = self.atom()?;
        self.postfix_suffixes(atom)
    }

    /// Parses `.m(args)` and `.field` suffixes on an already-built base.
    fn postfix_suffixes(&mut self, mut base: Expr) -> Result<Expr, LangError> {
        while self.peek().kind == TokenKind::Dot {
            self.bump();
            let (name, name_span) = self.ident("method or field name")?;
            if self.peek().kind == TokenKind::LParen {
                let args = self.call_args()?;
                let span = base.span.to(self.prev_span());
                base = Expr {
                    id: self.fresh_id(),
                    kind: ExprKind::Call {
                        callee: Callee::Method {
                            recv: Box::new(base),
                            name,
                        },
                        args,
                    },
                    span,
                };
            } else {
                let span = base.span.to(name_span);
                base = Expr {
                    id: self.fresh_id(),
                    kind: ExprKind::FieldAccess {
                        base: Box::new(base),
                        field: name,
                    },
                    span,
                };
            }
        }
        Ok(base)
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, LangError> {
        self.expect(TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        Ok(args)
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        let tok = *self.peek();
        match tok.kind {
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh_id(),
                    kind: ExprKind::Str(s),
                    span: tok.span,
                })
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr {
                    id: self.fresh_id(),
                    kind: ExprKind::Int(v),
                    span: tok.span,
                })
            }
            TokenKind::KwTrue | TokenKind::KwFalse => {
                self.bump();
                Ok(Expr {
                    id: self.fresh_id(),
                    kind: ExprKind::Bool(tok.kind == TokenKind::KwTrue),
                    span: tok.span,
                })
            }
            TokenKind::KwNull => {
                self.bump();
                Ok(Expr {
                    id: self.fresh_id(),
                    kind: ExprKind::Null,
                    span: tok.span,
                })
            }
            TokenKind::KwNew => {
                self.bump();
                let class = self.dotted_name()?;
                let args = self.call_args()?;
                Ok(Expr {
                    id: self.fresh_id(),
                    kind: ExprKind::New { class, args },
                    span: tok.span.to(self.prev_span()),
                })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_fig2_snippet() {
        let program = parse(
            r#"
            fn main(someApi: some.Api) {
                map = new java.util.HashMap();
                map.put("key", someApi.getFile());
                name = map.get("key").getName();
            }
            "#,
        )
        .unwrap();
        assert_eq!(program.funcs.len(), 1);
        let body = &program.funcs[0].body;
        assert_eq!(body.stmts.len(), 3);
        assert!(matches!(
            body.stmts[0].kind,
            StmtKind::Assign {
                target: AssignTarget::Var(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_class_with_methods() {
        let program = parse(
            r#"
            class Helper {
                fn fetch(self, db) {
                    return db.getFile("x");
                }
            }
            fn main() {
                h = new Helper();
            }
            "#,
        )
        .unwrap();
        assert_eq!(program.classes.len(), 1);
        assert_eq!(program.classes[0].methods.len(), 1);
    }

    #[test]
    fn parses_control_flow() {
        let program = parse(
            r#"
            fn main(c) {
                x = 0;
                while (c) {
                    if (x == 1) { y = 2; } else { y = 3; }
                }
                return y;
            }
            "#,
        )
        .unwrap();
        let stmts = &program.funcs[0].body.stmts;
        assert!(matches!(stmts[1].kind, StmtKind::While { .. }));
        assert!(matches!(stmts[2].kind, StmtKind::Return(Some(_))));
    }

    #[test]
    fn distinguishes_static_and_chain_calls() {
        let program = parse(
            r#"
            fn main() {
                db = sql.Database.connect("dsn");
                f = db.getFile("a").getName();
            }
            "#,
        )
        .unwrap();
        let stmts = &program.funcs[0].body.stmts;
        // First statement: Callee::Path([sql, Database, connect]).
        let StmtKind::Assign { value, .. } = &stmts[0].kind else {
            panic!()
        };
        let ExprKind::Call {
            callee: Callee::Path(segs),
            ..
        } = &value.kind
        else {
            panic!("expected path call, got {value:?}")
        };
        assert_eq!(segs.len(), 3);
        // Second statement: nested method call on a call result.
        let StmtKind::Assign { value, .. } = &stmts[1].kind else {
            panic!()
        };
        let ExprKind::Call {
            callee: Callee::Method { .. },
            ..
        } = &value.kind
        else {
            panic!("expected method call, got {value:?}")
        };
    }

    #[test]
    fn parses_field_store_and_load() {
        let program = parse(
            r#"
            fn main() {
                o = new Box();
                o.item = "v";
                x = o.item;
            }
            "#,
        )
        .unwrap();
        let stmts = &program.funcs[0].body.stmts;
        assert!(matches!(
            stmts[1].kind,
            StmtKind::Assign {
                target: AssignTarget::Field { .. },
                ..
            }
        ));
        let StmtKind::Assign { value, .. } = &stmts[2].kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Path(ref v) if v.len() == 2));
    }

    #[test]
    fn node_ids_are_unique() {
        let program = parse(
            r#"
            fn main() {
                a = new A();
                b = a.m(a.n());
            }
            "#,
        )
        .unwrap();
        let mut ids = Vec::new();
        program.funcs[0].body.walk_stmts(&mut |s| {
            ids.push(s.id);
            if let StmtKind::Assign { value, .. } = &s.kind {
                value.walk(&mut |e| ids.push(e.id));
            }
        });
        let unique: std::collections::HashSet<_> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn rejects_duplicate_function() {
        let err = parse("fn a() {} fn a() {}").unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::DuplicateFunction(_)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("fn main() { x = ; }").is_err());
        assert!(parse("fn main() { if x { } }").is_err());
        assert!(parse("class {}").is_err());
    }

    #[test]
    fn comparison_and_negation_in_conditions() {
        let program = parse(
            r#"
            fn main(it) {
                if (!it.hasNext()) { return; }
                if (it.size() == 0) { return; }
            }
            "#,
        )
        .unwrap();
        assert_eq!(program.funcs[0].body.stmts.len(), 2);
    }

    #[test]
    fn empty_program_parses() {
        let program = parse("").unwrap();
        assert!(program.funcs.is_empty());
        assert!(program.classes.is_empty());
    }
}
