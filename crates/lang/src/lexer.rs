//! Hand-written lexer for the mini object-oriented language.

use crate::error::{LangError, LangErrorKind};
use crate::span::Span;
use crate::token::{Token, TokenKind};
use crate::Symbol;

/// Tokenizes `src` into a vector ending with an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`LangError`] for unknown characters, unterminated strings and
/// out-of-range integer literals.
///
/// # Examples
///
/// ```
/// # use uspec_lang::lexer::lex;
/// let tokens = lex("x = map.get(\"k\");")?;
/// assert_eq!(tokens.len(), 10); // 9 tokens + Eof
/// # Ok::<(), uspec_lang::LangError>(())
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'"' => self.string(start)?,
                b'0'..=b'9' => self.number(start)?,
                b'-' if matches!(self.peek(1), Some(b'0'..=b'9')) => {
                    self.pos += 1;
                    self.number(start)?;
                }
                _ if b.is_ascii_alphabetic() || b == b'_' => self.ident(start),
                b'(' => self.punct(TokenKind::LParen),
                b')' => self.punct(TokenKind::RParen),
                b'{' => self.punct(TokenKind::LBrace),
                b'}' => self.punct(TokenKind::RBrace),
                b',' => self.punct(TokenKind::Comma),
                b';' => self.punct(TokenKind::Semi),
                b'.' => self.punct(TokenKind::Dot),
                b':' => self.punct(TokenKind::Colon),
                b'=' => {
                    if self.peek(1) == Some(b'=') {
                        self.pos += 2;
                        self.push(TokenKind::EqEq, start);
                    } else {
                        self.punct(TokenKind::Eq);
                    }
                }
                b'!' => {
                    if self.peek(1) == Some(b'=') {
                        self.pos += 2;
                        self.push(TokenKind::NotEq, start);
                    } else {
                        self.punct(TokenKind::Bang);
                    }
                }
                _ => {
                    let c = self.src[self.pos..].chars().next().unwrap_or('\u{FFFD}');
                    return Err(LangError::new(
                        LangErrorKind::UnexpectedChar(c),
                        Span::new(start as u32, (start + c.len_utf8()) as u32),
                    ));
                }
            }
        }
        let end = self.bytes.len() as u32;
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(end, end),
        });
        Ok(self.tokens)
    }

    fn peek(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn punct(&mut self, kind: TokenKind) {
        let start = self.pos;
        self.pos += 1;
        self.push(kind, start);
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn string(&mut self, start: usize) -> Result<(), LangError> {
        self.pos += 1; // opening quote
        let mut value = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None | Some(b'\n') => {
                    return Err(LangError::new(
                        LangErrorKind::UnterminatedString,
                        Span::new(start as u32, self.pos as u32),
                    ));
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = match self.bytes.get(self.pos) {
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        _ => {
                            return Err(LangError::new(
                                LangErrorKind::UnterminatedString,
                                Span::new(start as u32, self.pos as u32),
                            ));
                        }
                    };
                    value.push(escaped);
                    self.pos += 1;
                }
                Some(_) => {
                    let c = self.src[self.pos..].chars().next().expect("valid utf8");
                    value.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        self.push(TokenKind::Str(Symbol::intern(&value)), start);
        Ok(())
    }

    fn number(&mut self, start: usize) -> Result<(), LangError> {
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let value: i64 = text.parse().map_err(|_| {
            LangError::new(
                LangErrorKind::IntOutOfRange,
                Span::new(start as u32, self.pos as u32),
            )
        })?;
        self.push(TokenKind::Int(value), start);
        Ok(())
    }

    fn ident(&mut self, start: usize) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let kind = match text {
            "class" => TokenKind::KwClass,
            "fn" => TokenKind::KwFn,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "return" => TokenKind::KwReturn,
            "new" => TokenKind::KwNew,
            "true" => TokenKind::KwTrue,
            "false" => TokenKind::KwFalse,
            "null" => TokenKind::KwNull,
            "let" => TokenKind::KwLet,
            _ => TokenKind::Ident(Symbol::intern(text)),
        };
        self.push(kind, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        let ks = kinds("x = m.get(\"k\");");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident(Symbol::intern("x")),
                TokenKind::Eq,
                TokenKind::Ident(Symbol::intern("m")),
                TokenKind::Dot,
                TokenKind::Ident(Symbol::intern("get")),
                TokenKind::LParen,
                TokenKind::Str(Symbol::intern("k")),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_comments() {
        let ks = kinds("// hello\nif while fn class new return else true false null let");
        assert_eq!(
            ks,
            vec![
                TokenKind::KwIf,
                TokenKind::KwWhile,
                TokenKind::KwFn,
                TokenKind::KwClass,
                TokenKind::KwNew,
                TokenKind::KwReturn,
                TokenKind::KwElse,
                TokenKind::KwTrue,
                TokenKind::KwFalse,
                TokenKind::KwNull,
                TokenKind::KwLet,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers_including_negative() {
        let ks = kinds("42 -17");
        assert_eq!(
            ks,
            vec![TokenKind::Int(42), TokenKind::Int(-17), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        let ks = kinds("a == b != !c");
        assert!(ks.contains(&TokenKind::EqEq));
        assert!(ks.contains(&TokenKind::NotEq));
        assert!(ks.contains(&TokenKind::Bang));
    }

    #[test]
    fn string_escapes() {
        let ks = kinds(r#""a\nb\"c""#);
        assert_eq!(ks[0], TokenKind::Str(Symbol::intern("a\nb\"c")));
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = lex("\"abc").unwrap_err();
        assert_eq!(err.kind, LangErrorKind::UnterminatedString);
    }

    #[test]
    fn unexpected_char_is_error() {
        let err = lex("a # b").unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::UnexpectedChar('#')));
    }

    #[test]
    fn int_out_of_range_is_error() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert_eq!(err.kind, LangErrorKind::IntOutOfRange);
    }

    #[test]
    fn spans_point_at_source() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span.text("ab cd"), "ab");
        assert_eq!(toks[1].span.text("ab cd"), "cd");
    }
}
