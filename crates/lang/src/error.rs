//! Frontend error types.

use serde::{Deserialize, Serialize};

use crate::span::Span;

/// An error produced while lexing, parsing or lowering a program.
/// Serializable so structured diagnostics that embed it can be cached by
/// the artifact store.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LangError {
    /// What went wrong.
    pub kind: LangErrorKind,
    /// Where it went wrong.
    pub span: Span,
}

/// The category of a [`LangError`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LangErrorKind {
    /// The lexer met a character it does not understand.
    UnexpectedChar(char),
    /// A string literal ran to end of input without a closing quote.
    UnterminatedString,
    /// An integer literal did not fit in `i64`.
    IntOutOfRange,
    /// The parser expected one thing and found another.
    UnexpectedToken {
        /// Description of what was expected.
        expected: String,
        /// Description of what was found.
        found: String,
    },
    /// A function was defined twice with the same name (and class).
    DuplicateFunction(String),
    /// A class was defined twice.
    DuplicateClass(String),
    /// A variable was read before any assignment.
    UnboundVariable(String),
    /// `return` with a value appeared outside a function body.
    MisplacedReturn,
    /// A call had an argument/parameter count mismatch against a known user
    /// function.
    ArityMismatch {
        /// Callee name.
        callee: String,
        /// Number of parameters the callee declares.
        expected: usize,
        /// Number of arguments supplied.
        found: usize,
    },
}

impl LangError {
    /// Convenience constructor.
    pub fn new(kind: LangErrorKind, span: Span) -> LangError {
        LangError { kind, span }
    }

    /// Renders the error with the line/column computed from `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{line}:{col}: {self}")
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            LangErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            LangErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            LangErrorKind::IntOutOfRange => write!(f, "integer literal out of range"),
            LangErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            LangErrorKind::DuplicateFunction(name) => {
                write!(f, "function `{name}` defined more than once")
            }
            LangErrorKind::DuplicateClass(name) => {
                write!(f, "class `{name}` defined more than once")
            }
            LangErrorKind::UnboundVariable(name) => {
                write!(f, "variable `{name}` used before assignment")
            }
            LangErrorKind::MisplacedReturn => write!(f, "`return` outside of a function"),
            LangErrorKind::ArityMismatch {
                callee,
                expected,
                found,
            } => write!(
                f,
                "call to `{callee}` supplies {found} arguments but it declares {expected}"
            ),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_position() {
        let err = LangError::new(LangErrorKind::UnterminatedString, Span::new(3, 4));
        let rendered = err.render("ab\ncd");
        assert!(rendered.starts_with("2:1:"), "got {rendered}");
        assert!(rendered.contains("unterminated"));
    }

    #[test]
    fn display_is_lowercase_without_period() {
        let err = LangError::new(
            LangErrorKind::UnexpectedToken {
                expected: "`;`".into(),
                found: "`}`".into(),
            },
            Span::dummy(),
        );
        let msg = err.to_string();
        assert!(msg.starts_with("expected"));
        assert!(!msg.ends_with('.'));
    }
}
