//! # uspec-lang
//!
//! Frontend for the mini object-oriented language used throughout the USpec
//! reproduction (PLDI'19, *Unsupervised Learning of API Aliasing
//! Specifications*).
//!
//! The paper analyzes millions of Java and Python files; its learning
//! pipeline, however, only consumes *event graphs*, a language-independent
//! program abstraction. This crate provides the substitute frontend: a small
//! language rich enough to express every API-usage idiom the paper exploits
//! (allocations, literals, chained API calls, user functions/classes, field
//! accesses, branches, loops), together with:
//!
//! * [`lexer`] / [`parser`] — text to [`ast`],
//! * [`registry`] — the classpath-like table of external API signatures,
//! * [`lower`] — resolution, local type inference, single loop unrolling and
//!   bounded inlining into acyclic [`mir::Body`] CFGs.
//!
//! ## Example
//!
//! ```
//! use uspec_lang::{parser::parse, lower::{lower_program, LowerOptions}, registry::ApiTable};
//!
//! let program = parse(r#"
//!     fn main(db: sql.Database) {
//!         map = new java.util.HashMap();
//!         map.put("key", db.getFile("a"));
//!         name = map.get("key").getName();
//!     }
//! "#)?;
//! let bodies = lower_program(&program, &ApiTable::new(), &LowerOptions::default())?;
//! assert_eq!(bodies.len(), 1);
//! # Ok::<(), uspec_lang::LangError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod intern;
pub mod lexer;
pub mod lower;
pub mod mir;
pub mod parser;
pub mod pretty;
pub mod registry;
pub mod span;
pub mod token;

pub use ast::{NodeId, Program};
pub use error::{LangError, LangErrorKind};
pub use intern::Symbol;
pub use lower::{lower_entry, lower_program, LowerOptions};
pub use mir::{Body, CallSite, Instr, Literal, Var};
pub use parser::parse;
pub use registry::{ApiClassBuilder, ApiClassSig, ApiMethodSig, ApiTable, MethodId, VarType};
pub use span::Span;
