//! Token kinds produced by the [lexer](crate::lexer).

use crate::span::Span;
use crate::Symbol;

/// The kind of a lexical token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or dotted-name segment, e.g. `map` or `HashMap`.
    Ident(Symbol),
    /// A string literal (contents, unescaped).
    Str(Symbol),
    /// An integer literal.
    Int(i64),
    /// `class`
    KwClass,
    /// `fn`
    KwFn,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `return`
    KwReturn,
    /// `new`
    KwNew,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `null`
    KwNull,
    /// `let`
    KwLet,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `!`
    Bang,
    /// `:`
    Colon,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Str(_) => "string literal".to_owned(),
            TokenKind::Int(_) => "integer literal".to_owned(),
            TokenKind::KwClass => "`class`".to_owned(),
            TokenKind::KwFn => "`fn`".to_owned(),
            TokenKind::KwIf => "`if`".to_owned(),
            TokenKind::KwElse => "`else`".to_owned(),
            TokenKind::KwWhile => "`while`".to_owned(),
            TokenKind::KwReturn => "`return`".to_owned(),
            TokenKind::KwNew => "`new`".to_owned(),
            TokenKind::KwTrue => "`true`".to_owned(),
            TokenKind::KwFalse => "`false`".to_owned(),
            TokenKind::KwNull => "`null`".to_owned(),
            TokenKind::KwLet => "`let`".to_owned(),
            TokenKind::LParen => "`(`".to_owned(),
            TokenKind::RParen => "`)`".to_owned(),
            TokenKind::LBrace => "`{`".to_owned(),
            TokenKind::RBrace => "`}`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::Semi => "`;`".to_owned(),
            TokenKind::Dot => "`.`".to_owned(),
            TokenKind::Eq => "`=`".to_owned(),
            TokenKind::EqEq => "`==`".to_owned(),
            TokenKind::NotEq => "`!=`".to_owned(),
            TokenKind::Bang => "`!`".to_owned(),
            TokenKind::Colon => "`:`".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

/// A token together with its source span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}
