//! Lowering from the AST to acyclic [`Body`] CFGs.
//!
//! Lowering performs, in one structured pass:
//!
//! * **Name resolution** — dotted paths become variable/field chains or
//!   static class references, using scope information plus the
//!   [`ApiTable`].
//! * **Flow-sensitive local type inference** — receiver types determine the
//!   fully-qualified [`MethodId`] of each API call site.
//! * **Single loop unrolling** — `while (c) B` becomes
//!   `if (c) { B if (c) { B } }`, with both copies of `B` sharing call-site
//!   ids (§3.2 of the paper).
//! * **Bounded inlining of user functions/methods** — materializing calling
//!   contexts directly in the IR; this is what makes the subsequent
//!   points-to analysis context-sensitive. Depth 0 yields the
//!   intraprocedural analysis used as an ablation in §7.1.

use crate::ast::*;
use crate::error::{LangError, LangErrorKind};
use crate::mir::*;
use crate::registry::{ApiTable, MethodId, VarType};
use crate::span::Span;
use crate::Symbol;
use std::collections::HashMap;

/// Options controlling the lowering.
#[derive(Clone, Debug)]
pub struct LowerOptions {
    /// Maximum user-call inlining depth. `0` disables inlining (the
    /// intraprocedural ablation of §7.1).
    pub inline_depth: usize,
}

impl Default for LowerOptions {
    fn default() -> LowerOptions {
        LowerOptions { inline_depth: 2 }
    }
}

/// Lowers every free function of `program` into its own acyclic [`Body`].
///
/// # Errors
///
/// Returns an error for unbound variables, arity mismatches on user calls
/// and other resolution failures.
///
/// # Examples
///
/// ```
/// # use uspec_lang::{parser::parse, lower::{lower_program, LowerOptions}, registry::ApiTable};
/// let program = parse("fn main() { m = new java.util.HashMap(); m.put(\"k\", 1); }")?;
/// let bodies = lower_program(&program, &ApiTable::new(), &LowerOptions::default())?;
/// assert_eq!(bodies.len(), 1);
/// assert_eq!(bodies[0].num_api_calls(), 1);
/// # Ok::<(), uspec_lang::LangError>(())
/// ```
pub fn lower_program(
    program: &Program,
    table: &ApiTable,
    opts: &LowerOptions,
) -> Result<Vec<Body>, LangError> {
    program
        .funcs
        .iter()
        .map(|f| lower_entry(program, table, f, opts))
        .collect()
}

/// Lowers a single entry function.
///
/// # Errors
///
/// See [`lower_program`].
pub fn lower_entry(
    program: &Program,
    table: &ApiTable,
    func: &FuncDecl,
    opts: &LowerOptions,
) -> Result<Body, LangError> {
    let mut lw = Lowerer {
        program,
        table,
        opts,
        blocks: Vec::new(),
        vars: Vec::new(),
        types: HashMap::new(),
        ctxs: vec![Vec::new()],
        ctx_map: HashMap::new(),
        cur_ctx: CtxId(0),
        cur: BlockId(0),
        guard_stack: Vec::new(),
        active: Vec::new(),
    };
    lw.ctx_map.insert(Vec::new(), CtxId(0));
    lw.blocks.push(BasicBlock {
        instrs: Vec::new(),
        term: Terminator::Return,
        guards: Vec::new(),
    });

    let mut inst = Instance::new(&mut lw, None);
    let mut params = Vec::new();
    let mut param_types = Vec::new();
    for p in &func.params {
        let ty = match p.ty {
            Some(t) => {
                if program.class(t).is_some() {
                    VarType::User(t)
                } else {
                    VarType::Api(t)
                }
            }
            None => VarType::Unknown,
        };
        let var = inst.declare(&mut lw, p.name, ty);
        params.push(var);
        param_types.push(ty);
    }
    lw.active.push(entry_key(func.name));
    lw.lower_block(&func.body, &mut inst)?;
    lw.active.pop();
    // Patch early returns to flow to a final exit block.
    if !inst.exit_pending.is_empty() {
        let exit = lw.start_block();
        for bb in std::mem::take(&mut inst.exit_pending) {
            lw.blocks[bb.0 as usize].term = Terminator::Goto(exit);
        }
    }
    lw.blocks[lw.cur.0 as usize].term = Terminator::Return;

    Ok(Body {
        func: func.name,
        blocks: lw.blocks,
        vars: lw.vars,
        ctxs: lw.ctxs,
        params,
        param_types,
    })
}

fn entry_key(name: Symbol) -> Symbol {
    name
}

/// Per-function-instance lowering state (one per inlined activation).
struct Instance {
    scope: HashMap<Symbol, Var>,
    ret_var: Var,
    ret_ty: VarType,
    /// Blocks whose terminator must be patched to the instance exit block.
    exit_pending: Vec<BlockId>,
}

impl Instance {
    fn new(lw: &mut Lowerer<'_>, ret_name: Option<Symbol>) -> Instance {
        let ret_var = lw.fresh_var(ret_name, VarType::Unknown);
        Instance {
            scope: HashMap::new(),
            ret_var,
            ret_ty: VarType::Null,
            exit_pending: Vec::new(),
        }
    }

    /// Returns the slot for `name`, creating it on first use.
    fn declare(&mut self, lw: &mut Lowerer<'_>, name: Symbol, ty: VarType) -> Var {
        match self.scope.get(&name) {
            Some(&v) => {
                lw.set_type(v, ty);
                v
            }
            None => {
                let v = lw.fresh_var(Some(name), ty);
                self.scope.insert(name, v);
                v
            }
        }
    }

    fn lookup(&self, name: Symbol) -> Option<Var> {
        self.scope.get(&name).copied()
    }
}

struct Lowerer<'a> {
    program: &'a Program,
    table: &'a ApiTable,
    opts: &'a LowerOptions,
    blocks: Vec<BasicBlock>,
    cur: BlockId,
    vars: Vec<VarInfo>,
    /// Flow-sensitive type environment (current types of variables).
    types: HashMap<Var, VarType>,
    ctxs: Vec<Vec<NodeId>>,
    ctx_map: HashMap<Vec<NodeId>, CtxId>,
    cur_ctx: CtxId,
    guard_stack: Vec<Guard>,
    /// Functions currently being inlined (recursion cut-off).
    active: Vec<Symbol>,
}

impl<'a> Lowerer<'a> {
    fn fresh_var(&mut self, name: Option<Symbol>, ty: VarType) -> Var {
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarInfo { name, ty });
        self.types.insert(v, ty);
        v
    }

    /// Updates the flow-sensitive type of `v` and widens its summary type.
    fn set_type(&mut self, v: Var, ty: VarType) {
        self.types.insert(v, ty);
        let summary = &mut self.vars[v.0 as usize].ty;
        *summary = summary.join(ty);
    }

    fn type_of(&self, v: Var) -> VarType {
        self.types.get(&v).copied().unwrap_or(VarType::Unknown)
    }

    fn emit(&mut self, instr: Instr) {
        self.blocks[self.cur.0 as usize].instrs.push(instr);
    }

    fn start_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            instrs: Vec::new(),
            term: Terminator::Return,
            guards: self.guard_stack.clone(),
        });
        self.cur = id;
        id
    }

    fn site(&self, node: NodeId) -> CallSite {
        CallSite {
            node,
            ctx: self.cur_ctx,
        }
    }

    fn push_ctx(&mut self, call_node: NodeId) -> CtxId {
        let mut ctx = vec![call_node];
        ctx.extend_from_slice(&self.ctxs[self.cur_ctx.0 as usize].clone());
        let id = match self.ctx_map.get(&ctx) {
            Some(&id) => id,
            None => {
                let id = CtxId(self.ctxs.len() as u32);
                self.ctxs.push(ctx.clone());
                self.ctx_map.insert(ctx, id);
                id
            }
        };
        let prev = self.cur_ctx;
        self.cur_ctx = id;
        prev
    }

    fn lower_block(&mut self, block: &Block, inst: &mut Instance) -> Result<(), LangError> {
        for stmt in &block.stmts {
            self.lower_stmt(stmt, inst)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt, inst: &mut Instance) -> Result<(), LangError> {
        match &stmt.kind {
            StmtKind::Assign { target, value } => {
                let (v, ty) = self.lower_expr(value, inst)?;
                match target {
                    AssignTarget::Var(name) => {
                        let slot = inst.declare(self, *name, ty);
                        self.emit(Instr::Copy { dst: slot, src: v });
                    }
                    AssignTarget::Field { base, field } => {
                        let obj = inst.lookup(*base).ok_or_else(|| {
                            LangError::new(
                                LangErrorKind::UnboundVariable(base.as_str().to_owned()),
                                stmt.span,
                            )
                        })?;
                        self.emit(Instr::FieldStore {
                            obj,
                            field: *field,
                            src: v,
                        });
                    }
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.lower_expr(e, inst)?;
                Ok(())
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => self.lower_if(stmt, cond, then_blk, else_blk.as_ref(), inst),
            StmtKind::While { cond, body } => {
                // Single unrolling: while (c) B  ≡  if (c) { B; if (c) { B } }.
                let inner = Stmt {
                    id: stmt.id,
                    kind: StmtKind::If {
                        cond: cond.clone(),
                        then_blk: body.clone(),
                        else_blk: None,
                    },
                    span: stmt.span,
                };
                let mut unrolled = body.clone();
                unrolled.stmts.push(inner);
                self.lower_if(stmt, cond, &unrolled, None, inst)
            }
            StmtKind::Return(value) => {
                if let Some(e) = value {
                    let (v, ty) = self.lower_expr(e, inst)?;
                    self.emit(Instr::Copy {
                        dst: inst.ret_var,
                        src: v,
                    });
                    inst.ret_ty = inst.ret_ty.join(ty);
                }
                // The terminator is patched to the instance's exit block.
                inst.exit_pending.push(self.cur);
                self.start_block();
                Ok(())
            }
        }
    }

    fn lower_if(
        &mut self,
        stmt: &Stmt,
        cond: &Expr,
        then_blk: &Block,
        else_blk: Option<&Block>,
        inst: &mut Instance,
    ) -> Result<(), LangError> {
        let (cv, _) = self.lower_expr(cond, inst)?;
        let token = cond_token(cond);
        let cond_bb = self.cur;
        let types_before = self.types.clone();

        self.guard_stack.push(Guard {
            site: stmt.id,
            polarity: true,
            token,
        });
        let then_bb = self.start_block();
        self.lower_block(then_blk, inst)?;
        let then_end = self.cur;
        let types_then = std::mem::replace(&mut self.types, types_before.clone());
        self.guard_stack.pop();

        self.guard_stack.push(Guard {
            site: stmt.id,
            polarity: false,
            token,
        });
        let else_bb = self.start_block();
        if let Some(eb) = else_blk {
            self.lower_block(eb, inst)?;
        }
        let else_end = self.cur;
        let types_else = std::mem::take(&mut self.types);
        self.guard_stack.pop();

        let join_bb = self.start_block();
        self.blocks[cond_bb.0 as usize].term = Terminator::Branch {
            cond: cv,
            then_bb,
            else_bb,
        };
        self.blocks[then_end.0 as usize].term = Terminator::Goto(join_bb);
        self.blocks[else_end.0 as usize].term = Terminator::Goto(join_bb);

        // Merge the flow-sensitive type environments.
        self.types = types_then;
        for (v, t) in types_else {
            let merged = self.types.get(&v).map(|cur| cur.join(t)).unwrap_or(t);
            self.types.insert(v, merged);
        }
        Ok(())
    }

    fn lower_expr(
        &mut self,
        expr: &Expr,
        inst: &mut Instance,
    ) -> Result<(Var, VarType), LangError> {
        match &expr.kind {
            ExprKind::Str(s) => Ok(self.lower_lit(Literal::Str(*s), expr.id)),
            ExprKind::Int(i) => Ok(self.lower_lit(Literal::Int(*i), expr.id)),
            ExprKind::Bool(b) => Ok(self.lower_lit(Literal::Bool(*b), expr.id)),
            ExprKind::Null => Ok(self.lower_lit(Literal::Null, expr.id)),
            ExprKind::Path(segs) => self.lower_path(segs, expr.span, inst),
            ExprKind::New { class, args } => {
                for a in args {
                    self.lower_expr(a, inst)?;
                }
                let user = self.program.class(*class).is_some();
                let ty = if user {
                    VarType::User(*class)
                } else {
                    VarType::Api(*class)
                };
                let dst = self.fresh_var(None, ty);
                self.emit(Instr::New {
                    dst,
                    class: *class,
                    site: self.site(expr.id),
                    user_class: user,
                });
                Ok((dst, ty))
            }
            ExprKind::FieldAccess { base, field } => {
                let (obj, _) = self.lower_expr(base, inst)?;
                let dst = self.fresh_var(None, VarType::Unknown);
                self.emit(Instr::FieldLoad {
                    dst,
                    obj,
                    field: *field,
                });
                Ok((dst, VarType::Unknown))
            }
            ExprKind::Cmp { op, lhs, rhs } => {
                let (l, _) = self.lower_expr(lhs, inst)?;
                let (r, _) = self.lower_expr(rhs, inst)?;
                let dst = self.fresh_var(None, VarType::Bool);
                self.emit(Instr::Cmp {
                    dst,
                    lhs: l,
                    rhs: r,
                    negated: *op == CmpOp::Ne,
                });
                Ok((dst, VarType::Bool))
            }
            ExprKind::Not(inner) => {
                let (v, _) = self.lower_expr(inner, inst)?;
                let dst = self.fresh_var(None, VarType::Bool);
                self.emit(Instr::Not { dst, src: v });
                Ok((dst, VarType::Bool))
            }
            ExprKind::Call { callee, args } => self.lower_call(expr, callee, args, inst),
        }
    }

    fn lower_lit(&mut self, value: Literal, node: NodeId) -> (Var, VarType) {
        let ty = value.var_type();
        let dst = self.fresh_var(None, ty);
        self.emit(Instr::Lit {
            dst,
            value,
            site: self.site(node),
        });
        (dst, ty)
    }

    fn lower_path(
        &mut self,
        segs: &[Symbol],
        span: Span,
        inst: &mut Instance,
    ) -> Result<(Var, VarType), LangError> {
        let first = segs[0];
        let Some(base) = inst.lookup(first) else {
            return Err(LangError::new(
                LangErrorKind::UnboundVariable(first.as_str().to_owned()),
                span,
            ));
        };
        let mut cur = base;
        let mut ty = self.type_of(base);
        for field in &segs[1..] {
            let dst = self.fresh_var(None, VarType::Unknown);
            self.emit(Instr::FieldLoad {
                dst,
                obj: cur,
                field: *field,
            });
            cur = dst;
            ty = VarType::Unknown;
        }
        Ok((cur, ty))
    }

    fn lower_call(
        &mut self,
        expr: &Expr,
        callee: &Callee,
        args: &[Expr],
        inst: &mut Instance,
    ) -> Result<(Var, VarType), LangError> {
        match callee {
            Callee::Free(name) => {
                let arg_vars = self.lower_args(args, inst)?;
                match self.program.func(*name) {
                    Some(func) => {
                        self.check_arity(func, None, args.len(), expr.span)?;
                        self.inline_call(func.clone(), None, arg_vars, expr.id, inst)
                    }
                    None => Ok(self.lower_opaque(expr.id)),
                }
            }
            Callee::Path(segs) => {
                let (prefix, method) = segs.split_at(segs.len() - 1);
                let method = method[0];
                if inst.lookup(prefix[0]).is_some() {
                    // Local variable plus field chain, then an instance call.
                    let (recv, recv_ty) = self.lower_path(prefix, expr.span, inst)?;
                    let arg_vars = self.lower_args(args, inst)?;
                    self.lower_instance_call(
                        expr,
                        recv,
                        recv_ty,
                        method,
                        arg_vars,
                        args.len(),
                        inst,
                    )
                } else {
                    // Static call on a (possibly dotted) class name.
                    let class = join_dotted(prefix);
                    let arg_vars = self.lower_args(args, inst)?;
                    let ret_ty = self.table.ret_type(class, method, args.len());
                    Ok(self.emit_api_call(expr.id, class, method, None, arg_vars, ret_ty))
                }
            }
            Callee::Method { recv, name } => {
                let (rv, rty) = self.lower_expr(recv, inst)?;
                let arg_vars = self.lower_args(args, inst)?;
                self.lower_instance_call(expr, rv, rty, *name, arg_vars, args.len(), inst)
            }
        }
    }

    fn lower_args(&mut self, args: &[Expr], inst: &mut Instance) -> Result<Vec<Var>, LangError> {
        args.iter()
            .map(|a| self.lower_expr(a, inst).map(|(v, _)| v))
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_instance_call(
        &mut self,
        expr: &Expr,
        recv: Var,
        recv_ty: VarType,
        method: Symbol,
        arg_vars: Vec<Var>,
        nargs: usize,
        inst: &mut Instance,
    ) -> Result<(Var, VarType), LangError> {
        if let VarType::User(class) = recv_ty {
            if let Some(m) = self.program.method(class, method) {
                self.check_arity(m, Some(class), nargs, expr.span)?;
                return self.inline_call(m.clone(), Some(recv), arg_vars, expr.id, inst);
            }
        }
        let class = match recv_ty {
            VarType::User(c) => c,
            ty => self
                .table
                .class_of_type(ty)
                .unwrap_or_else(MethodId::unknown_class),
        };
        let ret_ty = self.table.ret_type(class, method, nargs);
        Ok(self.emit_api_call(expr.id, class, method, Some(recv), arg_vars, ret_ty))
    }

    fn emit_api_call(
        &mut self,
        node: NodeId,
        class: Symbol,
        method: Symbol,
        recv: Option<Var>,
        args: Vec<Var>,
        ret_ty: VarType,
    ) -> (Var, VarType) {
        let dst = self.fresh_var(None, ret_ty);
        self.emit(Instr::CallApi {
            dst: Some(dst),
            method: MethodId {
                class,
                method,
                arity: args.len().min(u8::MAX as usize) as u8,
            },
            recv,
            args,
            site: self.site(node),
        });
        (dst, ret_ty)
    }

    fn lower_opaque(&mut self, node: NodeId) -> (Var, VarType) {
        let dst = self.fresh_var(None, VarType::Unknown);
        self.emit(Instr::Opaque {
            dst,
            site: self.site(node),
        });
        (dst, VarType::Unknown)
    }

    fn check_arity(
        &self,
        func: &FuncDecl,
        class: Option<Symbol>,
        nargs: usize,
        span: Span,
    ) -> Result<(), LangError> {
        // Methods declare an explicit `self` receiver as their first param.
        let declared = func.params.len() - usize::from(class.is_some());
        if declared != nargs {
            let callee = match class {
                Some(c) => format!("{c}.{}", func.name),
                None => func.name.as_str().to_owned(),
            };
            return Err(LangError::new(
                LangErrorKind::ArityMismatch {
                    callee,
                    expected: declared,
                    found: nargs,
                },
                span,
            ));
        }
        Ok(())
    }

    /// Inlines a user function/method call, or emits an opaque result when
    /// the inlining budget is exhausted or the call is recursive.
    fn inline_call(
        &mut self,
        func: FuncDecl,
        recv: Option<Var>,
        args: Vec<Var>,
        call_node: NodeId,
        _caller: &mut Instance,
    ) -> Result<(Var, VarType), LangError> {
        let key = func.name;
        let depth = self.ctxs[self.cur_ctx.0 as usize].len();
        if depth >= self.opts.inline_depth || self.active.contains(&key) {
            return Ok(self.lower_opaque(call_node));
        }
        self.active.push(key);
        let prev_ctx = self.push_ctx(call_node);

        let mut callee = Instance::new(self, None);
        let bind = |lw: &mut Lowerer<'_>, inst: &mut Instance, p: &Param, v: Var| {
            let declared_ty = match p.ty {
                Some(t) if lw.program.class(t).is_some() => VarType::User(t),
                Some(t) => VarType::Api(t),
                None => lw.type_of(v),
            };
            let slot = inst.declare(lw, p.name, declared_ty);
            lw.emit(Instr::Copy { dst: slot, src: v });
        };
        let mut param_iter = func.params.iter();
        if let Some(rv) = recv {
            let self_param = param_iter.next().expect("methods declare `self`");
            bind(self, &mut callee, self_param, rv);
        }
        for (p, v) in param_iter.zip(args) {
            bind(self, &mut callee, p, v);
        }

        self.lower_block(&func.body, &mut callee)?;

        if !callee.exit_pending.is_empty() {
            let exit = self.start_block();
            for bb in callee.exit_pending {
                self.blocks[bb.0 as usize].term = Terminator::Goto(exit);
            }
        }

        self.cur_ctx = prev_ctx;
        self.active.pop();
        Ok((callee.ret_var, callee.ret_ty))
    }
}

fn join_dotted(segs: &[Symbol]) -> Symbol {
    if segs.len() == 1 {
        return segs[0];
    }
    let joined = segs
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(".");
    Symbol::intern(&joined)
}

/// Symbolic token describing a condition's shape, for γ features.
fn cond_token(cond: &Expr) -> Symbol {
    match &cond.kind {
        ExprKind::Call { callee, .. } => match callee {
            Callee::Method { name, .. } => *name,
            Callee::Free(name) => *name,
            Callee::Path(segs) => *segs.last().expect("non-empty path"),
        },
        ExprKind::Path(segs) => segs[0],
        ExprKind::Cmp { op: CmpOp::Eq, .. } => Symbol::intern("=="),
        ExprKind::Cmp { op: CmpOp::Ne, .. } => Symbol::intern("!="),
        ExprKind::Not(inner) => {
            let inner_tok = cond_token(inner);
            Symbol::intern(&format!("!{inner_tok}"))
        }
        ExprKind::Bool(b) => Symbol::intern(if *b { "true" } else { "false" }),
        _ => Symbol::intern("<cond>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::registry::{ApiClassBuilder, PrimBinding};

    fn lower_src(src: &str) -> Vec<Body> {
        lower_src_opts(src, &LowerOptions::default())
    }

    fn lower_src_opts(src: &str, opts: &LowerOptions) -> Vec<Body> {
        let program = parse(src).unwrap();
        let mut table = ApiTable::new();
        table.insert(
            ApiClassBuilder::new("java.util.HashMap")
                .method("put", 2, VarType::Unknown)
                .method("get", 1, VarType::Unknown)
                .build(),
        );
        table.insert(
            ApiClassBuilder::new("sql.Database")
                .static_method("connect", 1, VarType::Api(Symbol::intern("sql.Database")))
                .method("getFile", 1, VarType::Api(Symbol::intern("io.File")))
                .build(),
        );
        table.insert(
            ApiClassBuilder::new("io.File")
                .method("getName", 0, VarType::Str)
                .build(),
        );
        table.insert(
            ApiClassBuilder::new("java.lang.String")
                .method("length", 0, VarType::Int)
                .build(),
        );
        table.bind_prim(PrimBinding::Str, Symbol::intern("java.lang.String"));
        lower_program(&program, &table, opts).unwrap()
    }

    fn api_methods(body: &Body) -> Vec<String> {
        body.instrs()
            .filter_map(|(_, i)| match i {
                Instr::CallApi { method, .. } => Some(method.qualified()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn resolves_receiver_types_through_chain() {
        let bodies = lower_src(
            r#"
            fn main(db: sql.Database) {
                f = db.getFile("a");
                n = f.getName();
                l = n.length();
            }
            "#,
        );
        let ms = api_methods(&bodies[0]);
        assert_eq!(
            ms,
            vec![
                "sql.Database.getFile/1",
                "io.File.getName/0",
                "java.lang.String.length/0"
            ]
        );
    }

    #[test]
    fn resolves_static_calls() {
        let bodies = lower_src(
            r#"
            fn main() {
                db = sql.Database.connect("dsn");
                f = db.getFile("x");
            }
            "#,
        );
        let ms = api_methods(&bodies[0]);
        assert_eq!(ms[0], "sql.Database.connect/1");
        assert_eq!(ms[1], "sql.Database.getFile/1");
    }

    #[test]
    fn unknown_receiver_gets_question_class() {
        let bodies = lower_src("fn main(x) { y = x.foo(); }");
        assert_eq!(api_methods(&bodies[0]), vec!["?.foo/0"]);
    }

    #[test]
    fn while_is_unrolled_once_with_shared_sites() {
        let bodies = lower_src(
            r#"
            fn main(m: java.util.HashMap, c) {
                while (c) {
                    x = m.get("k");
                }
            }
            "#,
        );
        let body = &bodies[0];
        let gets: Vec<CallSite> = body
            .instrs()
            .filter_map(|(_, i)| match i {
                Instr::CallApi { method, site, .. } if method.method.as_str() == "get" => {
                    Some(*site)
                }
                _ => None,
            })
            .collect();
        assert_eq!(gets.len(), 2, "loop body lowered exactly twice");
        assert_eq!(gets[0], gets[1], "both copies share the call site");
        body.topo_order(); // must not panic: acyclic forward edges
    }

    #[test]
    fn inlining_materializes_contexts() {
        let bodies = lower_src(
            r#"
            fn fetch(db) {
                return db.getFile("z");
            }
            fn main(db: sql.Database) {
                a = fetch(db);
                b = fetch(db);
            }
            "#,
        );
        let main = bodies.iter().find(|b| b.func.as_str() == "main").unwrap();
        let sites: Vec<CallSite> = main
            .instrs()
            .filter_map(|(_, i)| match i {
                Instr::CallApi { method, site, .. } if method.method.as_str() == "getFile" => {
                    Some(*site)
                }
                _ => None,
            })
            .collect();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].node, sites[1].node, "same syntactic call");
        assert_ne!(sites[0].ctx, sites[1].ctx, "different calling contexts");
        assert_ne!(main.ctx_of(sites[0]), main.ctx_of(sites[1]));
    }

    #[test]
    fn inline_depth_zero_is_intraprocedural() {
        let src = r#"
            fn fetch(db) { return db.getFile("z"); }
            fn main(db: sql.Database) { a = fetch(db); }
        "#;
        let bodies = lower_src_opts(src, &LowerOptions { inline_depth: 0 });
        let main = bodies.iter().find(|b| b.func.as_str() == "main").unwrap();
        assert_eq!(main.num_api_calls(), 0, "call became opaque");
        assert!(main
            .instrs()
            .any(|(_, i)| matches!(i, Instr::Opaque { .. })));
    }

    #[test]
    fn recursion_is_cut() {
        let bodies = lower_src(
            r#"
            fn rec(db) { x = rec(db); return x; }
            fn main(db: sql.Database) { y = rec(db); }
            "#,
        );
        let main = bodies.iter().find(|b| b.func.as_str() == "main").unwrap();
        main.topo_order();
    }

    #[test]
    fn method_inlining_binds_self() {
        let bodies = lower_src(
            r#"
            class Helper {
                fn fetch(self, db) { return db.getFile("q"); }
            }
            fn main(db: sql.Database) {
                h = new Helper();
                f = h.fetch(db);
                n = f.getName();
            }
            "#,
        );
        let main = bodies.iter().find(|b| b.func.as_str() == "main").unwrap();
        let ms = api_methods(main);
        assert!(ms.contains(&"sql.Database.getFile/1".to_owned()));
        // Return-type flows through inlining: f is an io.File.
        assert!(ms.contains(&"io.File.getName/0".to_owned()));
    }

    #[test]
    fn branch_types_join_to_unknown() {
        let bodies = lower_src(
            r#"
            fn main(c, db: sql.Database) {
                if (c) { x = new java.util.HashMap(); } else { x = db.getFile("a"); }
                y = x.getName();
            }
            "#,
        );
        let ms = api_methods(&bodies[0]);
        assert!(ms.contains(&"?.getName/0".to_owned()), "got {ms:?}");
    }

    #[test]
    fn guards_recorded_on_branch_blocks() {
        let bodies = lower_src(
            r#"
            fn main(m: java.util.HashMap, it) {
                if (it.hasNext()) {
                    x = m.get("k");
                }
            }
            "#,
        );
        let body = &bodies[0];
        let (bb, _) = body
            .instrs()
            .find(|(_, i)| {
                matches!(i, Instr::CallApi { method, .. } if method.method.as_str() == "get")
            })
            .unwrap();
        let guards = &body.blocks[bb.0 as usize].guards;
        assert_eq!(guards.len(), 1);
        assert!(guards[0].polarity);
        assert_eq!(guards[0].token.as_str(), "hasNext");
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let program = parse("fn main() { y = x; }").unwrap();
        let err = lower_program(&program, &ApiTable::new(), &LowerOptions::default()).unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::UnboundVariable(_)));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let program = parse(
            r#"
            fn f(a, b) { return a; }
            fn main() { x = f(1); }
            "#,
        )
        .unwrap();
        let err = lower_program(&program, &ApiTable::new(), &LowerOptions::default()).unwrap_err();
        assert!(matches!(err.kind, LangErrorKind::ArityMismatch { .. }));
    }

    #[test]
    fn early_return_flows_to_exit() {
        let bodies = lower_src(
            r#"
            fn main(c, m: java.util.HashMap) {
                if (c) { return; }
                x = m.get("k");
            }
            "#,
        );
        bodies[0].topo_order();
        assert_eq!(bodies[0].num_api_calls(), 1);
    }

    #[test]
    fn literal_sites_are_distinct_per_occurrence() {
        let bodies = lower_src(r#"fn main(m: java.util.HashMap) { m.put("k", "k"); }"#);
        let lits: Vec<CallSite> = bodies[0]
            .instrs()
            .filter_map(|(_, i)| match i {
                Instr::Lit { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        assert_eq!(lits.len(), 2);
        assert_ne!(lits[0], lits[1]);
    }
}

#[cfg(test)]
mod nesting_tests {
    use super::*;
    use crate::parser::parse;
    use crate::registry::ApiTable;

    fn lower_plain(src: &str) -> Vec<Body> {
        let program = parse(src).unwrap();
        lower_program(&program, &ApiTable::new(), &LowerOptions::default()).unwrap()
    }

    fn count_calls(body: &Body, method: &str) -> usize {
        body.instrs()
            .filter(|(_, i)| {
                matches!(i, Instr::CallApi { method: m, .. } if m.method.as_str() == method)
            })
            .count()
    }

    #[test]
    fn nested_loops_unroll_quadratically() {
        let bodies = lower_plain(
            r#"
            fn main(db, c) {
                while (c) {
                    while (c) {
                        x = db.ping();
                    }
                }
            }
            "#,
        );
        // Outer unrolls 2×, inner 2× each → 4 copies of the call, all
        // sharing one call site.
        assert_eq!(count_calls(&bodies[0], "ping"), 4);
        let sites: std::collections::HashSet<CallSite> = bodies[0]
            .instrs()
            .filter_map(|(_, i)| match i {
                Instr::CallApi { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        assert_eq!(sites.len(), 1);
        bodies[0].topo_order();
    }

    #[test]
    fn helper_calling_helper_inlines_to_depth_two() {
        let bodies = lower_plain(
            r#"
            fn inner(db) { return db.fetch("x"); }
            fn outer(db) { return inner(db); }
            fn main(db) { v = outer(db); }
            "#,
        );
        let main = bodies.iter().find(|b| b.func.as_str() == "main").unwrap();
        assert_eq!(count_calls(main, "fetch"), 1, "depth-2 chain fully inlined");
        // Context stack is [inner-call, outer-call].
        let (_, instr) = main
            .instrs()
            .find(|(_, i)| matches!(i, Instr::CallApi { .. }))
            .unwrap();
        let Instr::CallApi { site, .. } = instr else {
            unreachable!()
        };
        assert_eq!(main.ctx_of(*site).len(), 2);
    }

    #[test]
    fn depth_three_chain_is_cut_to_opaque() {
        let bodies = lower_plain(
            r#"
            fn a(db) { return db.fetch("x"); }
            fn b(db) { return a(db); }
            fn c(db) { return b(db); }
            fn main(db) { v = c(db); }
            "#,
        );
        let main = bodies.iter().find(|b| b.func.as_str() == "main").unwrap();
        assert_eq!(count_calls(main, "fetch"), 0, "budget of 2 exhausted");
        assert!(main
            .instrs()
            .any(|(_, i)| matches!(i, Instr::Opaque { .. })));
    }

    #[test]
    fn mutual_recursion_is_cut() {
        let bodies = lower_plain(
            r#"
            fn ping(db) { return pong(db); }
            fn pong(db) { return ping(db); }
            fn main(db) { v = ping(db); }
            "#,
        );
        let main = bodies.iter().find(|b| b.func.as_str() == "main").unwrap();
        main.topo_order();
    }

    #[test]
    fn else_branch_variables_merge() {
        let bodies = lower_plain(
            r#"
            fn main(db, cond) {
                if (cond) { x = db.a(); } else { x = db.b(); }
                y = x.use1();
            }
            "#,
        );
        // `x` shares one slot across branches: exactly one Copy target var
        // is read by the use1 receiver.
        let body = &bodies[0];
        assert_eq!(count_calls(body, "use1"), 1);
        body.topo_order();
    }

    #[test]
    fn return_inside_loop_flows_to_exit() {
        let bodies = lower_plain(
            r#"
            fn main(db, c) {
                while (c) {
                    x = db.a();
                    return x;
                }
                y = db.b();
            }
            "#,
        );
        bodies[0].topo_order();
        assert_eq!(count_calls(&bodies[0], "a"), 2, "unrolled twice");
        assert_eq!(count_calls(&bodies[0], "b"), 1);
    }

    #[test]
    fn deep_field_chain_loads() {
        let bodies = lower_plain(
            r#"
            fn main() {
                o = new Box();
                x = o.a.b.c;
            }
            "#,
        );
        let loads = bodies[0]
            .instrs()
            .filter(|(_, i)| matches!(i, Instr::FieldLoad { .. }))
            .count();
        assert_eq!(loads, 3);
    }

    #[test]
    fn method_on_user_class_without_definition_is_api_call() {
        let bodies = lower_plain(
            r#"
            class Box { fn id(self) { return self; } }
            fn main() {
                b = new Box();
                x = b.undefinedMethod();
            }
            "#,
        );
        let (_, instr) = bodies[0]
            .instrs()
            .find(|(_, i)| matches!(i, Instr::CallApi { .. }))
            .unwrap();
        let Instr::CallApi { method, .. } = instr else {
            unreachable!()
        };
        assert_eq!(method.qualified(), "Box.undefinedMethod/0");
    }

    #[test]
    fn guards_nest_and_pop() {
        let bodies = lower_plain(
            r#"
            fn main(db, c1, c2) {
                if (c1) {
                    if (c2) { x = db.deep(); }
                    y = db.mid();
                }
                z = db.top();
            }
            "#,
        );
        let body = &bodies[0];
        let guards_of = |name: &str| {
            body.instrs()
                .find_map(|(bb, i)| match i {
                    Instr::CallApi { method, .. } if method.method.as_str() == name => {
                        Some(body.blocks[bb.0 as usize].guards.len())
                    }
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(guards_of("deep"), 2);
        assert_eq!(guards_of("mid"), 1);
        assert_eq!(guards_of("top"), 0);
    }
}
