//! Abstract syntax tree for the mini object-oriented language.
//!
//! The language is deliberately small but expressive enough to encode the
//! API-usage idioms the paper learns from: allocations, literals, chained
//! method calls on API objects, user-defined functions and classes, field
//! accesses, branching and loops.
//!
//! Grammar sketch (see [`crate::parser`] for the implementation):
//!
//! ```text
//! program   := (classDecl | funcDecl)*
//! classDecl := "class" IDENT "{" funcDecl* "}"
//! funcDecl  := "fn" IDENT "(" param ("," param)* ")" block
//! param     := IDENT (":" dottedName)?
//! block     := "{" stmt* "}"
//! stmt      := "let"? target "=" expr ";"
//!            | expr ";"
//!            | "if" "(" expr ")" block ("else" block)?
//!            | "while" "(" expr ")" block
//!            | "return" expr? ";"
//! target    := IDENT ("." IDENT)?
//! expr      := cmp
//! cmp       := unary (("==" | "!=") unary)?
//! unary     := "!" unary | postfix
//! postfix   := atom ("." IDENT ("(" args ")")?)*
//! atom      := "new" dottedName "(" args ")" | literal | IDENT | "(" expr ")"
//! ```

use crate::span::Span;
use crate::Symbol;
use serde::{Deserialize, Serialize};

/// Uniquely identifies an AST node within one [`Program`].
///
/// Node ids double as *call-site identifiers*: every method call, allocation
/// and literal keeps its id when loops are unrolled or functions are inlined,
/// so all copies of a statement refer to the same call site, exactly as the
/// paper's single-loop-unrolling treats duplicated code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A parsed source file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Program {
    /// User-defined classes.
    pub classes: Vec<ClassDecl>,
    /// Free functions (entry points and helpers).
    pub funcs: Vec<FuncDecl>,
    /// Number of node ids handed out; fresh ids for synthesized nodes start
    /// here.
    pub next_node_id: u32,
}

impl Program {
    /// Looks up a free function by name.
    pub fn func(&self, name: Symbol) -> Option<&FuncDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Looks up a user class by (simple) name.
    pub fn class(&self, name: Symbol) -> Option<&ClassDecl> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Looks up a method `name` on user class `class`.
    pub fn method(&self, class: Symbol, name: Symbol) -> Option<&FuncDecl> {
        self.class(class)
            .and_then(|c| c.methods.iter().find(|m| m.name == name))
    }

    /// Iterates over every function body in the program (free functions and
    /// methods).
    pub fn all_funcs(&self) -> impl Iterator<Item = &FuncDecl> {
        self.funcs
            .iter()
            .chain(self.classes.iter().flat_map(|c| c.methods.iter()))
    }
}

/// A user-defined class containing methods.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassDecl {
    /// Simple class name.
    pub name: Symbol,
    /// Methods; the receiver is the implicit variable `self`.
    pub methods: Vec<FuncDecl>,
    /// Source location.
    pub span: Span,
}

/// A function or method declaration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FuncDecl {
    /// Function name.
    pub name: Symbol,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// Source location.
    pub span: Span,
}

/// A function parameter, optionally annotated with an API class type.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: Symbol,
    /// Optional dotted type annotation, e.g. `db: sql.Database`.
    pub ty: Option<Symbol>,
}

/// A `{ ... }` sequence of statements.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Stmt {
    /// Unique node id.
    pub id: NodeId,
    /// Statement payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement payloads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum StmtKind {
    /// `target = expr;` (with optional `let`, which is cosmetic).
    Assign {
        /// Assignment destination.
        target: AssignTarget,
        /// Right-hand side.
        value: Expr,
    },
    /// A bare expression statement, e.g. `map.put(k, v);`.
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return expr?;`
    Return(Option<Expr>),
}

/// Left-hand side of an assignment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AssignTarget {
    /// Local variable.
    Var(Symbol),
    /// `base.field` store on a user object.
    Field {
        /// Object whose field is written.
        base: Symbol,
        /// Field name.
        field: Symbol,
    },
}

/// An expression.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Expr {
    /// Unique node id; serves as call-site/allocation-site id.
    pub id: NodeId,
    /// Expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression payloads.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ExprKind {
    /// A dotted name `a.b.c` whose interpretation (variable, field chain, or
    /// class prefix) is decided during lowering.
    Path(Vec<Symbol>),
    /// String literal.
    Str(Symbol),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
    /// `new C(args)`.
    New {
        /// Dotted class name.
        class: Symbol,
        /// Constructor arguments.
        args: Vec<Expr>,
    },
    /// A call, either `recvExpr.m(args)` or `a.b.C.m(args)`.
    Call {
        /// Who is being called.
        callee: Callee,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Field read on a non-path base expression, e.g. `f().x`.
    FieldAccess {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        field: Symbol,
    },
    /// `lhs == rhs` or `lhs != rhs`.
    Cmp {
        /// Which comparison.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `!expr`.
    Not(Box<Expr>),
}

/// How a call names its target.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Callee {
    /// `expr.m(..)` where `expr` is not a bare dotted path.
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: Symbol,
    },
    /// `seg1.seg2...m(..)`: the prefix is a local variable plus field chain,
    /// or a (possibly dotted) class name; lowering decides.
    Path(Vec<Symbol>),
    /// `f(..)` free user function call.
    Free(Symbol),
}

/// Comparison operators usable in conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Expr {
    /// Walks this expression and all sub-expressions, applying `f` to each.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match &self.kind {
            ExprKind::New { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Call { callee, args } => {
                if let Callee::Method { recv, .. } = callee {
                    recv.walk(f);
                }
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::FieldAccess { base, .. } => base.walk(f),
            ExprKind::Cmp { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Not(inner) => inner.walk(f),
            ExprKind::Path(_)
            | ExprKind::Str(_)
            | ExprKind::Int(_)
            | ExprKind::Bool(_)
            | ExprKind::Null => {}
        }
    }
}

impl Block {
    /// Walks every statement in the block and nested blocks.
    pub fn walk_stmts(&self, f: &mut impl FnMut(&Stmt)) {
        for stmt in &self.stmts {
            f(stmt);
            match &stmt.kind {
                StmtKind::If {
                    then_blk, else_blk, ..
                } => {
                    then_blk.walk_stmts(f);
                    if let Some(e) = else_blk {
                        e.walk_stmts(f);
                    }
                }
                StmtKind::While { body, .. } => body.walk_stmts(f),
                _ => {}
            }
        }
    }
}
