//! Pretty-printing of ASTs back to surface syntax.
//!
//! Useful for corpus debugging and for round-trip testing the parser: for
//! any program `p`, `parse(print(parse(p)))` must reproduce the same AST
//! shape.

use crate::ast::*;

/// Renders a whole program as source text.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for class in &program.classes {
        out.push_str(&format!("class {} {{\n", class.name));
        for m in &class.methods {
            print_func(m, 1, &mut out);
        }
        out.push_str("}\n");
    }
    for f in &program.funcs {
        print_func(f, 0, &mut out);
    }
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_func(f: &FuncDecl, level: usize, out: &mut String) {
    indent(level, out);
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| match p.ty {
            Some(t) => format!("{}: {t}", p.name),
            None => p.name.to_string(),
        })
        .collect();
    out.push_str(&format!("fn {}({}) {{\n", f.name, params.join(", ")));
    print_block(&f.body, level + 1, out);
    indent(level, out);
    out.push_str("}\n");
}

fn print_block(block: &Block, level: usize, out: &mut String) {
    for stmt in &block.stmts {
        print_stmt(stmt, level, out);
    }
}

fn print_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match &stmt.kind {
        StmtKind::Assign { target, value } => {
            match target {
                AssignTarget::Var(v) => out.push_str(&format!("{v} = ")),
                AssignTarget::Field { base, field } => out.push_str(&format!("{base}.{field} = ")),
            }
            print_expr(value, out);
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            print_expr(e, out);
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            out.push_str("if (");
            print_expr(cond, out);
            out.push_str(") {\n");
            print_block(then_blk, level + 1, out);
            indent(level, out);
            out.push('}');
            if let Some(eb) = else_blk {
                out.push_str(" else {\n");
                print_block(eb, level + 1, out);
                indent(level, out);
                out.push('}');
            }
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            out.push_str("while (");
            print_expr(cond, out);
            out.push_str(") {\n");
            print_block(body, level + 1, out);
            indent(level, out);
            out.push_str("}\n");
        }
        StmtKind::Return(value) => {
            out.push_str("return");
            if let Some(v) = value {
                out.push(' ');
                print_expr(v, out);
            }
            out.push_str(";\n");
        }
    }
}

fn print_expr(expr: &Expr, out: &mut String) {
    match &expr.kind {
        ExprKind::Path(segs) => {
            let parts: Vec<&str> = segs.iter().map(|s| s.as_str()).collect();
            out.push_str(&parts.join("."));
        }
        ExprKind::Str(s) => {
            out.push('"');
            for c in s.as_str().chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        ExprKind::Int(i) => out.push_str(&i.to_string()),
        ExprKind::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ExprKind::Null => out.push_str("null"),
        ExprKind::New { class, args } => {
            out.push_str(&format!("new {class}("));
            print_args(args, out);
            out.push(')');
        }
        ExprKind::Call { callee, args } => {
            match callee {
                Callee::Method { recv, name } => {
                    print_expr(recv, out);
                    out.push_str(&format!(".{name}"));
                }
                Callee::Path(segs) => {
                    let parts: Vec<&str> = segs.iter().map(|s| s.as_str()).collect();
                    out.push_str(&parts.join("."));
                }
                Callee::Free(name) => out.push_str(name.as_str()),
            }
            out.push('(');
            print_args(args, out);
            out.push(')');
        }
        ExprKind::FieldAccess { base, field } => {
            print_expr(base, out);
            out.push_str(&format!(".{field}"));
        }
        ExprKind::Cmp { op, lhs, rhs } => {
            print_expr(lhs, out);
            out.push_str(match op {
                CmpOp::Eq => " == ",
                CmpOp::Ne => " != ",
            });
            print_expr(rhs, out);
        }
        ExprKind::Not(inner) => {
            out.push('!');
            print_expr(inner, out);
        }
    }
}

fn print_args(args: &[Expr], out: &mut String) {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        print_expr(a, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Structural AST equality ignoring node ids and spans.
    fn shape(program: &Program) -> String {
        // Printing is itself a canonical shape (ids/spans are not printed).
        print_program(program)
    }

    #[test]
    fn roundtrip_fixed_programs() {
        let sources = [
            r#"
            fn main(db: sql.Database, flag) {
                map = new java.util.HashMap();
                f = db.getFile("a");
                map.put("key", f);
                if (flag) { x = map.get("key"); } else { x = null; }
                while (flag) { f.touch(); }
                o = new Box();
                o.item = f;
                y = o.item;
                return y;
            }
            "#,
            r#"
            class Helper {
                fn fetch(self, db) { return db.getFile("z"); }
            }
            fn main() {
                h = new Helper();
                a = h.fetch(sql.Database.connect("dsn"));
                c = a == null;
                d = !c;
            }
            "#,
        ];
        for src in sources {
            let p1 = parse(src).unwrap();
            let printed = print_program(&p1);
            let p2 = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
            assert_eq!(shape(&p1), shape(&p2), "roundtrip diverged for\n{printed}");
        }
    }

    #[test]
    fn string_escapes_survive() {
        let src = r#"fn main() { s = "a\"b\\c\nd"; }"#;
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(shape(&p1), shape(&p2));
    }

    #[test]
    fn generated_corpus_roundtrips() {
        // The corpus generator lives downstream; simulate its shapes here
        // with a representative file.
        let src = r#"
            fn make1(h: java.sql.ResultSet) {
                return h.getString("col");
            }
            fn main(flag0, flag1) {
                o1 = java.sql.DriverManager.getConnection("dsn42");
                o2 = o1.createStatement();
                o3 = o2.executeQuery("data7");
                v4 = make1(o3);
                r5 = v4.trim();
                if (flag0) {
                    m6 = new java.util.HashMap();
                    m6.put("key", v4);
                    y7 = m6.get("key");
                    y7.length();
                }
            }
        "#;
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(shape(&p1), shape(&p2));
    }
}
