//! Global string interner.
//!
//! Method identifiers, class names and literal strings must be comparable
//! *across* programs: specification learning aggregates candidate matches
//! over thousands of source files. A process-wide interner gives every
//! distinct string a stable [`Symbol`] that is `Copy`, hashable and cheap to
//! compare, regardless of which file introduced it.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Symbols are equal iff the underlying strings are equal, and remain valid
/// for the lifetime of the process.
///
/// # Examples
///
/// ```
/// use uspec_lang::Symbol;
/// let a = Symbol::intern("java.util.HashMap");
/// let b = Symbol::intern("java.util.HashMap");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "java.util.HashMap");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its stable symbol.
    pub fn intern(s: &str) -> Symbol {
        let mut inner = interner().lock().expect("interner poisoned");
        if let Some(&id) = inner.map.get(s) {
            return Symbol(id);
        }
        // Leaking is intentional: the interner is append-only and process
        // wide, so every distinct string is leaked exactly once.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = inner.strings.len() as u32;
        inner.strings.push(leaked);
        inner.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let inner = interner().lock().expect("interner poisoned");
        inner.strings[self.0 as usize]
    }

    /// Raw index of this symbol in the interner, useful for dense tables.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl serde::Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Symbol, D::Error> {
        let s = String::deserialize(de)?;
        Ok(Symbol::intern(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        let c = Symbol::intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "foo");
        assert_eq!(c.as_str(), "bar");
    }

    #[test]
    fn symbols_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let set: HashSet<Symbol> = ["x", "y", "x"].iter().map(|s| Symbol::intern(s)).collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_matches_contents() {
        let s = Symbol::intern("a.b.C.d/2");
        assert_eq!(format!("{s}"), "a.b.C.d/2");
        assert_eq!(format!("{s:?}"), "\"a.b.C.d/2\"");
    }

    #[test]
    fn empty_string_interns() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn many_symbols_stay_distinct() {
        let syms: Vec<Symbol> = (0..1000)
            .map(|i| Symbol::intern(&format!("sym{i}")))
            .collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("sym{i}"));
        }
    }
}
