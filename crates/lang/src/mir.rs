//! Lowered intermediate representation.
//!
//! [`Body`] is a per-entry-function control-flow graph produced by
//! [`lower`](crate::lower). Bodies are **acyclic**: loops are unrolled once
//! (matching the paper's single loop unrolling, §3.2) and user-defined
//! functions are inlined up to a configurable depth, so calling contexts are
//! materialized in the IR. Copies of a statement produced by unrolling or by
//! inlining the *same* call chain keep the same [`CallSite`], while distinct
//! call chains yield distinct contexts — exactly the call-site notion of
//! §3.1 ("a call site comprises the method call statement and its calling
//! context").

use crate::ast::NodeId;
use crate::registry::{MethodId, VarType};
use crate::Symbol;
use serde::{Deserialize, Serialize};

/// A virtual register / local variable slot within a [`Body`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of a basic block within a [`Body`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl std::fmt::Debug for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Interned calling context (innermost call site first).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CtxId(pub u32);

/// A call site: an AST node plus the calling context it was inlined under.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CallSite {
    /// The syntactic call/allocation/literal node.
    pub node: NodeId,
    /// The inlining context.
    pub ctx: CtxId,
}

impl std::fmt::Debug for CallSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}@c{}", self.node, self.ctx.0)
    }
}

/// A literal value. These are the `v_i` values of literal-construction
/// events `⟨lc_i, ret⟩` (§3.1) and the equality tokens of `val_G` (§5.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Literal {
    /// String literal.
    Str(Symbol),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// `null`.
    Null,
}

impl Literal {
    /// The [`VarType`] of the literal.
    pub fn var_type(&self) -> VarType {
        match self {
            Literal::Str(_) => VarType::Str,
            Literal::Int(_) => VarType::Int,
            Literal::Bool(_) => VarType::Bool,
            Literal::Null => VarType::Null,
        }
    }
}

impl std::fmt::Debug for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "{:?}", s.as_str()),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One lowered instruction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = new class()` — allocation of a user or API object.
    New {
        /// Destination variable.
        dst: Var,
        /// Fully-qualified class name.
        class: Symbol,
        /// Allocation site.
        site: CallSite,
        /// Whether this is a user-defined class (fields are real) or an API
        /// class (only ghost fields).
        user_class: bool,
    },
    /// `dst = literal` — literal construction event `⟨lc_i, ret⟩`.
    Lit {
        /// Destination variable.
        dst: Var,
        /// The literal value.
        value: Literal,
        /// Literal construction site.
        site: CallSite,
    },
    /// `dst = src`.
    Copy {
        /// Destination variable.
        dst: Var,
        /// Source variable.
        src: Var,
    },
    /// A call to an external API method (instance or static).
    CallApi {
        /// Destination for the return value, if used.
        dst: Option<Var>,
        /// Fully-qualified method identifier `id(m)`.
        method: MethodId,
        /// Receiver for instance calls; `None` for static calls.
        recv: Option<Var>,
        /// Argument variables (1-based positions in event terms).
        args: Vec<Var>,
        /// The call site `m`.
        site: CallSite,
    },
    /// `dst = obj.field` on a user object.
    FieldLoad {
        /// Destination variable.
        dst: Var,
        /// Base object.
        obj: Var,
        /// Field name.
        field: Symbol,
    },
    /// `obj.field = src` on a user object.
    FieldStore {
        /// Base object.
        obj: Var,
        /// Field name.
        field: Symbol,
        /// Stored value.
        src: Var,
    },
    /// `dst = <opaque>` — models calls that could not be resolved or were cut
    /// off by the inlining budget: the destination points to a fresh object
    /// but no event is recorded.
    Opaque {
        /// Destination variable.
        dst: Var,
        /// Site of the unresolved operation (for diagnostics).
        site: CallSite,
    },
    /// `dst = (lhs == rhs)` or `!=`; produces an untracked boolean.
    Cmp {
        /// Destination variable.
        dst: Var,
        /// Left operand.
        lhs: Var,
        /// Right operand.
        rhs: Var,
        /// `true` for `!=`.
        negated: bool,
    },
    /// `dst = !src`; produces an untracked boolean.
    Not {
        /// Destination variable.
        dst: Var,
        /// Operand.
        src: Var,
    },
}

impl Instr {
    /// The variable this instruction defines, if any.
    pub fn def(&self) -> Option<Var> {
        match self {
            Instr::New { dst, .. }
            | Instr::Lit { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::FieldLoad { dst, .. }
            | Instr::Opaque { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Not { dst, .. } => Some(*dst),
            Instr::CallApi { dst, .. } => *dst,
            Instr::FieldStore { .. } => None,
        }
    }

    /// The variables this instruction reads.
    pub fn uses(&self) -> Vec<Var> {
        match self {
            Instr::New { .. } | Instr::Lit { .. } | Instr::Opaque { .. } => vec![],
            Instr::Copy { src, .. } | Instr::Not { src, .. } => vec![*src],
            Instr::CallApi { recv, args, .. } => {
                let mut vs: Vec<Var> = recv.iter().copied().collect();
                vs.extend(args.iter().copied());
                vs
            }
            Instr::FieldLoad { obj, .. } => vec![*obj],
            Instr::FieldStore { obj, src, .. } => vec![*obj, *src],
            Instr::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
        }
    }
}

/// A control-flow condition guarding a block, for the γ features (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Guard {
    /// The `if`/`while` statement node.
    pub site: NodeId,
    /// `true` for the then/loop-taken branch.
    pub polarity: bool,
    /// A symbolic token describing the condition shape (e.g. the method name
    /// called in the condition, `==`, or a variable name).
    pub token: Symbol,
}

/// Block terminators. All edges go to *later* blocks — bodies are DAGs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch on `cond`.
    Branch {
        /// The branch condition variable.
        cond: Var,
        /// Target when the condition holds.
        then_bb: BlockId,
        /// Target when it does not.
        else_bb: BlockId,
    },
    /// Function exit.
    Return,
}

/// A basic block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// How control leaves the block.
    pub term: Terminator,
    /// Conditions dominating this block (outermost first).
    pub guards: Vec<Guard>,
}

/// Metadata about one variable slot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VarInfo {
    /// Source-level name, if the variable corresponds to one.
    pub name: Option<Symbol>,
    /// Inferred static type (the *join* over all assignments).
    pub ty: VarType,
}

/// A lowered, acyclic, fully-inlined function body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Body {
    /// Name of the entry function this body was lowered from.
    pub func: Symbol,
    /// Basic blocks; block 0 is the entry, edges only go forward.
    pub blocks: Vec<BasicBlock>,
    /// Variable metadata, indexed by [`Var`].
    pub vars: Vec<VarInfo>,
    /// Interned calling contexts, indexed by [`CtxId`]. Context 0 is the
    /// empty (entry) context; contexts list call-site nodes innermost first.
    pub ctxs: Vec<Vec<NodeId>>,
    /// Variables holding the entry function's parameters.
    pub params: Vec<Var>,
    /// Declared parameter types of the entry function.
    pub param_types: Vec<VarType>,
}

impl Body {
    /// Entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The successors of a block.
    pub fn succs(&self, bb: BlockId) -> Vec<BlockId> {
        match &self.blocks[bb.0 as usize].term {
            Terminator::Goto(t) => vec![*t],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return => vec![],
        }
    }

    /// Blocks in execution order. Bodies are constructed so that every edge
    /// goes from a lower to a higher block id, making the identity order a
    /// topological order; this is checked in debug builds.
    pub fn topo_order(&self) -> Vec<BlockId> {
        #[cfg(debug_assertions)]
        for (i, _) in self.blocks.iter().enumerate() {
            for s in self.succs(BlockId(i as u32)) {
                debug_assert!(
                    s.0 as usize > i,
                    "body {} has non-forward edge bb{} -> bb{}",
                    self.func,
                    i,
                    s.0
                );
            }
        }
        (0..self.blocks.len() as u32).map(BlockId).collect()
    }

    /// The calling context of a call site (innermost call node first).
    pub fn ctx_of(&self, site: CallSite) -> &[NodeId] {
        &self.ctxs[site.ctx.0 as usize]
    }

    /// Iterates over `(BlockId, &Instr)` pairs in topological order.
    pub fn instrs(&self) -> impl Iterator<Item = (BlockId, &Instr)> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.instrs.iter().map(move |instr| (BlockId(i as u32), instr)))
    }

    /// Counts the API call sites in the body (distinct instructions, not
    /// distinct sites).
    pub fn num_api_calls(&self) -> usize {
        self.instrs()
            .filter(|(_, i)| matches!(i, Instr::CallApi { .. }))
            .count()
    }
}
