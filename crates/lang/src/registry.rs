//! API registry: the frontend's knowledge about *external* library classes.
//!
//! The registry plays the role of the classpath/type stubs a Java or Python
//! frontend would consult: it maps fully-qualified class names to method
//! signatures so that the lowering can (a) resolve static calls, (b) type the
//! return values of API calls, and thereby (c) assign fully-qualified
//! [`MethodId`]s to call sites. Nothing here describes *aliasing* semantics —
//! learning those is the whole point of the pipeline. (The ground-truth
//! aliasing semantics used for evaluation live in `uspec-corpus`.)

use crate::Symbol;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A fully-qualified method identifier: class, method name and arity.
///
/// This is the paper's `id(m)` — "the fully qualified method name and
/// signature of the function called at m" (§3.1). Arity stands in for the
/// signature since the mini-language is unityped at call boundaries.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodId {
    /// Fully-qualified class name (or `?` if the receiver type is unknown).
    pub class: Symbol,
    /// Simple method name.
    pub method: Symbol,
    /// Number of explicit arguments (excluding the receiver).
    pub arity: u8,
}

impl MethodId {
    /// Creates a method identifier.
    pub fn new(class: impl Into<Symbol>, method: impl Into<Symbol>, arity: u8) -> MethodId {
        MethodId {
            class: class.into(),
            method: method.into(),
            arity,
        }
    }

    /// The class used for receivers whose static type could not be inferred.
    pub fn unknown_class() -> Symbol {
        Symbol::intern("?")
    }

    /// The paper's `nargs(m)` for call sites with this identifier.
    pub fn nargs(&self) -> usize {
        self.arity as usize
    }

    /// Renders as `class.method/arity`, e.g. `java.util.HashMap.get/1`.
    pub fn qualified(&self) -> String {
        format!("{}.{}/{}", self.class, self.method, self.arity)
    }
}

impl std::fmt::Debug for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.qualified())
    }
}

impl std::fmt::Display for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.qualified())
    }
}

/// The static type the lowering tracks for each local variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarType {
    /// An API class instance (fully-qualified class name).
    Api(Symbol),
    /// An instance of a user-defined class in the same file.
    User(Symbol),
    /// A string value.
    Str,
    /// An integer value.
    Int,
    /// A boolean value.
    Bool,
    /// The `null` constant.
    Null,
    /// Statically unknown (merged branches, unannotated parameters, ...).
    Unknown,
}

impl VarType {
    /// Least upper bound of two types; differing types collapse to
    /// [`VarType::Unknown`] (`Null` is absorbed by any object type).
    pub fn join(self, other: VarType) -> VarType {
        match (self, other) {
            (a, b) if a == b => a,
            (VarType::Null, b) => b,
            (a, VarType::Null) => a,
            _ => VarType::Unknown,
        }
    }
}

/// Signature of one API method.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ApiMethodSig {
    /// Simple method name.
    pub name: Symbol,
    /// Declared number of arguments (excluding receiver).
    pub arity: u8,
    /// Static return type.
    pub ret: VarType,
    /// Whether the method is called on the class rather than an instance.
    pub is_static: bool,
}

/// One API class visible to the frontend.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ApiClassSig {
    /// Fully-qualified name, e.g. `java.util.HashMap`.
    pub name: Symbol,
    /// Whether client code may `new` the class directly. Classes like
    /// `java.sql.ResultSet` are only obtained through factory methods.
    pub constructible: bool,
    /// Known method signatures. Calls to unlisted methods are allowed and
    /// default to an unknown return type.
    pub methods: Vec<ApiMethodSig>,
}

impl ApiClassSig {
    /// Looks up a method signature by name and arity (exact match first,
    /// then by name only).
    pub fn method(&self, name: Symbol, arity: usize) -> Option<&ApiMethodSig> {
        self.methods
            .iter()
            .find(|m| m.name == name && m.arity as usize == arity)
            .or_else(|| self.methods.iter().find(|m| m.name == name))
    }
}

/// The full set of API classes known to the frontend.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ApiTable {
    classes: HashMap<Symbol, ApiClassSig>,
    /// Class names bound to the primitive types, e.g. `Str` →
    /// `java.lang.String`, so method calls on literals resolve.
    prim_classes: HashMap<PrimBinding, Symbol>,
}

/// The primitive kinds that can be bound to an API class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimBinding {
    /// String values.
    Str,
    /// Integer values.
    Int,
    /// Boolean values.
    Bool,
}

impl ApiTable {
    /// Creates an empty table.
    pub fn new() -> ApiTable {
        ApiTable::default()
    }

    /// Registers (or replaces) a class signature.
    pub fn insert(&mut self, class: ApiClassSig) {
        self.classes.insert(class.name, class);
    }

    /// Binds a primitive kind to a class so that e.g. `"a".length()`
    /// resolves against that class.
    pub fn bind_prim(&mut self, prim: PrimBinding, class: Symbol) {
        self.prim_classes.insert(prim, class);
    }

    /// Looks up a class by fully-qualified name.
    pub fn class(&self, name: Symbol) -> Option<&ApiClassSig> {
        self.classes.get(&name)
    }

    /// Resolves the API class corresponding to a variable type, if any.
    pub fn class_of_type(&self, ty: VarType) -> Option<Symbol> {
        match ty {
            VarType::Api(c) => Some(c),
            VarType::Str => self.prim_classes.get(&PrimBinding::Str).copied(),
            VarType::Int => self.prim_classes.get(&PrimBinding::Int).copied(),
            VarType::Bool => self.prim_classes.get(&PrimBinding::Bool).copied(),
            _ => None,
        }
    }

    /// Return type of `class.method/arity`, defaulting to
    /// [`VarType::Unknown`] for unlisted methods.
    pub fn ret_type(&self, class: Symbol, method: Symbol, arity: usize) -> VarType {
        self.class(class)
            .and_then(|c| c.method(method, arity))
            .map(|m| m.ret)
            .unwrap_or(VarType::Unknown)
    }

    /// Whether `name` is a registered class (used to resolve static calls).
    pub fn is_class(&self, name: Symbol) -> bool {
        self.classes.contains_key(&name)
    }

    /// Iterates over all registered classes.
    pub fn classes(&self) -> impl Iterator<Item = &ApiClassSig> {
        self.classes.values()
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the table has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Builder-style helper for declaring API classes tersely.
///
/// # Examples
///
/// ```
/// use uspec_lang::registry::{ApiClassBuilder, VarType};
///
/// let class = ApiClassBuilder::new("java.util.HashMap")
///     .method("put", 2, VarType::Unknown)
///     .method("get", 1, VarType::Unknown)
///     .build();
/// assert_eq!(class.methods.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ApiClassBuilder {
    sig: ApiClassSig,
}

impl ApiClassBuilder {
    /// Starts a constructible class with the given fully-qualified name.
    pub fn new(name: &str) -> ApiClassBuilder {
        ApiClassBuilder {
            sig: ApiClassSig {
                name: Symbol::intern(name),
                constructible: true,
                methods: Vec::new(),
            },
        }
    }

    /// Marks the class as not directly constructible (factory-only).
    pub fn factory_only(mut self) -> ApiClassBuilder {
        self.sig.constructible = false;
        self
    }

    /// Adds an instance method.
    pub fn method(mut self, name: &str, arity: u8, ret: VarType) -> ApiClassBuilder {
        self.sig.methods.push(ApiMethodSig {
            name: Symbol::intern(name),
            arity,
            ret,
            is_static: false,
        });
        self
    }

    /// Adds a static method.
    pub fn static_method(mut self, name: &str, arity: u8, ret: VarType) -> ApiClassBuilder {
        self.sig.methods.push(ApiMethodSig {
            name: Symbol::intern(name),
            arity,
            ret,
            is_static: true,
        });
        self
    }

    /// Finishes the class signature.
    pub fn build(self) -> ApiClassSig {
        self.sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_id_display() {
        let id = MethodId::new("java.util.HashMap", "get", 1);
        assert_eq!(id.qualified(), "java.util.HashMap.get/1");
        assert_eq!(id.nargs(), 1);
    }

    #[test]
    fn var_type_join() {
        let hm = VarType::Api(Symbol::intern("HashMap"));
        assert_eq!(hm.join(hm), hm);
        assert_eq!(hm.join(VarType::Null), hm);
        assert_eq!(VarType::Null.join(VarType::Str), VarType::Str);
        assert_eq!(hm.join(VarType::Str), VarType::Unknown);
    }

    #[test]
    fn table_lookup_and_ret_types() {
        let mut table = ApiTable::new();
        table.insert(
            ApiClassBuilder::new("java.util.HashMap")
                .method("get", 1, VarType::Unknown)
                .method("put", 2, VarType::Unknown)
                .build(),
        );
        let hm = Symbol::intern("java.util.HashMap");
        assert!(table.is_class(hm));
        assert_eq!(
            table.ret_type(hm, Symbol::intern("get"), 1),
            VarType::Unknown
        );
        assert_eq!(
            table.ret_type(hm, Symbol::intern("nonexistent"), 1),
            VarType::Unknown
        );
        assert!(!table.is_class(Symbol::intern("java.util.TreeMap")));
    }

    #[test]
    fn prim_binding_resolves() {
        let mut table = ApiTable::new();
        let string = Symbol::intern("java.lang.String");
        table.insert(
            ApiClassBuilder::new("java.lang.String")
                .method("length", 0, VarType::Int)
                .build(),
        );
        table.bind_prim(PrimBinding::Str, string);
        assert_eq!(table.class_of_type(VarType::Str), Some(string));
        assert_eq!(table.class_of_type(VarType::Int), None);
        assert_eq!(table.class_of_type(VarType::Api(string)), Some(string));
    }

    #[test]
    fn factory_only_classes() {
        let c = ApiClassBuilder::new("java.sql.ResultSet")
            .factory_only()
            .method("getString", 1, VarType::Str)
            .build();
        assert!(!c.constructible);
    }

    #[test]
    fn method_lookup_falls_back_to_name_only() {
        let c = ApiClassBuilder::new("X")
            .method("m", 2, VarType::Int)
            .build();
        // Exact arity miss still finds the method by name.
        assert!(c.method(Symbol::intern("m"), 3).is_some());
        assert!(c.method(Symbol::intern("q"), 0).is_none());
    }
}
