//! Byte spans and line/column positions for diagnostics.

use serde::{Deserialize, Serialize};

/// A half-open byte range `[lo, hi)` into a source file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Inclusive start byte offset.
    pub lo: u32,
    /// Exclusive end byte offset.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Span {
        assert!(lo <= hi, "span start {lo} past end {hi}");
        Span { lo, hi }
    }

    /// A zero-width placeholder span.
    pub fn dummy() -> Span {
        Span { lo: 0, hi: 0 }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the span is zero width.
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }

    /// Extracts the spanned text from `src`.
    pub fn text(self, src: &str) -> &str {
        &src[self.lo as usize..self.hi as usize]
    }

    /// Computes the 1-based line and column of the span start in `src`.
    pub fn line_col(self, src: &str) -> (u32, u32) {
        let mut line = 1u32;
        let mut col = 1u32;
        for (i, c) in src.char_indices() {
            if i as u32 >= self.lo {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_covers_both() {
        let a = Span::new(3, 5);
        let b = Span::new(8, 10);
        assert_eq!(a.to(b), Span::new(3, 10));
        assert_eq!(b.to(a), Span::new(3, 10));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }

    #[test]
    fn text_slices_source() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).text(src), "world");
    }

    #[test]
    #[should_panic(expected = "span start")]
    fn inverted_span_panics() {
        let _ = Span::new(5, 3);
    }
}
