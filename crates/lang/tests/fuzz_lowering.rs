//! AST-level fuzzing of the whole frontend: random programs within the
//! grammar are pretty-printed, re-parsed and lowered. This covers shapes
//! the corpus generator never produces (deep nesting, heavy shadowing,
//! degenerate bodies) and pins the invariants the downstream analyses rely
//! on: lowering terminates, bodies are acyclic forward-edge DAGs, and
//! re-parsing the pretty-printed program reproduces the same surface form.

use proptest::prelude::*;
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::parser::parse;
use uspec_lang::pretty::print_program;
use uspec_lang::registry::ApiTable;

/// A tiny program generator expressed directly over source text templates
/// — names, call shapes and nesting are random but scoping is correct by
/// construction (every read refers to a previously assigned variable).
#[derive(Debug, Clone)]
struct ProgGen {
    stmts: Vec<String>,
}

fn gen_stmts(depth: usize) -> BoxedStrategy<Vec<String>> {
    let var = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
    let method = prop_oneof![
        Just("m0"),
        Just("m1"),
        Just("put"),
        Just("get"),
        Just("use1")
    ];
    let key = prop_oneof![
        Just("\"k\""),
        Just("\"x\""),
        Just("7"),
        Just("true"),
        Just("null")
    ];

    let assign = (var.clone(), method.clone(), key.clone())
        .prop_map(|(v, m, k)| format!("{v} = root.{m}({k});"));
    let call = (var.clone(), method.clone()).prop_map(|(v, m)| format!("{v} = root.{m}();"));
    let alloc = var.clone().prop_map(|v| format!("{v} = new T();"));
    let chain =
        (var.clone(), method.clone()).prop_map(|(v, m)| format!("x = root.{m}(); {v} = x.{m}();"));
    let cmp = var
        .clone()
        .prop_map(|v| format!("{v} = root.m0() == root.m1();"));

    let leaf = prop_oneof![assign, call, alloc, chain, cmp];
    if depth == 0 {
        return proptest::collection::vec(leaf, 1..4).boxed();
    }
    let nested = gen_stmts(depth - 1);
    let wrapped =
        (nested.clone(), any::<bool>(), any::<bool>()).prop_map(|(inner, use_while, negate)| {
            let body = inner.join("\n");
            let cond = if negate { "!flag" } else { "flag" };
            if use_while {
                format!("while ({cond}) {{ {body} }}")
            } else {
                format!("if ({cond}) {{ {body} }} else {{ {body} }}")
            }
        });
    let ret = Just("return root.m0();".to_owned());
    proptest::collection::vec(prop_oneof![4 => leaf, 2 => wrapped, 1 => ret], 1..5).boxed()
}

fn gen_program() -> impl Strategy<Value = ProgGen> {
    gen_stmts(3).prop_map(|stmts| ProgGen { stmts })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_lower_and_roundtrip(prog in gen_program(), use_helper in any::<bool>()) {
        let body = prog.stmts.join("\n");
        let helper = if use_helper {
            "fn helper(root) { return root.m0(); }\n"
        } else {
            ""
        };
        let call_helper = if use_helper { "h = helper(root);" } else { "" };
        let src = format!(
            "{helper}fn main(root, flag) {{\nx = root.m0();\n{call_helper}\n{body}\n}}"
        );
        let program = parse(&src).expect("template programs parse");
        let bodies = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .expect("template programs lower");
        for b in &bodies {
            // Acyclic forward-edge invariant (panics in debug if violated).
            b.topo_order();
        }
        // Pretty-print round trip preserves the surface form.
        let printed = print_program(&program);
        let reparsed = parse(&printed).expect("printed program parses");
        prop_assert_eq!(print_program(&reparsed), printed);
    }

    #[test]
    fn deep_nesting_does_not_blow_up(depth in 1usize..9) {
        // while-in-while nesting doubles per level under single unrolling:
        // 2^8 = 256 copies max — must stay fast and acyclic.
        let mut body = "x = root.m0();".to_owned();
        for _ in 0..depth {
            body = format!("while (flag) {{ {body} }}");
        }
        let src = format!("fn main(root, flag) {{ {body} }}");
        let program = parse(&src).expect("parses");
        let bodies = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .expect("lowers");
        prop_assert_eq!(bodies[0].num_api_calls(), 1usize << depth);
        bodies[0].topo_order();
    }
}
