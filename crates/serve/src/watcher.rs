//! Deterministic corpus watching: polling snapshots, diffs, debouncing.
//!
//! The daemon cannot use inotify-style APIs (no such dependency is
//! vendored, and event APIs differ per platform), so it polls: every
//! `poll_ms` the corpus tree is re-scanned into a [`Snapshot`] of
//! `(size, mtime)` per `*.u` file, and [`diff`] lists the paths that
//! appeared, vanished, or changed. The [`Debouncer`] then coalesces a
//! burst of edits (an editor save storm, a `generate` rewriting a whole
//! directory) into one batch, released only after the tree has been quiet
//! for a configured number of consecutive scans.
//!
//! Everything here is pure with respect to time — the caller owns the
//! poll loop — which keeps the logic unit-testable without sleeping.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Identity of one file's content as far as polling can see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileMeta {
    /// File size in bytes.
    pub len: u64,
    /// Filesystem modification time.
    pub mtime: SystemTime,
}

/// One scan of the corpus tree: every `*.u` file, in sorted path order.
pub type Snapshot = BTreeMap<PathBuf, FileMeta>;

/// Recursively scans `root` for `*.u` files. Unreadable entries are
/// skipped — a file being replaced mid-scan shows up changed on the next
/// poll rather than failing this one.
pub fn scan(root: &Path) -> Snapshot {
    let mut snap = Snapshot::new();
    scan_into(root, &mut snap);
    snap
}

fn scan_into(path: &Path, snap: &mut Snapshot) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "u") {
            if let Ok(meta) = path.metadata() {
                if let Ok(mtime) = meta.modified() {
                    snap.insert(
                        path.to_path_buf(),
                        FileMeta {
                            len: meta.len(),
                            mtime,
                        },
                    );
                }
            }
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        return;
    };
    for entry in entries.flatten() {
        scan_into(&entry.path(), snap);
    }
}

/// Paths that differ between two snapshots (added, removed, or changed),
/// sorted.
pub fn diff(old: &Snapshot, new: &Snapshot) -> Vec<PathBuf> {
    let mut changed = Vec::new();
    for (path, meta) in new {
        if old.get(path) != Some(meta) {
            changed.push(path.clone());
        }
    }
    for path in old.keys() {
        if !new.contains_key(path) {
            changed.push(path.clone());
        }
    }
    changed.sort();
    changed
}

/// Coalesces per-scan change lists into quiet-period batches.
#[derive(Debug)]
pub struct Debouncer {
    pending: BTreeSet<PathBuf>,
    quiet_scans: u32,
    required: u32,
}

impl Debouncer {
    /// A debouncer that releases its batch after `required_quiet_scans`
    /// consecutive scans with no further changes (minimum 1).
    pub fn new(required_quiet_scans: u32) -> Debouncer {
        Debouncer {
            pending: BTreeSet::new(),
            quiet_scans: 0,
            required: required_quiet_scans.max(1),
        }
    }

    /// Feeds one scan's diff. Returns the coalesced batch once the tree
    /// has been quiet long enough, `None` otherwise.
    pub fn observe(&mut self, changed: Vec<PathBuf>) -> Option<Vec<PathBuf>> {
        if !changed.is_empty() {
            self.pending.extend(changed);
            self.quiet_scans = 0;
            return None;
        }
        if self.pending.is_empty() {
            return None;
        }
        self.quiet_scans += 1;
        if self.quiet_scans < self.required {
            return None;
        }
        self.quiet_scans = 0;
        Some(std::mem::take(&mut self.pending).into_iter().collect())
    }

    /// Whether changes are waiting for the quiet period to elapse.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn debouncer_coalesces_bursts_and_waits_for_quiet() {
        let mut d = Debouncer::new(2);
        assert_eq!(d.observe(vec![p("a.u")]), None);
        assert_eq!(d.observe(vec![p("b.u"), p("a.u")]), None, "burst resets");
        assert_eq!(d.observe(vec![]), None, "one quiet scan is not enough");
        assert!(d.has_pending());
        assert_eq!(
            d.observe(vec![]),
            Some(vec![p("a.u"), p("b.u")]),
            "second quiet scan releases the deduplicated batch"
        );
        assert!(!d.has_pending());
        assert_eq!(d.observe(vec![]), None, "drained");
    }

    /// A deterministic fake-clock timestamp: `s` seconds past the epoch.
    fn at(s: u64) -> SystemTime {
        SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(s)
    }

    fn meta(len: u64, mtime_s: u64) -> FileMeta {
        FileMeta {
            len,
            mtime: at(mtime_s),
        }
    }

    #[test]
    fn mtime_moving_backwards_is_a_change() {
        // A restored backup or a clock step can move a file's mtime
        // *backwards* with the same length; polling identity is exact
        // (len, mtime) equality, not ordering, so it must still re-learn.
        let mut old = Snapshot::new();
        old.insert(p("a.u"), meta(10, 100));
        let mut new = Snapshot::new();
        new.insert(p("a.u"), meta(10, 50));
        assert_eq!(diff(&old, &new), vec![p("a.u")]);
        // And the reverse transition is symmetric.
        assert_eq!(diff(&new, &old), vec![p("a.u")]);
    }

    #[test]
    fn deletion_between_scans_is_a_change_and_scan_skips_the_gone_file() {
        // A file present in the old snapshot but deleted before the next
        // scan reads it: the scan simply omits it (unreadable entries are
        // skipped), and the diff reports it so the learner re-learns the
        // remaining corpus.
        let mut old = Snapshot::new();
        old.insert(p("a.u"), meta(10, 100));
        old.insert(p("b.u"), meta(20, 100));
        let mut new = Snapshot::new();
        new.insert(p("a.u"), meta(10, 100));
        assert_eq!(diff(&old, &new), vec![p("b.u")]);

        // scan() on a vanished root degrades to an empty snapshot rather
        // than failing the poll.
        let gone = scan(Path::new("/nonexistent/uspec-watch-race"));
        assert!(gone.is_empty());
    }

    #[test]
    fn scan_and_diff_track_create_modify_delete() {
        let root = std::env::temp_dir().join(format!("uspec-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("sub")).unwrap();
        std::fs::write(root.join("a.u"), "fn main() { }").unwrap();
        std::fs::write(root.join("sub/b.u"), "fn main() { }").unwrap();
        std::fs::write(root.join("ignored.txt"), "not corpus").unwrap();

        let s1 = scan(&root);
        assert_eq!(s1.len(), 2, "only *.u files are tracked");
        assert!(diff(&s1, &s1).is_empty());

        // Modify (different length — polling identity is (len, mtime), and
        // mtime granularity can swallow a same-length rewrite in a test).
        std::fs::write(root.join("a.u"), "fn main() { x = 1; }").unwrap();
        // Create + delete.
        std::fs::write(root.join("c.u"), "fn main() { }").unwrap();
        std::fs::remove_file(root.join("sub/b.u")).unwrap();

        let s2 = scan(&root);
        let changed = diff(&s1, &s2);
        assert_eq!(
            changed,
            vec![root.join("a.u"), root.join("c.u"), root.join("sub/b.u")]
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
