//! The serve wire protocol: newline-delimited JSON frames.
//!
//! One request per line, one response line per request, in order. A
//! response is either
//!
//! ```json
//! {"id":1,"req":17,"gen":3,"ok":true,"result":…}
//! {"id":1,"req":17,"gen":3,"ok":false,"error":{"code":"params","message":"…"}}
//! ```
//!
//! `id` is the client-chosen correlation id echoed back verbatim; `req` is
//! the server-stamped request sequence number (process-global, monotone),
//! the handle that correlates a response with the daemon's telemetry.
//! `gen` is the specification generation the answer was computed against —
//! clients watching for an edit to become visible poll `status` until it
//! moves. The `result` payload is serialized by the same typed serializer
//! the batch CLI uses, so served bytes can be compared against CLI output
//! directly; only the envelope around it is hand-built (see
//! [`crate::json`] for why).
//!
//! Malformed input of any shape — unparseable JSON, a megabyte line with
//! no newline, a client that disconnects mid-write — must produce a typed
//! error response or a clean connection close, never a panic or an
//! unbounded buffer.

use std::io::{BufRead, ErrorKind};

use crate::json::{self, Json};

/// Default cap on one frame's bytes (newline excluded). Oversized frames
/// are drained (not buffered) up to their newline and answered with an
/// `oversized` error, so one hostile client cannot balloon a worker.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Typed protocol error categories, serialized as `error.code`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not a well-formed request object.
    Parse,
    /// The method name is not one the server exposes.
    Method,
    /// The method is known but its parameters are missing or mistyped.
    Params,
    /// The frame exceeded [`MAX_FRAME_BYTES`].
    Oversized,
    /// The server failed while computing an answer.
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Method => "method",
            ErrorCode::Params => "params",
            ErrorCode::Oversized => "oversized",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed back verbatim (`null` when
    /// absent or not a non-negative integer).
    pub id: Option<u64>,
    /// Method name, e.g. `spec.lookup`.
    pub method: String,
    /// Method parameters; `Json::Null` when absent.
    pub params: Json,
}

/// Parses one frame into a [`Request`]. Errors carry whatever `id` could
/// be recovered so the failure response still correlates.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, ErrorCode, String)> {
    let v = json::parse(line).map_err(|e| (None, ErrorCode::Parse, format!("bad JSON: {e}")))?;
    let Json::Obj(_) = v else {
        return Err((
            None,
            ErrorCode::Parse,
            "request must be a JSON object".into(),
        ));
    };
    let id = v.get("id").and_then(Json::as_u64);
    let method = match v.get("method").and_then(Json::as_str) {
        Some(m) if !m.is_empty() => m.to_owned(),
        _ => {
            return Err((
                id,
                ErrorCode::Parse,
                "request carries no `method` string".into(),
            ))
        }
    };
    let params = v.get("params").cloned().unwrap_or(Json::Null);
    Ok(Request { id, method, params })
}

fn id_json(id: Option<u64>) -> String {
    match id {
        Some(n) => n.to_string(),
        None => "null".to_owned(),
    }
}

/// Builds a success envelope around an already-serialized `result`
/// payload. `req` is the server-stamped request sequence number.
pub fn ok_response(id: Option<u64>, req: u64, generation: u64, result_json: &str) -> String {
    format!(
        "{{\"id\":{},\"req\":{req},\"gen\":{generation},\"ok\":true,\"result\":{result_json}}}\n",
        id_json(id)
    )
}

/// Builds an error envelope.
pub fn err_response(
    id: Option<u64>,
    req: u64,
    generation: u64,
    code: ErrorCode,
    message: &str,
) -> String {
    format!(
        "{{\"id\":{},\"req\":{req},\"gen\":{generation},\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":{}}}}}\n",
        id_json(id),
        code.as_str(),
        json::escape(message)
    )
}

/// What one [`FrameReader::next`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame is available via [`FrameReader::frame`].
    Msg,
    /// A frame exceeded the byte cap; its bytes were drained, not kept.
    Oversized,
    /// The peer closed the connection.
    Eof,
    /// The read timed out (used to poll the shutdown flag); frame state is
    /// preserved, call again.
    Timeout,
}

/// Incremental newline-frame reader with a byte cap.
///
/// Resumable across read timeouts: a frame half-received when the socket
/// times out is kept and completed by the next call, so workers can poll
/// the server's shutdown flag without losing bytes.
#[derive(Debug)]
pub struct FrameReader {
    max: usize,
    buf: Vec<u8>,
    overflowed: bool,
    finished: bool,
}

impl FrameReader {
    /// A reader enforcing `max` bytes per frame.
    pub fn new(max: usize) -> FrameReader {
        FrameReader {
            max,
            buf: Vec::new(),
            overflowed: false,
            finished: false,
        }
    }

    /// The last completed frame's bytes (valid after [`FrameEvent::Msg`]).
    pub fn frame(&self) -> &[u8] {
        &self.buf
    }

    /// Reads until a frame completes, the peer closes, or the read times
    /// out. Interrupted reads are retried; `WouldBlock`/`TimedOut` surface
    /// as [`FrameEvent::Timeout`].
    pub fn next(&mut self, r: &mut impl BufRead) -> std::io::Result<FrameEvent> {
        if self.finished {
            self.buf.clear();
            self.overflowed = false;
            self.finished = false;
        }
        loop {
            let available = match r.fill_buf() {
                Ok(a) => a,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(FrameEvent::Timeout)
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF. A trailing unterminated frame still counts — the
                // peer wrote it and hung up without the final newline.
                self.finished = true;
                return Ok(if self.overflowed {
                    FrameEvent::Oversized
                } else if self.buf.is_empty() {
                    self.finished = false;
                    FrameEvent::Eof
                } else {
                    FrameEvent::Msg
                });
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !self.overflowed && self.buf.len() + pos > self.max {
                        self.overflowed = true;
                        self.buf.clear();
                    }
                    if !self.overflowed {
                        self.buf.extend_from_slice(&available[..pos]);
                        if self.buf.last() == Some(&b'\r') {
                            self.buf.pop();
                        }
                    }
                    r.consume(pos + 1);
                    self.finished = true;
                    return Ok(if self.overflowed {
                        FrameEvent::Oversized
                    } else {
                        FrameEvent::Msg
                    });
                }
                None => {
                    let n = available.len();
                    if !self.overflowed {
                        self.buf.extend_from_slice(available);
                        if self.buf.len() > self.max {
                            self.overflowed = true;
                            self.buf.clear();
                        }
                    }
                    r.consume(n);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn events(input: &[u8], max: usize) -> Vec<(FrameEvent, String)> {
        let mut r = std::io::BufReader::new(Cursor::new(input.to_vec()));
        let mut fr = FrameReader::new(max);
        let mut out = Vec::new();
        loop {
            let ev = fr.next(&mut r).unwrap();
            let frame = String::from_utf8_lossy(fr.frame()).into_owned();
            if ev == FrameEvent::Eof {
                break;
            }
            out.push((ev, frame));
        }
        out
    }

    #[test]
    fn frames_split_on_newlines_and_strip_cr() {
        let got = events(b"one\r\ntwo\nlast-no-newline", 100);
        assert_eq!(
            got,
            vec![
                (FrameEvent::Msg, "one".into()),
                (FrameEvent::Msg, "two".into()),
                (FrameEvent::Msg, "last-no-newline".into()),
            ]
        );
    }

    #[test]
    fn oversized_frames_are_drained_not_buffered() {
        let mut input = vec![b'x'; 50];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let got = events(&input, 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, FrameEvent::Oversized);
        assert!(got[0].1.is_empty(), "oversized bytes must not be kept");
        assert_eq!(got[1], (FrameEvent::Msg, "ok".into()));
    }

    #[test]
    fn oversized_detection_counts_across_fill_buf_chunks() {
        // An unterminated flood larger than the cap, closed without a
        // newline: one Oversized event, then EOF.
        let input = vec![b'y'; 1000];
        let got = events(&input, 64);
        assert_eq!(got, vec![(FrameEvent::Oversized, String::new())]);
    }

    #[test]
    fn parse_request_recovers_id_for_error_correlation() {
        let err = parse_request(r#"{"id": 9, "params": {}}"#).unwrap_err();
        assert_eq!(err.0, Some(9));
        assert_eq!(err.1, ErrorCode::Parse);

        let err = parse_request("not json").unwrap_err();
        assert_eq!(err.0, None);
        assert_eq!(err.1, ErrorCode::Parse);

        let req = parse_request(r#"{"method":"status"}"#).unwrap();
        assert_eq!(req.id, None);
        assert_eq!(req.method, "status");
        assert_eq!(req.params, Json::Null);
    }

    #[test]
    fn envelopes_are_valid_json() {
        let ok = ok_response(Some(4), 99, 2, "[1,2]");
        let v = crate::json::parse(ok.trim_end()).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("req").and_then(Json::as_u64), Some(99));
        assert_eq!(v.get("gen").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));

        let err = err_response(None, 100, 7, ErrorCode::Params, "missing `a`\nsee docs");
        let v = crate::json::parse(err.trim_end()).unwrap();
        assert_eq!(v.get("req").and_then(Json::as_u64), Some(100));
        assert_eq!(v.get("id"), Some(&Json::Null));
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        let e = v.get("error").unwrap();
        assert_eq!(e.get("code").and_then(Json::as_str), Some("params"));
        assert!(e
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains('\n'));
    }
}
