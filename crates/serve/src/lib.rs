//! # uspec-serve
//!
//! A resident spec-query daemon over the USpec pipeline: load-or-learn a
//! specification database once, keep it fresh by watching the corpus
//! directory, and answer concurrent queries over a Unix-domain (or TCP)
//! socket without ever re-running the batch CLI.
//!
//! The protocol is newline-delimited JSON ([`protocol`]): each request
//! line names a method (`spec.lookup`, `alias.may`, `explain`,
//! `analyze.snippet`, `status`, `metrics.snapshot`, `shutdown`) and each
//! response line echoes the request id, a server-stamped `req` sequence
//! number, and the specification **generation** it was answered
//! from. Edits to the corpus are detected by a deterministic polling
//! watcher ([`watcher`]), debounced, and re-learned incrementally through
//! the cached job pipeline — only the edited files' job cones re-execute
//! — while readers keep answering from the previous generation's
//! immutable snapshot ([`server`]).
//!
//! Served payloads are serialized by the same code paths as the batch
//! CLI (`uspec::explain_entries`, the typed serializer), so a served
//! answer is byte-identical to what the CLI would print for the same
//! learned state — the serve benchmark asserts exactly that.

#![warn(missing_docs)]

pub mod json;
pub mod protocol;
pub mod server;
pub mod watcher;

pub use protocol::{
    err_response, ok_response, parse_request, ErrorCode, FrameEvent, FrameReader, Request,
    MAX_FRAME_BYTES,
};
pub use server::{
    roundtrip_tcp, roundtrip_tcp_timeout, roundtrip_unix, roundtrip_unix_timeout, Generation,
    Listener, ServeOptions, Server, SloPolicy, SloSentinel,
};
pub use watcher::{diff, scan, Debouncer, FileMeta, Snapshot};
