//! The resident spec-query server.
//!
//! One process owns the learned result and keeps it fresh:
//!
//! * an **accept thread** hands client connections to a bounded worker
//!   pool over a channel;
//! * **worker threads** answer newline-JSON requests against a
//!   generation-stamped `Arc<Generation>` snapshot — a whole pipelined
//!   batch of requests is answered under *one* snapshot, so a client
//!   never sees two generations interleaved within a batch;
//! * a **watcher thread** polls the corpus directory
//!   ([`crate::watcher`]) and emits debounced dirty batches;
//! * a **learner thread** re-runs the cached pipeline on each batch and
//!   swaps the new generation in. Re-learning reuses the artifact store
//!   and job memos, so an edit re-executes only the edited files' job
//!   cones — readers keep answering from the old `Arc` the whole time
//!   and never block.
//!
//! Every learned generation appends a run-ledger entry (when a ledger
//! directory is configured), and all traffic feeds the `serve.*`
//! counters that the run report's `serve` section snapshots.
//!
//! Observability rides on every request: each frame is stamped with a
//! process-global `req` sequence number, timed under a `serve.request`
//! span, and recorded into per-method sliding windows
//! ([`uspec_telemetry::window`]) plus the slow-query log. The whole
//! plane is queryable live over the wire (`metrics.snapshot`), rendered
//! as Prometheus text ([`Server::prometheus_text`]), and policed by the
//! edge-triggered [`SloSentinel`].

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::Serialize;
use uspec::{build_run_report, run_pipeline_cached, PipelineOptions};
use uspec_clients::{
    check_leaks, check_taint, check_typestate, LeakConfig, TaintConfig, TypestateProtocol,
};
use uspec_corpus::{Library, SliceSource};
use uspec_lang::{lower_program, parse, ApiTable, MethodId, Symbol};
use uspec_learn::{LearnedSpecs, ProvenanceIndex};
use uspec_pta::{Pta, Spec, SpecDb};
use uspec_store::ArtifactStore;
use uspec_telemetry::{
    counter, gauge, histogram, log_info, log_warn, span, window, RunReport, SlidingWindow,
    SlowQuery, WindowSnapshot,
};

use crate::json;

use crate::json::Json;
use crate::protocol::{
    err_response, ok_response, parse_request, ErrorCode, FrameEvent, FrameReader, Request,
    MAX_FRAME_BYTES,
};
use crate::watcher::{self, Debouncer};

/// How often blocked socket reads and channel waits wake up to check the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Registry prefix of the per-method request windows; the stream name
/// after it (`all`, `status`, `other`, …) is what exposition surfaces.
const WINDOW_STREAM_PREFIX: &str = "serve.";

/// Process-global request sequence. Every frame — well-formed or not —
/// takes the next number, stamped into its response envelope as `req`,
/// the handle correlating a response with daemon-side telemetry.
static REQ_SEQ: AtomicU64 = AtomicU64::new(0);

fn next_req() -> u64 {
    REQ_SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Selection threshold τ for the served [`SpecDb`].
    pub tau: f64,
    /// Corpus re-scan period in milliseconds.
    pub poll_ms: u64,
    /// Quiet period (milliseconds) a change burst must survive before a
    /// re-learn starts; rounded up to whole scans.
    pub debounce_ms: u64,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Per-frame byte cap (see [`MAX_FRAME_BYTES`]).
    pub max_frame_bytes: usize,
    /// Pipeline knobs shared with the batch CLI (engine, shard size, …).
    pub pipeline: PipelineOptions,
    /// Artifact store directory: the daemon's incremental memory. Without
    /// it every re-learn is a cold run.
    pub cache_dir: Option<PathBuf>,
    /// Run-ledger directory; every learned generation appends an entry.
    pub ledger_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            tau: 0.6,
            poll_ms: 50,
            debounce_ms: 100,
            workers: 4,
            max_frame_bytes: MAX_FRAME_BYTES,
            pipeline: PipelineOptions::default(),
            cache_dir: None,
            ledger_dir: None,
        }
    }
}

/// One immutable learned state, shared with readers via `Arc`.
#[derive(Debug)]
pub struct Generation {
    /// 1-based generation counter; bumps on every re-learn.
    pub gen: u64,
    /// Corpus files the generation was learned from.
    pub files: usize,
    /// τ the served [`SpecDb`] was selected at.
    pub tau: f64,
    /// All scored candidates.
    pub learned: LearnedSpecs,
    /// Evidence index restricted to scored candidates (the same
    /// restriction `uspec learn --out` applies before saving).
    pub provenance: ProvenanceIndex,
    /// The closed specification database at `tau`.
    pub specs: SpecDb,
    /// Hex corpus fingerprint — changes exactly when the analyzed corpus
    /// does, so clients can await freshness.
    pub corpus_fp: String,
    /// The run report of the learn that produced this generation.
    pub report: RunReport,
}

/// Where the server listens.
pub enum Listener {
    /// A Unix-domain socket (the default transport).
    Unix(UnixListener),
    /// A TCP socket (opt-in, for cross-host use).
    Tcp(TcpListener),
}

impl Listener {
    /// Binds a Unix socket at `path`, replacing a stale socket file.
    pub fn bind_unix(path: &Path) -> std::io::Result<Listener> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// Binds a TCP listener (e.g. `127.0.0.1:0`).
    pub fn bind_tcp(addr: &str) -> std::io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }
}

enum Accepted {
    Unix(UnixStream),
    Tcp(TcpStream),
}

struct Shared {
    table: ApiTable,
    opts: ServeOptions,
    corpus_dir: PathBuf,
    current: RwLock<Arc<Generation>>,
    shutdown: AtomicBool,
    /// Uptime origin: the monotone clock all sliding windows and
    /// staleness math share.
    started: Instant,
    /// `now_ms() + 1` at the first corpus edit not yet reflected in the
    /// served generation; 0 when fresh (the `+ 1` keeps 0 unambiguous
    /// for an edit landing in the very first millisecond). Written by
    /// the watcher, cleared by the learner after a generation swap.
    dirty_since_ms: AtomicU64,
}

impl Shared {
    fn generation(&self) -> Arc<Generation> {
        self.current.read().expect("generation lock").clone()
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Milliseconds since server start.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// How long the served generation has lagged the corpus: 0 when
    /// fresh, else milliseconds since the oldest unserved edit was
    /// *observed* (a scan notices an edit up to one poll period after
    /// the write, so this under-reports by at most `poll_ms`).
    fn staleness_ms(&self) -> u64 {
        match self.dirty_since_ms.load(Ordering::Relaxed) {
            0 => 0,
            since => self.now_ms().saturating_sub(since - 1),
        }
    }

    /// Records the onset of staleness; later edits while already dirty
    /// keep the oldest onset (staleness measures the worst-served edit).
    fn mark_dirty(&self) {
        let _ = self.dirty_since_ms.compare_exchange(
            0,
            self.now_ms() + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    fn mark_fresh(&self) {
        self.dirty_since_ms.store(0, Ordering::Relaxed);
    }
}

/// A running serve daemon. Dropping without [`Server::join`] detaches the
/// threads; the usual lifecycle is `start` → (work) → `shutdown` → `join`.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    socket_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Learns the initial generation synchronously (so a returned server
    /// is immediately answerable), then starts the accept, worker,
    /// watcher and learner threads.
    pub fn start(
        corpus_dir: &Path,
        library: &Library,
        opts: ServeOptions,
        listener: Listener,
    ) -> std::io::Result<Server> {
        let store = match &opts.cache_dir {
            Some(dir) => Some(ArtifactStore::open(dir)?),
            None => None,
        };
        let (socket_path, tcp_addr) = match &listener {
            Listener::Unix(l) => (
                l.local_addr()
                    .ok()
                    .and_then(|a| a.as_pathname().map(Path::to_path_buf)),
                None,
            ),
            Listener::Tcp(l) => (None, l.local_addr().ok()),
        };

        intern_serve_metrics();
        let shared = Arc::new(Shared {
            table: library.api_table(),
            opts,
            corpus_dir: corpus_dir.to_path_buf(),
            // Placeholder, replaced before any thread can observe it.
            current: RwLock::new(Arc::new(empty_generation())),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            dirty_since_ms: AtomicU64::new(0),
        });
        let first = learn_generation(&shared, store.as_ref(), 1)?;
        log_info!(
            "serve: generation 1 ready ({} files, {} specs at τ = {})",
            first.files,
            first.specs.len(),
            first.tau
        );
        gauge!("serve.generation").record_max(1);
        *shared.current.write().expect("generation lock") = Arc::new(first);

        let mut threads = Vec::new();
        let (conn_tx, conn_rx) = mpsc::channel::<Accepted>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let (dirty_tx, dirty_rx) = mpsc::channel::<Vec<PathBuf>>();

        threads.push(spawn_accept(shared.clone(), listener, conn_tx));
        for _ in 0..shared.opts.workers.max(1) {
            threads.push(spawn_worker(shared.clone(), conn_rx.clone()));
        }
        threads.push(spawn_watcher(shared.clone(), dirty_tx));
        threads.push(spawn_learner(shared.clone(), store, dirty_rx));

        Ok(Server {
            shared,
            threads,
            socket_path,
            tcp_addr,
        })
    }

    /// The bound TCP address, when listening on TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path, when listening on a Unix socket.
    pub fn socket_path(&self) -> Option<&Path> {
        self.socket_path.as_deref()
    }

    /// The current generation snapshot.
    pub fn generation(&self) -> Arc<Generation> {
        self.shared.generation()
    }

    /// Whether a shutdown (flag or `shutdown` request) is in progress.
    pub fn shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Requests shutdown; threads drain within one poll tick.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// The latest generation's report with its timing sections refreshed
    /// over the server's uptime so far — a *live* snapshot; the
    /// authoritative exit report is what [`Server::join`] returns, taken
    /// after every worker has finished recording.
    pub fn final_report(&self) -> RunReport {
        let gen = self.generation();
        let mut report = gen.report.clone();
        report.timings = uspec::timings_section(self.shared.started.elapsed().as_secs_f64());
        report
    }

    /// Milliseconds the daemon has been up.
    pub fn uptime_ms(&self) -> u64 {
        self.shared.now_ms()
    }

    /// How long the served generation has lagged the corpus (0 = fresh).
    pub fn staleness_ms(&self) -> u64 {
        self.shared.staleness_ms()
    }

    /// Feeds `sentinel` one live observation — the recent `serve.all`
    /// window plus current staleness — and returns any breach onsets
    /// (already logged). Also keeps the `serve.staleness_ms` gauge at
    /// the worst staleness seen, so the exit report records the run's
    /// maximum lag even without a policy armed.
    pub fn observe_slo(&self, sentinel: &mut SloSentinel) -> Vec<String> {
        let staleness = self.shared.staleness_ms();
        gauge!("serve.staleness_ms").record_max(staleness);
        let win = window!("serve.all").snapshot(self.shared.now_ms());
        let onsets = sentinel.observe(&win, staleness);
        for onset in &onsets {
            log_warn!("serve: SLO breach: {onset}");
        }
        onsets
    }

    /// Renders the whole telemetry plane in the Prometheus text
    /// exposition format: dotted registry names become `uspec_*` with
    /// dots mapped to underscores; counter families (`*_total`, plus
    /// histogram/window `_count`/`_sum`/`_requests_total`) are monotone,
    /// windowed latency figures are gauges. `tools/check_metrics.rs`
    /// validates syntax and monotonicity across two scrapes.
    pub fn prometheus_text(&self) -> String {
        let snap = uspec_telemetry::metrics::global().snapshot();
        let mut out = String::with_capacity(8192);
        for (name, v) in &snap.counters {
            let name = format!("uspec_{}_total", prom_sanitize(name));
            prom_family(&mut out, &name, "counter", &[(None, *v)]);
        }
        for (name, v) in &snap.gauges {
            let name = format!("uspec_{}", prom_sanitize(name));
            prom_family(&mut out, &name, "gauge", &[(None, *v)]);
        }
        prom_family(
            &mut out,
            "uspec_serve_staleness_ms_live",
            "gauge",
            &[(None, self.shared.staleness_ms())],
        );
        for (name, h) in &snap.histograms {
            let base = format!("uspec_{}", prom_sanitize(name));
            prom_family(
                &mut out,
                &format!("{base}_count"),
                "counter",
                &[(None, h.count)],
            );
            prom_family(
                &mut out,
                &format!("{base}_sum"),
                "counter",
                &[(None, h.sum)],
            );
            prom_family(&mut out, &format!("{base}_p50"), "gauge", &[(None, h.p50)]);
            prom_family(&mut out, &format!("{base}_p95"), "gauge", &[(None, h.p95)]);
            prom_family(&mut out, &format!("{base}_p99"), "gauge", &[(None, h.p99)]);
        }
        let windows: Vec<(String, WindowSnapshot)> = window::global()
            .snapshot(self.shared.now_ms())
            .into_iter()
            .filter_map(|(name, w)| {
                let stream = name.strip_prefix(WINDOW_STREAM_PREFIX)?;
                Some((format!("stream=\"{stream}\""), w))
            })
            .collect();
        if !windows.is_empty() {
            let rows = |f: fn(&WindowSnapshot) -> u64| -> Vec<(Option<String>, u64)> {
                windows
                    .iter()
                    .map(|(l, w)| (Some(l.clone()), f(w)))
                    .collect()
            };
            let fam = [
                (
                    "uspec_serve_window_requests_total",
                    "counter",
                    rows(|w| w.total_requests),
                ),
                (
                    "uspec_serve_window_errors_total",
                    "counter",
                    rows(|w| w.total_errors),
                ),
                (
                    "uspec_serve_window_recent_requests",
                    "gauge",
                    rows(|w| w.requests),
                ),
                (
                    "uspec_serve_window_recent_errors",
                    "gauge",
                    rows(|w| w.errors),
                ),
                ("uspec_serve_window_p50_ns", "gauge", rows(|w| w.p50_ns)),
                ("uspec_serve_window_p95_ns", "gauge", rows(|w| w.p95_ns)),
                ("uspec_serve_window_p99_ns", "gauge", rows(|w| w.p99_ns)),
            ];
            for (name, kind, rows) in &fam {
                prom_family(&mut out, name, kind, rows);
            }
        }
        out
    }

    /// Signals shutdown (if not already signalled), joins every thread,
    /// removes the Unix socket file, and returns the exit report: the
    /// last generation's report with timing sections re-snapshotted over
    /// the whole uptime *after* all workers finished recording, so its
    /// `serve` windows are consistent with its `serve` counters. When a
    /// ledger is configured the exit report is appended too, giving
    /// `uspec perf check` one entry covering the run's full traffic.
    pub fn join(mut self) -> RunReport {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
        let generation = self.shared.generation();
        let mut report = generation.report.clone();
        report.timings = uspec::timings_section(self.shared.started.elapsed().as_secs_f64());
        append_ledger(&self.shared, &report, &generation.corpus_fp);
        report
    }
}

/// Prometheus metric-name spelling of a dotted registry name.
fn prom_sanitize(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

/// One exposition family: a `# TYPE` line, then one sample per row
/// (rows carry an optional `key="value"` label set).
fn prom_family(out: &mut String, name: &str, kind: &str, rows: &[(Option<String>, u64)]) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for (labels, v) in rows {
        match labels {
            Some(l) => {
                let _ = writeln!(out, "{name}{{{l}}} {v}");
            }
            None => {
                let _ = writeln!(out, "{name} {v}");
            }
        }
    }
}

/// Live service-level objectives for the daemon, usually parsed from the
/// `[serve]` table of `perf-budgets.toml`. `None` disarms that check.
#[derive(Clone, Copy, Debug, Default)]
pub struct SloPolicy {
    /// Ceiling on the windowed p99 request latency, milliseconds.
    pub p99_ms_max: Option<f64>,
    /// Ceiling on the windowed error fraction (errors / requests).
    pub error_rate_max: Option<f64>,
    /// Ceiling on generation staleness, milliseconds.
    pub staleness_ms_max: Option<f64>,
}

impl SloPolicy {
    /// Whether any objective is armed.
    pub fn is_armed(&self) -> bool {
        self.p99_ms_max.is_some()
            || self.error_rate_max.is_some()
            || self.staleness_ms_max.is_some()
    }
}

/// Edge-triggered SLO watchdog: each objective increments
/// `serve.slo.breach` (and its per-kind counter) once per breach
/// *onset*, not once per observation, so exit-report breach counts read
/// as "how many times did we go out of budget", not "for how long".
pub struct SloSentinel {
    policy: SloPolicy,
    p99: bool,
    error_rate: bool,
    staleness: bool,
}

impl SloSentinel {
    /// A sentinel with every objective currently in budget.
    pub fn new(policy: SloPolicy) -> SloSentinel {
        SloSentinel {
            policy,
            p99: false,
            error_rate: false,
            staleness: false,
        }
    }

    /// Checks one observation — a recent-window snapshot plus the
    /// current staleness — against the policy and returns a description
    /// per breach onset. Latency and error objectives only fire when the
    /// window saw traffic: an idle daemon is in budget, not out of it.
    pub fn observe(&mut self, win: &WindowSnapshot, staleness_ms: u64) -> Vec<String> {
        let mut onsets = Vec::new();
        if let Some(max) = self.policy.p99_ms_max {
            let p99_ms = win.p99_ns as f64 / 1e6;
            let breached = win.requests > 0 && p99_ms > max;
            if breached && !self.p99 {
                counter!("serve.slo.breach").inc();
                counter!("serve.slo.p99").inc();
                onsets.push(format!(
                    "windowed p99 {p99_ms:.3} ms exceeds the {max} ms budget"
                ));
            }
            self.p99 = breached;
        }
        if let Some(max) = self.policy.error_rate_max {
            let rate = if win.requests > 0 {
                win.errors as f64 / win.requests as f64
            } else {
                0.0
            };
            let breached = rate > max;
            if breached && !self.error_rate {
                counter!("serve.slo.breach").inc();
                counter!("serve.slo.error_rate").inc();
                onsets.push(format!(
                    "windowed error rate {rate:.4} exceeds the {max} budget"
                ));
            }
            self.error_rate = breached;
        }
        if let Some(max) = self.policy.staleness_ms_max {
            let breached = staleness_ms as f64 > max;
            if breached && !self.staleness {
                counter!("serve.slo.breach").inc();
                counter!("serve.slo.staleness").inc();
                onsets.push(format!(
                    "generation staleness {staleness_ms} ms exceeds the {max} ms budget"
                ));
            }
            self.staleness = breached;
        }
        onsets
    }
}

fn empty_generation() -> Generation {
    Generation {
        gen: 0,
        files: 0,
        tau: 0.0,
        learned: LearnedSpecs::default(),
        provenance: ProvenanceIndex::default(),
        specs: SpecDb::empty(),
        corpus_fp: String::new(),
        report: RunReport::new("serve", "worklist"),
    }
}

/// Reads one corpus file, tolerating the snapshot/read race: a path that
/// vanishes between a directory listing (or watcher scan) and this read
/// is counted (`serve.read_races`) and skipped with `None` — the next
/// scan observes the deletion and converges on a clean re-learn of the
/// remaining corpus. Any other I/O failure still fails the learn.
fn read_source(path: &Path) -> std::io::Result<Option<String>> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            counter!("serve.read_races").inc();
            log_warn!("serve: {} vanished during learn, skipped", path.display());
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// Recursively collects `*.u` files under `root`, sorted (the same corpus
/// order the batch CLI uses). Files or directories deleted mid-walk are
/// skipped (see [`read_source`]), never an error.
fn collect_sources(root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "u") {
            if let Some(text) = read_source(root)? {
                out.push((root.display().to_string(), text));
            }
        }
        return Ok(());
    }
    let entries = match std::fs::read_dir(root) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            counter!("serve.read_races").inc();
            log_warn!("serve: {} vanished during learn, skipped", root.display());
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        collect_sources(&p, out)?;
    }
    Ok(())
}

/// Runs the cached pipeline over the corpus directory and packages the
/// outcome as generation `gen_no`, appending a ledger entry when
/// configured. Warm store + unchanged file ⇒ that file's jobs replay from
/// the memo; only edited cones execute.
fn learn_generation(
    shared: &Shared,
    store: Option<&ArtifactStore>,
    gen_no: u64,
) -> std::io::Result<Generation> {
    let start = Instant::now();
    let _span = span!("serve.learn");
    let mut sources = Vec::new();
    collect_sources(&shared.corpus_dir, &mut sources)?;
    let result = run_pipeline_cached(
        &SliceSource::new(&sources),
        &shared.table,
        &shared.opts.pipeline,
        store,
    );
    let report = build_run_report(
        "serve",
        &result,
        &shared.opts.pipeline,
        shared.opts.tau,
        start.elapsed().as_secs_f64(),
    );
    let corpus_fp = result.corpus_fingerprint.hex();
    append_ledger(shared, &report, &corpus_fp);
    // The same provenance restriction `uspec learn --out` applies: explain
    // answers must match the batch CLI byte for byte.
    let mut provenance = result.provenance;
    provenance.retain_specs(|s| result.learned.get(s).is_some());
    Ok(Generation {
        gen: gen_no,
        files: sources.len(),
        tau: shared.opts.tau,
        specs: result.learned.select(shared.opts.tau),
        learned: result.learned,
        provenance,
        corpus_fp,
        report,
    })
}

fn append_ledger(shared: &Shared, report: &RunReport, corpus_fp: &str) {
    let Some(dir) = &shared.opts.ledger_dir else {
        return;
    };
    let entry = uspec_telemetry::ledger::LedgerEntry::from_report(
        report,
        uspec_telemetry::ledger::envelope(corpus_fp),
    );
    let appended = serde_json::to_string_pretty(&entry)
        .map_err(std::io::Error::other)
        .and_then(|json| uspec_store::LedgerDir::open(dir)?.append(&json));
    match appended {
        Ok(id) => log_info!("serve: ledger entry {id} appended to {}", dir.display()),
        Err(e) => log_warn!("serve: ledger append failed: {e}"),
    }
}

fn spawn_accept(
    shared: Arc<Shared>,
    listener: Listener,
    conn_tx: mpsc::Sender<Accepted>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        match &listener {
            Listener::Unix(l) => l.set_nonblocking(true).ok(),
            Listener::Tcp(l) => l.set_nonblocking(true).ok(),
        };
        while !shared.shutting_down() {
            let accepted = match &listener {
                Listener::Unix(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_read_timeout(Some(POLL_TICK));
                    Accepted::Unix(s)
                }),
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_read_timeout(Some(POLL_TICK));
                    Accepted::Tcp(s)
                }),
            };
            match accepted {
                Ok(conn) => {
                    counter!("serve.connections").inc();
                    if conn_tx.send(conn).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    log_warn!("serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    })
}

fn spawn_worker(
    shared: Arc<Shared>,
    conn_rx: Arc<Mutex<mpsc::Receiver<Accepted>>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        let conn = {
            let rx = conn_rx.lock().expect("connection queue lock");
            match rx.recv_timeout(POLL_TICK) {
                Ok(c) => c,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if shared.shutting_down() {
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        // A connection failing mid-conversation (disconnect during a
        // write, a broken pipe) ends that connection, never the worker.
        let result = match conn {
            Accepted::Unix(s) => s.try_clone().and_then(|r| serve_stream(&shared, r, s)),
            Accepted::Tcp(s) => s.try_clone().and_then(|r| serve_stream(&shared, r, s)),
        };
        if let Err(e) = result {
            counter!("serve.io_errors").inc();
            log_warn!("serve: connection error: {e}");
        }
    })
}

fn spawn_watcher(shared: Arc<Shared>, dirty_tx: mpsc::Sender<Vec<PathBuf>>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let poll = Duration::from_millis(shared.opts.poll_ms.max(1));
        let quiet_scans = shared.opts.debounce_ms.div_ceil(shared.opts.poll_ms.max(1)) as u32;
        let mut debouncer = Debouncer::new(quiet_scans.max(1));
        let mut snapshot = watcher::scan(&shared.corpus_dir);
        while !shared.shutting_down() {
            // Sleep the poll period in shutdown-checkable slices — a long
            // poll interval must not delay a join by the whole interval.
            let mut slept = Duration::ZERO;
            while slept < poll && !shared.shutting_down() {
                let slice = POLL_TICK.min(poll - slept);
                std::thread::sleep(slice);
                slept += slice;
            }
            if shared.shutting_down() {
                return;
            }
            let next = watcher::scan(&shared.corpus_dir);
            counter!("serve.watch.scans").inc();
            let changed = watcher::diff(&snapshot, &next);
            snapshot = next;
            if !changed.is_empty() {
                counter!("serve.watch.dirty_files").add(changed.len() as u64);
                shared.mark_dirty();
            }
            if let Some(batch) = debouncer.observe(changed) {
                log_info!("serve: {} corpus path(s) changed, re-learning", batch.len());
                if dirty_tx.send(batch).is_err() {
                    return;
                }
            }
        }
    })
}

fn spawn_learner(
    shared: Arc<Shared>,
    store: Option<ArtifactStore>,
    dirty_rx: mpsc::Receiver<Vec<PathBuf>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut gen_no = 1u64;
        // Job count of the cold start: the denominator of the
        // executed-fraction gauge (how much of the full corpus cone an
        // edit re-executed, in permille).
        let cold_jobs = counter!("jobs.executed").get().max(1);
        loop {
            let mut batch = match dirty_rx.recv_timeout(POLL_TICK) {
                Ok(b) => b,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if shared.shutting_down() {
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            };
            // Coalesce any batches that queued while a learn was running.
            while let Ok(more) = dirty_rx.try_recv() {
                batch.extend(more);
            }
            if shared.shutting_down() {
                return;
            }
            gen_no += 1;
            counter!("serve.relearns").inc();
            let jobs_before = counter!("jobs.executed").get();
            let t0 = Instant::now();
            match learn_generation(&shared, store.as_ref(), gen_no) {
                Ok(generation) => {
                    // Edit→fresh is measured up to the swap: the time a
                    // client could have seen a stale answer.
                    gauge!("serve.relearn.edit_to_fresh_ms").record_max(shared.staleness_ms());
                    gauge!("serve.relearn.last_ns").set(t0.elapsed().as_nanos() as u64);
                    gauge!("serve.relearn.exec_permille")
                        .set((counter!("jobs.executed").get() - jobs_before) * 1000 / cold_jobs);
                    log_info!(
                        "serve: generation {gen_no} ready ({} files, {} specs)",
                        generation.files,
                        generation.specs.len()
                    );
                    gauge!("serve.generation").record_max(gen_no);
                    *shared.current.write().expect("generation lock") = Arc::new(generation);
                    shared.mark_fresh();
                }
                // The previous generation keeps serving; the next quiet
                // batch (or the same files fixed) retries.
                Err(e) => log_warn!("serve: re-learn of generation {gen_no} failed: {e}"),
            }
        }
    })
}

/// Serves one connection: frames in, responses out, batches answered
/// under a single generation snapshot.
fn serve_stream<R: Read, W: Write>(shared: &Shared, read: R, write: W) -> std::io::Result<()> {
    let mut reader = BufReader::new(read);
    let mut writer = BufWriter::new(write);
    let mut frames = FrameReader::new(shared.opts.max_frame_bytes);
    loop {
        if shared.shutting_down() {
            return Ok(());
        }
        let first = match frames.next(&mut reader)? {
            FrameEvent::Timeout => continue,
            FrameEvent::Eof => return Ok(()),
            ev => ev,
        };
        // One snapshot per batch: every frame already buffered (a
        // pipelining client) is answered against the same generation.
        let _span = span!("serve.batch");
        let generation = shared.generation();
        counter!("serve.batches").inc();
        let mut ev = first;
        loop {
            let quit = handle_frame(shared, &generation, &frames, ev, &mut writer)?;
            if quit {
                writer.flush()?;
                return Ok(());
            }
            if !reader.buffer().contains(&b'\n') {
                break;
            }
            ev = match frames.next(&mut reader)? {
                FrameEvent::Eof => break,
                FrameEvent::Timeout => break,
                e => e,
            };
        }
        writer.flush()?;
    }
}

/// What [`dispatch`] hands back for one frame.
struct Answered {
    /// The full response line (newline included).
    response: String,
    /// Whether the connection should close (a granted `shutdown`).
    quit: bool,
    /// Whether the answer was a success envelope.
    ok: bool,
    /// The latency-window stream the request belongs to — the method
    /// name, or `other` for frames that never resolved to a method.
    stream: &'static str,
}

/// Interns every serve-owned metric up front so snapshot and exposition
/// key sets are stable from the first request: a name appears (with
/// value 0) before its first event instead of materializing mid-run,
/// which is what lets `metrics.snapshot` promise byte-stable key sets.
fn intern_serve_metrics() {
    for stream in [
        "all",
        "spec.lookup",
        "alias.may",
        "explain",
        "analyze.snippet",
        "status",
        "metrics.snapshot",
        "shutdown",
        "other",
    ] {
        let _ = stream_window(stream);
    }
    let counters = [
        "serve.requests",
        "serve.rejected",
        "serve.errors",
        "serve.batches",
        "serve.connections",
        "serve.relearns",
        "serve.read_races",
        "serve.io_errors",
        "serve.watch.scans",
        "serve.watch.dirty_files",
        "serve.method.spec.lookup",
        "serve.method.alias.may",
        "serve.method.explain",
        "serve.method.analyze.snippet",
        "serve.method.status",
        "serve.method.metrics.snapshot",
        "serve.method.shutdown",
        "serve.slo.breach",
        "serve.slo.p99",
        "serve.slo.error_rate",
        "serve.slo.staleness",
    ];
    for name in counters {
        let _ = uspec_telemetry::metrics::global().counter(name);
    }
    let gauges = [
        "serve.generation",
        "serve.staleness_ms",
        "serve.relearn.last_ns",
        "serve.relearn.edit_to_fresh_ms",
        "serve.relearn.exec_permille",
    ];
    for name in gauges {
        let _ = uspec_telemetry::metrics::global().gauge(name);
    }
    let _ = uspec_telemetry::metrics::global().histogram("serve.request_ns");
}

/// The sliding window of one request stream. Streams are a closed set
/// (the method set plus `all`/`other`), so a match over literals is the
/// whole registry and every handle is interned once.
fn stream_window(stream: &str) -> &'static SlidingWindow {
    match stream {
        "all" => window!("serve.all"),
        "spec.lookup" => window!("serve.spec.lookup"),
        "alias.may" => window!("serve.alias.may"),
        "explain" => window!("serve.explain"),
        "analyze.snippet" => window!("serve.analyze.snippet"),
        "status" => window!("serve.status"),
        "metrics.snapshot" => window!("serve.metrics.snapshot"),
        "shutdown" => window!("serve.shutdown"),
        _ => window!("serve.other"),
    }
}

/// Answers one frame: stamps the `req` sequence number, dispatches,
/// records latency/outcome into the `serve.all` and per-method windows
/// plus the slow-query log, and writes the response. Returns whether the
/// connection should close (the frame was a granted `shutdown`).
fn handle_frame(
    shared: &Shared,
    generation: &Generation,
    frames: &FrameReader,
    ev: FrameEvent,
    writer: &mut impl Write,
) -> std::io::Result<bool> {
    counter!("serve.requests").inc();
    let _span = span!("serve.request");
    let t0 = Instant::now();
    let req = next_req();
    let request_bytes = frames.frame().len() as u64;
    let answered = match ev {
        FrameEvent::Oversized => {
            counter!("serve.rejected").inc();
            counter!("serve.errors").inc();
            Answered {
                response: err_response(
                    None,
                    req,
                    generation.gen,
                    ErrorCode::Oversized,
                    &format!(
                        "frame exceeds the {} byte cap and was discarded",
                        shared.opts.max_frame_bytes
                    ),
                ),
                quit: false,
                ok: false,
                stream: "other",
            }
        }
        _ => {
            let line = String::from_utf8_lossy(frames.frame());
            match parse_request(&line) {
                Err((id, code, message)) => {
                    counter!("serve.rejected").inc();
                    counter!("serve.errors").inc();
                    Answered {
                        response: err_response(id, req, generation.gen, code, &message),
                        quit: false,
                        ok: false,
                        stream: "other",
                    }
                }
                Ok(request) => dispatch(shared, generation, &request, req),
            }
        }
    };
    let latency_ns = t0.elapsed().as_nanos() as u64;
    histogram!("serve.request_ns").record(latency_ns);
    let now_ms = shared.now_ms();
    stream_window("all").record(now_ms, latency_ns, !answered.ok);
    stream_window(answered.stream).record(now_ms, latency_ns, !answered.ok);
    window::slow_log().record(SlowQuery {
        method: answered.stream.to_owned(),
        latency_ns,
        gen: generation.gen,
        request_bytes,
        response_bytes: answered.response.len() as u64,
    });
    writer.write_all(answered.response.as_bytes())?;
    Ok(answered.quit)
}

/// Routes a parsed request to its method handler and wraps the outcome.
fn dispatch(shared: &Shared, generation: &Generation, request: &Request, req: u64) -> Answered {
    // Per-method counters are literals because the registry interns
    // `&'static str` names; the method set is closed, so a match is the
    // whole registry.
    let routed = match request.method.as_str() {
        "spec.lookup" => Some((counter!("serve.method.spec.lookup"), "spec.lookup")),
        "alias.may" => Some((counter!("serve.method.alias.may"), "alias.may")),
        "explain" => Some((counter!("serve.method.explain"), "explain")),
        "analyze.snippet" => Some((counter!("serve.method.analyze.snippet"), "analyze.snippet")),
        "status" => Some((counter!("serve.method.status"), "status")),
        "metrics.snapshot" => Some((
            counter!("serve.method.metrics.snapshot"),
            "metrics.snapshot",
        )),
        "shutdown" => Some((counter!("serve.method.shutdown"), "shutdown")),
        _ => None,
    };
    let Some((counted, stream)) = routed else {
        counter!("serve.rejected").inc();
        counter!("serve.errors").inc();
        return Answered {
            response: err_response(
                request.id,
                req,
                generation.gen,
                ErrorCode::Method,
                &format!(
                    "unknown method `{}` (expected spec.lookup, alias.may, explain, \
                     analyze.snippet, status, metrics.snapshot, or shutdown)",
                    request.method
                ),
            ),
            quit: false,
            ok: false,
            stream: "other",
        };
    };
    counted.inc();
    let mut quit = false;
    let outcome = match request.method.as_str() {
        "spec.lookup" => spec_lookup(generation, &request.params),
        "alias.may" => alias_may(generation, &request.params),
        "explain" => explain(generation, &request.params),
        "analyze.snippet" => analyze_snippet(shared, generation, &request.params),
        "status" => status(shared, generation),
        "metrics.snapshot" => Ok(metrics_snapshot_json(shared, generation)),
        _ => {
            // shutdown: acknowledge, then wind the whole server down.
            shared.shutdown.store(true, Ordering::SeqCst);
            quit = true;
            Ok("\"shutting down\"".to_owned())
        }
    };
    match outcome {
        Ok(result) => Answered {
            response: ok_response(request.id, req, generation.gen, &result),
            quit,
            ok: true,
            stream,
        },
        Err((code, message)) => {
            counter!("serve.errors").inc();
            Answered {
                response: err_response(request.id, req, generation.gen, code, &message),
                quit: false,
                ok: false,
                stream,
            }
        }
    }
}

type MethodResult = Result<String, (ErrorCode, String)>;

fn internal(e: impl std::fmt::Display) -> (ErrorCode, String) {
    (ErrorCode::Internal, e.to_string())
}

fn opt_str<'a>(params: &'a Json, key: &str) -> Result<Option<&'a str>, (ErrorCode, String)> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s)),
        Some(_) => Err((ErrorCode::Params, format!("`{key}` must be a string"))),
    }
}

fn need_str<'a>(params: &'a Json, key: &str) -> Result<&'a str, (ErrorCode, String)> {
    opt_str(params, key)?.ok_or_else(|| (ErrorCode::Params, format!("`{key}` is required")))
}

fn opt_f64(params: &Json, key: &str) -> Result<Option<f64>, (ErrorCode, String)> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err((ErrorCode::Params, format!("`{key}` must be a number"))),
    }
}

/// Parses `class.method/arity` (the [`MethodId::qualified`] rendering).
fn parse_method(s: &str) -> Result<MethodId, (ErrorCode, String)> {
    let bad = || {
        (
            ErrorCode::Params,
            format!("`{s}` is not a method id (expected class.method/arity, e.g. java.util.HashMap.get/1)"),
        )
    };
    let (path, arity) = s.rsplit_once('/').ok_or_else(bad)?;
    let arity: u8 = arity.parse().map_err(|_| bad())?;
    let (class, method) = path.rsplit_once('.').ok_or_else(bad)?;
    if class.is_empty() || method.is_empty() {
        return Err(bad());
    }
    Ok(MethodId::new(class, method, arity))
}

/// One row of a `spec.lookup` answer.
#[derive(Serialize)]
struct LookupRow {
    spec: String,
    score: f64,
    matches: u64,
}

fn spec_lookup(generation: &Generation, params: &Json) -> MethodResult {
    let query = opt_str(params, "query")?;
    let tau = opt_f64(params, "tau")?.unwrap_or(generation.tau);
    let rows: Vec<LookupRow> = generation
        .learned
        .selected(tau)
        .filter(|s| query.is_none_or(|q| s.spec.to_string().contains(q)))
        .map(|s| LookupRow {
            spec: s.spec.to_string(),
            score: s.score,
            matches: s.matches as u64,
        })
        .collect();
    serde_json::to_string(&rows).map_err(internal)
}

/// An `alias.may` answer: the specs linking the two methods' returns.
#[derive(Serialize)]
struct AliasAnswer {
    a: String,
    b: String,
    may_alias: bool,
    via: Vec<String>,
}

fn alias_may(generation: &Generation, params: &Json) -> MethodResult {
    let a = parse_method(need_str(params, "a")?)?;
    let b = parse_method(need_str(params, "b")?)?;
    let reselected;
    let db = match opt_f64(params, "tau")? {
        Some(tau) => {
            reselected = generation.learned.select(tau);
            &reselected
        }
        None => &generation.specs,
    };
    let via: Vec<String> = db
        .iter()
        .filter(|spec| match spec {
            Spec::RetSame { method } | Spec::RetRecv { method } => a == b && *method == a,
            Spec::RetArg { target, source, .. } => {
                (*target == a && *source == b) || (*target == b && *source == a)
            }
        })
        .map(|spec| spec.to_string())
        .collect();
    let answer = AliasAnswer {
        a: a.qualified(),
        b: b.qualified(),
        may_alias: !via.is_empty(),
        via,
    };
    serde_json::to_string(&answer).map_err(internal)
}

fn explain(generation: &Generation, params: &Json) -> MethodResult {
    let query = opt_str(params, "query")?;
    let entries = uspec::explain_entries(&generation.learned, &generation.provenance, query);
    serde_json::to_string(&entries).map_err(internal)
}

/// Per-function answer of `analyze.snippet`.
#[derive(Serialize)]
struct SnippetBody {
    func: String,
    converged: bool,
    baseline_pairs: u64,
    added_pairs: Vec<(String, String)>,
    typestate_violations: Option<u64>,
    taint_findings: Option<u64>,
    leaks: Option<u64>,
}

/// Splits a comma list into interned symbols (empty segments dropped).
fn symbols(list: &str) -> Vec<Symbol> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(Symbol::intern)
        .collect()
}

fn analyze_snippet(shared: &Shared, generation: &Generation, params: &Json) -> MethodResult {
    let source = need_str(params, "source")?;
    let typestate = opt_str(params, "typestate")?
        .map(|ts| {
            ts.split_once(':')
                .map(|(guard, action)| TypestateProtocol {
                    guard: Symbol::intern(guard),
                    action: Symbol::intern(action),
                })
                .ok_or((ErrorCode::Params, "`typestate` expects guard:action".into()))
        })
        .transpose()?;
    let taint = opt_str(params, "taint")?
        .map(|t| match t.split(':').collect::<Vec<_>>()[..] {
            [sources, sinks, sanitizers] => Ok(TaintConfig {
                sources: symbols(sources),
                sinks: symbols(sinks),
                sanitizers: symbols(sanitizers),
            }),
            _ => Err((
                ErrorCode::Params,
                "`taint` expects sources:sinks:sanitizers".into(),
            )),
        })
        .transpose()?;
    let leaks_config = opt_str(params, "leaks")?
        .map(|l| {
            l.split_once(':')
                .map(|(opens, closes)| LeakConfig {
                    opens: symbols(opens),
                    closes: symbols(closes),
                })
                .ok_or((ErrorCode::Params, "`leaks` expects opens:closes".into()))
        })
        .transpose()?;

    let program = parse(source).map_err(|e| (ErrorCode::Params, e.render(source)))?;
    let bodies = lower_program(&program, &shared.table, &shared.opts.pipeline.lower)
        .map_err(|e| (ErrorCode::Params, e.render(source)))?;

    let pairs = |pta: &Pta| -> Vec<(String, String)> {
        let recs: Vec<_> = pta.call_records().collect();
        let mut out = Vec::new();
        for i in 0..recs.len() {
            for j in (i + 1)..recs.len() {
                if Pta::may_alias(&recs[i].ret, &recs[j].ret) {
                    out.push((recs[i].method.qualified(), recs[j].method.qualified()));
                }
            }
        }
        out
    };

    let mut answer = Vec::new();
    for body in &bodies {
        let base = Pta::run(body, &SpecDb::empty(), &shared.opts.pipeline.pta);
        let aug = Pta::run(body, &generation.specs, &shared.opts.pipeline.pta);
        let base_pairs = pairs(&base);
        let added_pairs: Vec<_> = pairs(&aug)
            .into_iter()
            .filter(|p| !base_pairs.contains(p))
            .collect();
        answer.push(SnippetBody {
            func: body.func.to_string(),
            converged: aug.stats.converged,
            baseline_pairs: base_pairs.len() as u64,
            added_pairs,
            typestate_violations: typestate
                .as_ref()
                .map(|p| check_typestate(body, &aug, p).len() as u64),
            taint_findings: taint.as_ref().map(|c| check_taint(&aug, c).len() as u64),
            leaks: leaks_config
                .as_ref()
                .map(|c| check_leaks(body, &aug, c).len() as u64),
        });
    }
    serde_json::to_string(&answer).map_err(internal)
}

/// A `status` answer.
#[derive(Serialize)]
struct StatusAnswer {
    gen: u64,
    files: u64,
    candidates: u64,
    specs: u64,
    tau: f64,
    corpus_fp: String,
    relearns: u64,
    requests: u64,
    watch_scans: u64,
    staleness_ms: u64,
    window_requests: u64,
    window_errors: u64,
    window_p50_ns: u64,
    window_p95_ns: u64,
    window_p99_ns: u64,
    last_relearn_ns: u64,
}

fn status(shared: &Shared, generation: &Generation) -> MethodResult {
    let snap = uspec_telemetry::metrics::global().snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let win = stream_window("all").snapshot(shared.now_ms());
    let answer = StatusAnswer {
        gen: generation.gen,
        files: generation.files as u64,
        candidates: generation.learned.len() as u64,
        specs: generation.specs.len() as u64,
        tau: generation.tau,
        corpus_fp: generation.corpus_fp.clone(),
        relearns: get("serve.relearns"),
        requests: get("serve.requests"),
        watch_scans: get("serve.watch.scans"),
        staleness_ms: shared.staleness_ms(),
        window_requests: win.requests,
        window_errors: win.errors,
        window_p50_ns: win.p50_ns,
        window_p95_ns: win.p95_ns,
        window_p99_ns: win.p99_ns,
        last_relearn_ns: snap
            .gauges
            .get("serve.relearn.last_ns")
            .copied()
            .unwrap_or(0),
    };
    serde_json::to_string(&answer).map_err(internal)
}

/// Serializes the whole telemetry plane as one byte-stable JSON object:
/// fixed top-level key order (`schema`, `gen`, `uptime_ms`,
/// `staleness_ms`, `counters`, `gauges`, `histograms`, `windows`,
/// `slow`, `slo`), registry-sorted dynamic keys, hand-built like the
/// envelope (see [`crate::json`]). Two idle snapshots differ only in
/// timing-derived digits, which `tests/serve_protocol.rs` pins.
fn metrics_snapshot_json(shared: &Shared, generation: &Generation) -> String {
    use std::fmt::Write as _;
    let snap = uspec_telemetry::metrics::global().snapshot();
    let now_ms = shared.now_ms();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"schema\":1,\"gen\":{},\"uptime_ms\":{now_ms},\"staleness_ms\":{}",
        generation.gen,
        shared.staleness_ms()
    );
    out.push_str(",\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{v}", json::escape(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{v}", json::escape(name));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            json::escape(name),
            h.count,
            h.sum,
            h.p50,
            h.p95,
            h.p99
        );
    }
    out.push_str("},\"windows\":{");
    let mut first = true;
    for (name, w) in window::global().snapshot(now_ms) {
        let Some(stream) = name.strip_prefix(WINDOW_STREAM_PREFIX) else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{}:{{\"window_seconds\":{},\"requests\":{},\"errors\":{},\"mean_ns\":{},\
             \"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"total_requests\":{},\
             \"total_errors\":{},\"total_p50_ns\":{},\"total_p95_ns\":{},\"total_p99_ns\":{}}}",
            json::escape(stream),
            w.window_seconds,
            w.requests,
            w.errors,
            w.mean_ns,
            w.p50_ns,
            w.p95_ns,
            w.p99_ns,
            w.total_requests,
            w.total_errors,
            w.total_p50_ns,
            w.total_p95_ns,
            w.total_p99_ns
        );
    }
    out.push_str("},\"slow\":[");
    for (i, q) in window::slow_log().snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"method\":{},\"latency_ns\":{},\"gen\":{},\"request_bytes\":{},\
             \"response_bytes\":{}}}",
            json::escape(&q.method),
            q.latency_ns,
            q.gen,
            q.request_bytes,
            q.response_bytes
        );
    }
    let _ = write!(
        out,
        "],\"slo\":{{\"breaches\":{},\"p99_breaches\":{},\"error_rate_breaches\":{},\
         \"staleness_breaches\":{},\"max_staleness_ms\":{}}}}}",
        get("serve.slo.breach"),
        get("serve.slo.p99"),
        get("serve.slo.error_rate"),
        get("serve.slo.staleness"),
        snap.gauges.get("serve.staleness_ms").copied().unwrap_or(0)
    );
    out
}

/// Connects to a Unix socket, sends `lines` as one pipelined batch, and
/// returns one response line per request. The one-shot client behind
/// `uspec serve --send` and the test harnesses. No timeout: blocks for
/// as long as the daemon takes (or forever if it is wedged).
pub fn roundtrip_unix(path: &Path, lines: &[&str]) -> std::io::Result<Vec<String>> {
    roundtrip_unix_timeout(path, lines, None)
}

/// [`roundtrip_unix`] with a deadline on every connect/read/write: a
/// daemon that stops answering yields a typed `TimedOut` error instead
/// of hanging the client.
pub fn roundtrip_unix_timeout(
    path: &Path,
    lines: &[&str],
    timeout: Option<Duration>,
) -> std::io::Result<Vec<String>> {
    let stream = UnixStream::connect(path)?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    roundtrip(stream, lines)
}

/// [`roundtrip_unix`] over TCP.
pub fn roundtrip_tcp(addr: &str, lines: &[&str]) -> std::io::Result<Vec<String>> {
    roundtrip_tcp_timeout(addr, lines, None)
}

/// [`roundtrip_unix_timeout`] over TCP (the deadline also bounds the
/// connect itself).
pub fn roundtrip_tcp_timeout(
    addr: &str,
    lines: &[&str],
    timeout: Option<Duration>,
) -> std::io::Result<Vec<String>> {
    let stream = match timeout {
        Some(t) => {
            let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("`{addr}` resolves to no address"),
                )
            })?;
            TcpStream::connect_timeout(&sock, t)?
        }
        None => TcpStream::connect(addr)?,
    };
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    roundtrip(stream, lines)
}

fn roundtrip<S: Read + Write>(mut stream: S, lines: &[&str]) -> std::io::Result<Vec<String>> {
    let mut batch = String::new();
    for line in lines {
        batch.push_str(line);
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for _ in 0..lines.len() {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed before answering every request",
                ))
            }
            Ok(_) => {}
            // A timed-out socket read surfaces as WouldBlock on Unix
            // sockets; normalize both spellings to one typed error.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "timed out waiting for a response (daemon busy, wedged, or gone)",
                ))
            }
            Err(e) => return Err(e),
        }
        responses.push(line.trim_end().to_owned());
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_source_skips_vanished_paths() {
        let missing = Path::new("/nonexistent/uspec-race/gone.u");
        assert_eq!(read_source(missing).unwrap(), None);
    }

    #[test]
    fn collect_sources_tolerates_a_vanished_root() {
        let mut out = Vec::new();
        collect_sources(Path::new("/nonexistent/uspec-race-dir"), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn slo_sentinel_fires_on_onsets_only() {
        let mut s = SloSentinel::new(SloPolicy {
            p99_ms_max: Some(5.0),
            error_rate_max: Some(0.5),
            staleness_ms_max: Some(1000.0),
        });
        let mut win = WindowSnapshot {
            requests: 10,
            p99_ns: 50_000_000,
            ..WindowSnapshot::default()
        };
        // Onset: one p99 breach reported.
        assert_eq!(s.observe(&win, 0).len(), 1);
        // Still breached: no new onset.
        assert!(s.observe(&win, 0).is_empty());
        // Recovered, then breached again: a second onset.
        win.p99_ns = 1_000_000;
        assert!(s.observe(&win, 0).is_empty());
        win.p99_ns = 50_000_000;
        assert_eq!(s.observe(&win, 0).len(), 1);
        // An idle window is in budget even while the breach flag decays.
        win.requests = 0;
        assert!(s.observe(&win, 0).is_empty());
        // Error-rate and staleness breaches are independent onsets.
        win.requests = 10;
        win.errors = 9;
        win.p99_ns = 0;
        assert_eq!(s.observe(&win, 2000).len(), 2);
    }

    #[test]
    fn unarmed_policy_never_breaches() {
        let policy = SloPolicy::default();
        assert!(!policy.is_armed());
        let mut s = SloSentinel::new(policy);
        let win = WindowSnapshot {
            requests: 10,
            errors: 10,
            p99_ns: u64::MAX,
            ..WindowSnapshot::default()
        };
        assert!(s.observe(&win, u64::MAX).is_empty());
    }

    #[test]
    fn prom_families_render_names_labels_and_samples() {
        assert_eq!(
            prom_sanitize("serve.watch.dirty_files"),
            "serve_watch_dirty_files"
        );
        let mut out = String::new();
        prom_family(&mut out, "uspec_x_total", "counter", &[(None, 3)]);
        prom_family(
            &mut out,
            "uspec_w",
            "gauge",
            &[(Some("stream=\"all\"".to_owned()), 7)],
        );
        assert_eq!(
            out,
            "# TYPE uspec_x_total counter\nuspec_x_total 3\n\
             # TYPE uspec_w gauge\nuspec_w{stream=\"all\"} 7\n"
        );
    }
}
