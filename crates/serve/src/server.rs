//! The resident spec-query server.
//!
//! One process owns the learned result and keeps it fresh:
//!
//! * an **accept thread** hands client connections to a bounded worker
//!   pool over a channel;
//! * **worker threads** answer newline-JSON requests against a
//!   generation-stamped `Arc<Generation>` snapshot — a whole pipelined
//!   batch of requests is answered under *one* snapshot, so a client
//!   never sees two generations interleaved within a batch;
//! * a **watcher thread** polls the corpus directory
//!   ([`crate::watcher`]) and emits debounced dirty batches;
//! * a **learner thread** re-runs the cached pipeline on each batch and
//!   swaps the new generation in. Re-learning reuses the artifact store
//!   and job memos, so an edit re-executes only the edited files' job
//!   cones — readers keep answering from the old `Arc` the whole time
//!   and never block.
//!
//! Every learned generation appends a run-ledger entry (when a ledger
//! directory is configured), and all traffic feeds the `serve.*`
//! counters that the run report's `serve` section snapshots.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::Serialize;
use uspec::{build_run_report, run_pipeline_cached, PipelineOptions};
use uspec_clients::{
    check_leaks, check_taint, check_typestate, LeakConfig, TaintConfig, TypestateProtocol,
};
use uspec_corpus::{Library, SliceSource};
use uspec_lang::{lower_program, parse, ApiTable, MethodId, Symbol};
use uspec_learn::{LearnedSpecs, ProvenanceIndex};
use uspec_pta::{Pta, Spec, SpecDb};
use uspec_store::ArtifactStore;
use uspec_telemetry::{counter, gauge, histogram, log_info, log_warn, span, RunReport};

use crate::json::Json;
use crate::protocol::{
    err_response, ok_response, parse_request, ErrorCode, FrameEvent, FrameReader, Request,
    MAX_FRAME_BYTES,
};
use crate::watcher::{self, Debouncer};

/// How often blocked socket reads and channel waits wake up to check the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Selection threshold τ for the served [`SpecDb`].
    pub tau: f64,
    /// Corpus re-scan period in milliseconds.
    pub poll_ms: u64,
    /// Quiet period (milliseconds) a change burst must survive before a
    /// re-learn starts; rounded up to whole scans.
    pub debounce_ms: u64,
    /// Worker threads answering requests.
    pub workers: usize,
    /// Per-frame byte cap (see [`MAX_FRAME_BYTES`]).
    pub max_frame_bytes: usize,
    /// Pipeline knobs shared with the batch CLI (engine, shard size, …).
    pub pipeline: PipelineOptions,
    /// Artifact store directory: the daemon's incremental memory. Without
    /// it every re-learn is a cold run.
    pub cache_dir: Option<PathBuf>,
    /// Run-ledger directory; every learned generation appends an entry.
    pub ledger_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            tau: 0.6,
            poll_ms: 50,
            debounce_ms: 100,
            workers: 4,
            max_frame_bytes: MAX_FRAME_BYTES,
            pipeline: PipelineOptions::default(),
            cache_dir: None,
            ledger_dir: None,
        }
    }
}

/// One immutable learned state, shared with readers via `Arc`.
#[derive(Debug)]
pub struct Generation {
    /// 1-based generation counter; bumps on every re-learn.
    pub gen: u64,
    /// Corpus files the generation was learned from.
    pub files: usize,
    /// τ the served [`SpecDb`] was selected at.
    pub tau: f64,
    /// All scored candidates.
    pub learned: LearnedSpecs,
    /// Evidence index restricted to scored candidates (the same
    /// restriction `uspec learn --out` applies before saving).
    pub provenance: ProvenanceIndex,
    /// The closed specification database at `tau`.
    pub specs: SpecDb,
    /// Hex corpus fingerprint — changes exactly when the analyzed corpus
    /// does, so clients can await freshness.
    pub corpus_fp: String,
    /// The run report of the learn that produced this generation.
    pub report: RunReport,
}

/// Where the server listens.
pub enum Listener {
    /// A Unix-domain socket (the default transport).
    Unix(UnixListener),
    /// A TCP socket (opt-in, for cross-host use).
    Tcp(TcpListener),
}

impl Listener {
    /// Binds a Unix socket at `path`, replacing a stale socket file.
    pub fn bind_unix(path: &Path) -> std::io::Result<Listener> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        Ok(Listener::Unix(UnixListener::bind(path)?))
    }

    /// Binds a TCP listener (e.g. `127.0.0.1:0`).
    pub fn bind_tcp(addr: &str) -> std::io::Result<Listener> {
        Ok(Listener::Tcp(TcpListener::bind(addr)?))
    }
}

enum Accepted {
    Unix(UnixStream),
    Tcp(TcpStream),
}

struct Shared {
    table: ApiTable,
    opts: ServeOptions,
    corpus_dir: PathBuf,
    current: RwLock<Arc<Generation>>,
    shutdown: AtomicBool,
}

impl Shared {
    fn generation(&self) -> Arc<Generation> {
        self.current.read().expect("generation lock").clone()
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running serve daemon. Dropping without [`Server::join`] detaches the
/// threads; the usual lifecycle is `start` → (work) → `shutdown` → `join`.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    socket_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
    started: Instant,
}

impl Server {
    /// Learns the initial generation synchronously (so a returned server
    /// is immediately answerable), then starts the accept, worker,
    /// watcher and learner threads.
    pub fn start(
        corpus_dir: &Path,
        library: &Library,
        opts: ServeOptions,
        listener: Listener,
    ) -> std::io::Result<Server> {
        let store = match &opts.cache_dir {
            Some(dir) => Some(ArtifactStore::open(dir)?),
            None => None,
        };
        let (socket_path, tcp_addr) = match &listener {
            Listener::Unix(l) => (
                l.local_addr()
                    .ok()
                    .and_then(|a| a.as_pathname().map(Path::to_path_buf)),
                None,
            ),
            Listener::Tcp(l) => (None, l.local_addr().ok()),
        };

        let shared = Arc::new(Shared {
            table: library.api_table(),
            opts,
            corpus_dir: corpus_dir.to_path_buf(),
            // Placeholder, replaced before any thread can observe it.
            current: RwLock::new(Arc::new(empty_generation())),
            shutdown: AtomicBool::new(false),
        });
        let first = learn_generation(&shared, store.as_ref(), 1)?;
        log_info!(
            "serve: generation 1 ready ({} files, {} specs at τ = {})",
            first.files,
            first.specs.len(),
            first.tau
        );
        gauge!("serve.generation").record_max(1);
        *shared.current.write().expect("generation lock") = Arc::new(first);

        let mut threads = Vec::new();
        let (conn_tx, conn_rx) = mpsc::channel::<Accepted>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let (dirty_tx, dirty_rx) = mpsc::channel::<Vec<PathBuf>>();

        threads.push(spawn_accept(shared.clone(), listener, conn_tx));
        for _ in 0..shared.opts.workers.max(1) {
            threads.push(spawn_worker(shared.clone(), conn_rx.clone()));
        }
        threads.push(spawn_watcher(shared.clone(), dirty_tx));
        threads.push(spawn_learner(shared.clone(), store, dirty_rx));

        Ok(Server {
            shared,
            threads,
            socket_path,
            tcp_addr,
            started: Instant::now(),
        })
    }

    /// The bound TCP address, when listening on TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path, when listening on a Unix socket.
    pub fn socket_path(&self) -> Option<&Path> {
        self.socket_path.as_deref()
    }

    /// The current generation snapshot.
    pub fn generation(&self) -> Arc<Generation> {
        self.shared.generation()
    }

    /// Whether a shutdown (flag or `shutdown` request) is in progress.
    pub fn shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Requests shutdown; threads drain within one poll tick.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// The latest generation's report with its timing sections refreshed
    /// over the server's whole uptime — what `--metrics-out` serializes at
    /// exit, carrying the final `serve` traffic section.
    pub fn final_report(&self) -> RunReport {
        let gen = self.generation();
        let mut report = gen.report.clone();
        report.timings = uspec::timings_section(self.started.elapsed().as_secs_f64());
        report
    }

    /// Signals shutdown (if not already signalled), joins every thread,
    /// and removes the Unix socket file.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn empty_generation() -> Generation {
    Generation {
        gen: 0,
        files: 0,
        tau: 0.0,
        learned: LearnedSpecs::default(),
        provenance: ProvenanceIndex::default(),
        specs: SpecDb::empty(),
        corpus_fp: String::new(),
        report: RunReport::new("serve", "worklist"),
    }
}

/// Recursively collects `*.u` files under `root`, sorted (the same corpus
/// order the batch CLI uses).
fn collect_sources(root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "u") {
            out.push((root.display().to_string(), std::fs::read_to_string(root)?));
        }
        return Ok(());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    for p in paths {
        collect_sources(&p, out)?;
    }
    Ok(())
}

/// Runs the cached pipeline over the corpus directory and packages the
/// outcome as generation `gen_no`, appending a ledger entry when
/// configured. Warm store + unchanged file ⇒ that file's jobs replay from
/// the memo; only edited cones execute.
fn learn_generation(
    shared: &Shared,
    store: Option<&ArtifactStore>,
    gen_no: u64,
) -> std::io::Result<Generation> {
    let start = Instant::now();
    let _span = span!("serve.learn");
    let mut sources = Vec::new();
    collect_sources(&shared.corpus_dir, &mut sources)?;
    let result = run_pipeline_cached(
        &SliceSource::new(&sources),
        &shared.table,
        &shared.opts.pipeline,
        store,
    );
    let report = build_run_report(
        "serve",
        &result,
        &shared.opts.pipeline,
        shared.opts.tau,
        start.elapsed().as_secs_f64(),
    );
    let corpus_fp = result.corpus_fingerprint.hex();
    append_ledger(shared, &report, &corpus_fp);
    // The same provenance restriction `uspec learn --out` applies: explain
    // answers must match the batch CLI byte for byte.
    let mut provenance = result.provenance;
    provenance.retain_specs(|s| result.learned.get(s).is_some());
    Ok(Generation {
        gen: gen_no,
        files: sources.len(),
        tau: shared.opts.tau,
        specs: result.learned.select(shared.opts.tau),
        learned: result.learned,
        provenance,
        corpus_fp,
        report,
    })
}

fn append_ledger(shared: &Shared, report: &RunReport, corpus_fp: &str) {
    let Some(dir) = &shared.opts.ledger_dir else {
        return;
    };
    let entry = uspec_telemetry::ledger::LedgerEntry::from_report(
        report,
        uspec_telemetry::ledger::envelope(corpus_fp),
    );
    let appended = serde_json::to_string_pretty(&entry)
        .map_err(std::io::Error::other)
        .and_then(|json| uspec_store::LedgerDir::open(dir)?.append(&json));
    match appended {
        Ok(id) => log_info!("serve: ledger entry {id} appended to {}", dir.display()),
        Err(e) => log_warn!("serve: ledger append failed: {e}"),
    }
}

fn spawn_accept(
    shared: Arc<Shared>,
    listener: Listener,
    conn_tx: mpsc::Sender<Accepted>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        match &listener {
            Listener::Unix(l) => l.set_nonblocking(true).ok(),
            Listener::Tcp(l) => l.set_nonblocking(true).ok(),
        };
        while !shared.shutting_down() {
            let accepted = match &listener {
                Listener::Unix(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_read_timeout(Some(POLL_TICK));
                    Accepted::Unix(s)
                }),
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_read_timeout(Some(POLL_TICK));
                    Accepted::Tcp(s)
                }),
            };
            match accepted {
                Ok(conn) => {
                    counter!("serve.connections").inc();
                    if conn_tx.send(conn).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    log_warn!("serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    })
}

fn spawn_worker(
    shared: Arc<Shared>,
    conn_rx: Arc<Mutex<mpsc::Receiver<Accepted>>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        let conn = {
            let rx = conn_rx.lock().expect("connection queue lock");
            match rx.recv_timeout(POLL_TICK) {
                Ok(c) => c,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if shared.shutting_down() {
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        // A connection failing mid-conversation (disconnect during a
        // write, a broken pipe) ends that connection, never the worker.
        let result = match conn {
            Accepted::Unix(s) => s.try_clone().and_then(|r| serve_stream(&shared, r, s)),
            Accepted::Tcp(s) => s.try_clone().and_then(|r| serve_stream(&shared, r, s)),
        };
        if let Err(e) = result {
            counter!("serve.io_errors").inc();
            log_warn!("serve: connection error: {e}");
        }
    })
}

fn spawn_watcher(shared: Arc<Shared>, dirty_tx: mpsc::Sender<Vec<PathBuf>>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let poll = Duration::from_millis(shared.opts.poll_ms.max(1));
        let quiet_scans = shared.opts.debounce_ms.div_ceil(shared.opts.poll_ms.max(1)) as u32;
        let mut debouncer = Debouncer::new(quiet_scans.max(1));
        let mut snapshot = watcher::scan(&shared.corpus_dir);
        while !shared.shutting_down() {
            // Sleep the poll period in shutdown-checkable slices — a long
            // poll interval must not delay a join by the whole interval.
            let mut slept = Duration::ZERO;
            while slept < poll && !shared.shutting_down() {
                let slice = POLL_TICK.min(poll - slept);
                std::thread::sleep(slice);
                slept += slice;
            }
            if shared.shutting_down() {
                return;
            }
            let next = watcher::scan(&shared.corpus_dir);
            counter!("serve.watch.scans").inc();
            let changed = watcher::diff(&snapshot, &next);
            snapshot = next;
            if !changed.is_empty() {
                counter!("serve.watch.dirty_files").add(changed.len() as u64);
            }
            if let Some(batch) = debouncer.observe(changed) {
                log_info!("serve: {} corpus path(s) changed, re-learning", batch.len());
                if dirty_tx.send(batch).is_err() {
                    return;
                }
            }
        }
    })
}

fn spawn_learner(
    shared: Arc<Shared>,
    store: Option<ArtifactStore>,
    dirty_rx: mpsc::Receiver<Vec<PathBuf>>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut gen_no = 1u64;
        loop {
            let mut batch = match dirty_rx.recv_timeout(POLL_TICK) {
                Ok(b) => b,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if shared.shutting_down() {
                        return;
                    }
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => return,
            };
            // Coalesce any batches that queued while a learn was running.
            while let Ok(more) = dirty_rx.try_recv() {
                batch.extend(more);
            }
            if shared.shutting_down() {
                return;
            }
            gen_no += 1;
            counter!("serve.relearns").inc();
            match learn_generation(&shared, store.as_ref(), gen_no) {
                Ok(generation) => {
                    log_info!(
                        "serve: generation {gen_no} ready ({} files, {} specs)",
                        generation.files,
                        generation.specs.len()
                    );
                    gauge!("serve.generation").record_max(gen_no);
                    *shared.current.write().expect("generation lock") = Arc::new(generation);
                }
                // The previous generation keeps serving; the next quiet
                // batch (or the same files fixed) retries.
                Err(e) => log_warn!("serve: re-learn of generation {gen_no} failed: {e}"),
            }
        }
    })
}

/// Serves one connection: frames in, responses out, batches answered
/// under a single generation snapshot.
fn serve_stream<R: Read, W: Write>(shared: &Shared, read: R, write: W) -> std::io::Result<()> {
    let mut reader = BufReader::new(read);
    let mut writer = BufWriter::new(write);
    let mut frames = FrameReader::new(shared.opts.max_frame_bytes);
    loop {
        if shared.shutting_down() {
            return Ok(());
        }
        let first = match frames.next(&mut reader)? {
            FrameEvent::Timeout => continue,
            FrameEvent::Eof => return Ok(()),
            ev => ev,
        };
        // One snapshot per batch: every frame already buffered (a
        // pipelining client) is answered against the same generation.
        let _span = span!("serve.batch");
        let generation = shared.generation();
        counter!("serve.batches").inc();
        let mut ev = first;
        loop {
            let quit = handle_frame(shared, &generation, &frames, ev, &mut writer)?;
            if quit {
                writer.flush()?;
                return Ok(());
            }
            if !reader.buffer().contains(&b'\n') {
                break;
            }
            ev = match frames.next(&mut reader)? {
                FrameEvent::Eof => break,
                FrameEvent::Timeout => break,
                e => e,
            };
        }
        writer.flush()?;
    }
}

/// Answers one frame. Returns whether the connection should close (the
/// frame was a granted `shutdown`).
fn handle_frame(
    shared: &Shared,
    generation: &Generation,
    frames: &FrameReader,
    ev: FrameEvent,
    writer: &mut impl Write,
) -> std::io::Result<bool> {
    counter!("serve.requests").inc();
    let t0 = Instant::now();
    let (response, quit) = match ev {
        FrameEvent::Oversized => {
            counter!("serve.rejected").inc();
            counter!("serve.errors").inc();
            (
                err_response(
                    None,
                    generation.gen,
                    ErrorCode::Oversized,
                    &format!(
                        "frame exceeds the {} byte cap and was discarded",
                        shared.opts.max_frame_bytes
                    ),
                ),
                false,
            )
        }
        _ => {
            let line = String::from_utf8_lossy(frames.frame());
            match parse_request(&line) {
                Err((id, code, message)) => {
                    counter!("serve.rejected").inc();
                    counter!("serve.errors").inc();
                    (err_response(id, generation.gen, code, &message), false)
                }
                Ok(request) => dispatch(shared, generation, &request),
            }
        }
    };
    histogram!("serve.request_ns").record(t0.elapsed().as_nanos() as u64);
    writer.write_all(response.as_bytes())?;
    Ok(quit)
}

/// Routes a parsed request to its method handler and wraps the outcome.
fn dispatch(shared: &Shared, generation: &Generation, request: &Request) -> (String, bool) {
    // Per-method counters are literals because the registry interns
    // `&'static str` names; the method set is closed, so a match is the
    // whole registry.
    let counted = match request.method.as_str() {
        "spec.lookup" => Some(counter!("serve.method.spec.lookup")),
        "alias.may" => Some(counter!("serve.method.alias.may")),
        "explain" => Some(counter!("serve.method.explain")),
        "analyze.snippet" => Some(counter!("serve.method.analyze.snippet")),
        "status" => Some(counter!("serve.method.status")),
        "shutdown" => Some(counter!("serve.method.shutdown")),
        _ => None,
    };
    let Some(counted) = counted else {
        counter!("serve.rejected").inc();
        counter!("serve.errors").inc();
        return (
            err_response(
                request.id,
                generation.gen,
                ErrorCode::Method,
                &format!(
                    "unknown method `{}` (expected spec.lookup, alias.may, explain, \
                     analyze.snippet, status, or shutdown)",
                    request.method
                ),
            ),
            false,
        );
    };
    counted.inc();
    let mut quit = false;
    let outcome = match request.method.as_str() {
        "spec.lookup" => spec_lookup(generation, &request.params),
        "alias.may" => alias_may(generation, &request.params),
        "explain" => explain(generation, &request.params),
        "analyze.snippet" => analyze_snippet(shared, generation, &request.params),
        "status" => status(generation),
        _ => {
            // shutdown: acknowledge, then wind the whole server down.
            shared.shutdown.store(true, Ordering::SeqCst);
            quit = true;
            Ok("\"shutting down\"".to_owned())
        }
    };
    match outcome {
        Ok(result) => (ok_response(request.id, generation.gen, &result), quit),
        Err((code, message)) => {
            counter!("serve.errors").inc();
            (
                err_response(request.id, generation.gen, code, &message),
                false,
            )
        }
    }
}

type MethodResult = Result<String, (ErrorCode, String)>;

fn internal(e: impl std::fmt::Display) -> (ErrorCode, String) {
    (ErrorCode::Internal, e.to_string())
}

fn opt_str<'a>(params: &'a Json, key: &str) -> Result<Option<&'a str>, (ErrorCode, String)> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s)),
        Some(_) => Err((ErrorCode::Params, format!("`{key}` must be a string"))),
    }
}

fn need_str<'a>(params: &'a Json, key: &str) -> Result<&'a str, (ErrorCode, String)> {
    opt_str(params, key)?.ok_or_else(|| (ErrorCode::Params, format!("`{key}` is required")))
}

fn opt_f64(params: &Json, key: &str) -> Result<Option<f64>, (ErrorCode, String)> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err((ErrorCode::Params, format!("`{key}` must be a number"))),
    }
}

/// Parses `class.method/arity` (the [`MethodId::qualified`] rendering).
fn parse_method(s: &str) -> Result<MethodId, (ErrorCode, String)> {
    let bad = || {
        (
            ErrorCode::Params,
            format!("`{s}` is not a method id (expected class.method/arity, e.g. java.util.HashMap.get/1)"),
        )
    };
    let (path, arity) = s.rsplit_once('/').ok_or_else(bad)?;
    let arity: u8 = arity.parse().map_err(|_| bad())?;
    let (class, method) = path.rsplit_once('.').ok_or_else(bad)?;
    if class.is_empty() || method.is_empty() {
        return Err(bad());
    }
    Ok(MethodId::new(class, method, arity))
}

/// One row of a `spec.lookup` answer.
#[derive(Serialize)]
struct LookupRow {
    spec: String,
    score: f64,
    matches: u64,
}

fn spec_lookup(generation: &Generation, params: &Json) -> MethodResult {
    let query = opt_str(params, "query")?;
    let tau = opt_f64(params, "tau")?.unwrap_or(generation.tau);
    let rows: Vec<LookupRow> = generation
        .learned
        .selected(tau)
        .filter(|s| query.is_none_or(|q| s.spec.to_string().contains(q)))
        .map(|s| LookupRow {
            spec: s.spec.to_string(),
            score: s.score,
            matches: s.matches as u64,
        })
        .collect();
    serde_json::to_string(&rows).map_err(internal)
}

/// An `alias.may` answer: the specs linking the two methods' returns.
#[derive(Serialize)]
struct AliasAnswer {
    a: String,
    b: String,
    may_alias: bool,
    via: Vec<String>,
}

fn alias_may(generation: &Generation, params: &Json) -> MethodResult {
    let a = parse_method(need_str(params, "a")?)?;
    let b = parse_method(need_str(params, "b")?)?;
    let reselected;
    let db = match opt_f64(params, "tau")? {
        Some(tau) => {
            reselected = generation.learned.select(tau);
            &reselected
        }
        None => &generation.specs,
    };
    let via: Vec<String> = db
        .iter()
        .filter(|spec| match spec {
            Spec::RetSame { method } | Spec::RetRecv { method } => a == b && *method == a,
            Spec::RetArg { target, source, .. } => {
                (*target == a && *source == b) || (*target == b && *source == a)
            }
        })
        .map(|spec| spec.to_string())
        .collect();
    let answer = AliasAnswer {
        a: a.qualified(),
        b: b.qualified(),
        may_alias: !via.is_empty(),
        via,
    };
    serde_json::to_string(&answer).map_err(internal)
}

fn explain(generation: &Generation, params: &Json) -> MethodResult {
    let query = opt_str(params, "query")?;
    let entries = uspec::explain_entries(&generation.learned, &generation.provenance, query);
    serde_json::to_string(&entries).map_err(internal)
}

/// Per-function answer of `analyze.snippet`.
#[derive(Serialize)]
struct SnippetBody {
    func: String,
    converged: bool,
    baseline_pairs: u64,
    added_pairs: Vec<(String, String)>,
    typestate_violations: Option<u64>,
    taint_findings: Option<u64>,
    leaks: Option<u64>,
}

/// Splits a comma list into interned symbols (empty segments dropped).
fn symbols(list: &str) -> Vec<Symbol> {
    list.split(',')
        .filter(|s| !s.is_empty())
        .map(Symbol::intern)
        .collect()
}

fn analyze_snippet(shared: &Shared, generation: &Generation, params: &Json) -> MethodResult {
    let source = need_str(params, "source")?;
    let typestate = opt_str(params, "typestate")?
        .map(|ts| {
            ts.split_once(':')
                .map(|(guard, action)| TypestateProtocol {
                    guard: Symbol::intern(guard),
                    action: Symbol::intern(action),
                })
                .ok_or((ErrorCode::Params, "`typestate` expects guard:action".into()))
        })
        .transpose()?;
    let taint = opt_str(params, "taint")?
        .map(|t| match t.split(':').collect::<Vec<_>>()[..] {
            [sources, sinks, sanitizers] => Ok(TaintConfig {
                sources: symbols(sources),
                sinks: symbols(sinks),
                sanitizers: symbols(sanitizers),
            }),
            _ => Err((
                ErrorCode::Params,
                "`taint` expects sources:sinks:sanitizers".into(),
            )),
        })
        .transpose()?;
    let leaks_config = opt_str(params, "leaks")?
        .map(|l| {
            l.split_once(':')
                .map(|(opens, closes)| LeakConfig {
                    opens: symbols(opens),
                    closes: symbols(closes),
                })
                .ok_or((ErrorCode::Params, "`leaks` expects opens:closes".into()))
        })
        .transpose()?;

    let program = parse(source).map_err(|e| (ErrorCode::Params, e.render(source)))?;
    let bodies = lower_program(&program, &shared.table, &shared.opts.pipeline.lower)
        .map_err(|e| (ErrorCode::Params, e.render(source)))?;

    let pairs = |pta: &Pta| -> Vec<(String, String)> {
        let recs: Vec<_> = pta.call_records().collect();
        let mut out = Vec::new();
        for i in 0..recs.len() {
            for j in (i + 1)..recs.len() {
                if Pta::may_alias(&recs[i].ret, &recs[j].ret) {
                    out.push((recs[i].method.qualified(), recs[j].method.qualified()));
                }
            }
        }
        out
    };

    let mut answer = Vec::new();
    for body in &bodies {
        let base = Pta::run(body, &SpecDb::empty(), &shared.opts.pipeline.pta);
        let aug = Pta::run(body, &generation.specs, &shared.opts.pipeline.pta);
        let base_pairs = pairs(&base);
        let added_pairs: Vec<_> = pairs(&aug)
            .into_iter()
            .filter(|p| !base_pairs.contains(p))
            .collect();
        answer.push(SnippetBody {
            func: body.func.to_string(),
            converged: aug.stats.converged,
            baseline_pairs: base_pairs.len() as u64,
            added_pairs,
            typestate_violations: typestate
                .as_ref()
                .map(|p| check_typestate(body, &aug, p).len() as u64),
            taint_findings: taint.as_ref().map(|c| check_taint(&aug, c).len() as u64),
            leaks: leaks_config
                .as_ref()
                .map(|c| check_leaks(body, &aug, c).len() as u64),
        });
    }
    serde_json::to_string(&answer).map_err(internal)
}

/// A `status` answer.
#[derive(Serialize)]
struct StatusAnswer {
    gen: u64,
    files: u64,
    candidates: u64,
    specs: u64,
    tau: f64,
    corpus_fp: String,
    relearns: u64,
    requests: u64,
    watch_scans: u64,
}

fn status(generation: &Generation) -> MethodResult {
    let counters = uspec_telemetry::metrics::global().snapshot().counters;
    let get = |name: &str| counters.get(name).copied().unwrap_or(0);
    let answer = StatusAnswer {
        gen: generation.gen,
        files: generation.files as u64,
        candidates: generation.learned.len() as u64,
        specs: generation.specs.len() as u64,
        tau: generation.tau,
        corpus_fp: generation.corpus_fp.clone(),
        relearns: get("serve.relearns"),
        requests: get("serve.requests"),
        watch_scans: get("serve.watch.scans"),
    };
    serde_json::to_string(&answer).map_err(internal)
}

/// Connects to a Unix socket, sends `lines` as one pipelined batch, and
/// returns one response line per request. The one-shot client behind
/// `uspec serve --send` and the test harnesses.
pub fn roundtrip_unix(path: &Path, lines: &[&str]) -> std::io::Result<Vec<String>> {
    roundtrip(UnixStream::connect(path)?, lines)
}

/// [`roundtrip_unix`] over TCP.
pub fn roundtrip_tcp(addr: &str, lines: &[&str]) -> std::io::Result<Vec<String>> {
    roundtrip(TcpStream::connect(addr)?, lines)
}

fn roundtrip<S: Read + Write>(mut stream: S, lines: &[&str]) -> std::io::Result<Vec<String>> {
    let mut batch = String::new();
    for line in lines {
        batch.push_str(line);
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for _ in 0..lines.len() {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before answering every request",
            ));
        }
        responses.push(line.trim_end().to_owned());
    }
    Ok(responses)
}
