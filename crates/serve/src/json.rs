//! Minimal JSON reader and string writer for the serve protocol.
//!
//! The vendored `serde_json` is a *typed* serializer: it has no dynamic
//! `Value` type, and the derive treats absent fields — even `Option`s —
//! as hard errors. A wire protocol must tolerate requests with optional
//! fields in any order, so incoming frames are parsed with this small
//! recursive-descent reader (the same shape as the one in
//! `tools/check_report.rs`) and responses are assembled by hand around
//! payloads the typed serializer produced. That split keeps payload bytes
//! identical with the batch CLI's output while never trusting the wire.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order is irrelevant to the protocol).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Nesting depth cap: a hostile frame of `[[[[…` must produce a parse
/// error, not exhaust the worker's stack.
const MAX_DEPTH: u32 = 64;

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            // Surrogates degrade to the replacement char
                            // rather than failing the whole frame.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

/// Renders `s` as a quoted JSON string (for hand-built response envelopes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), Json::Str("a\nbA".into()));
        let v = parse(r#"{"id": 3, "params": {"q": ["x", 1]}}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        let q = v.get("params").unwrap().get("q").unwrap();
        assert_eq!(q, &Json::Arr(vec![Json::Str("x".into()), Json::Num(1.0)]));
    }

    #[test]
    fn rejects_malformed_input_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should fail");
        }
        // Hostile nesting hits the depth cap instead of the stack.
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        for s in ["plain", "with \"quotes\"", "line\nbreak\ttab", "π λ \u{1}"] {
            let quoted = escape(s);
            assert_eq!(parse(&quoted).unwrap(), Json::Str(s.into()));
        }
    }
}
