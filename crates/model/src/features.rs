//! Feature extraction for event pairs (§4.1).
//!
//! The feature of a pair `(e1, e2)` is
//! `ftr(e1, e2) = (x1, x2, ctx_{G,2}(e1), ctx_{G,2}(e2), γ(e1, e2))` where
//! `ctx_{G,2}(e)` is the set of paths of length ≤ 2 containing `e` and `γ`
//! captures argument types and guarding control-flow conditions. Every path
//! and γ element is encoded as a hashed token (the sparse VW-style encoding
//! of §7.1); the pair of argument positions `(x1, x2)` selects the
//! per-position logistic regression model ψ(x1, x2).

use uspec_graph::{EventGraph, EventId, Pos};

use crate::hash::TokenHasher;

/// The extracted feature of one event pair.
#[derive(Clone, Debug, PartialEq)]
pub struct PairFeature {
    /// Position code of `e1` (selects ψ together with `x2`).
    pub x1: u8,
    /// Position code of `e2`.
    pub x2: u8,
    /// Hashed sparse tokens for contexts and γ.
    pub tokens: Vec<u64>,
}

/// Computes `ftr(e1, e2)` with *directional* contexts: only the past of
/// `e1` and the future of `e2` contribute length-2 paths (see
/// [`featurize_with`] for the rationale and the full-context variant).
///
/// When `censor` is true, paths containing the *other* event of the pair
/// are removed from each context — the §4.2 training-time censoring. With
/// directional contexts the inner-facing paths are already excluded, so
/// censoring is only observable in the full-context variant; it is kept as
/// an explicit knob for the ablation study.
pub fn featurize(g: &EventGraph, e1: EventId, e2: EventId, censor: bool) -> PairFeature {
    featurize_with(g, e1, e2, censor, false)
}

/// Computes `ftr(e1, e2)`, optionally with full (bidirectional) contexts.
///
/// `full = true` reproduces the naive reading of §4.1 where every length-2
/// path containing an anchor contributes; this makes the model latch onto
/// inner-facing paths that re-encode the transitive closure between the
/// anchors, which §4.2's censoring then has to fight. The default
/// directional variant drops those paths structurally.
pub fn featurize_with(
    g: &EventGraph,
    e1: EventId,
    e2: EventId,
    censor: bool,
    full: bool,
) -> PairFeature {
    featurize_depth(g, e1, e2, censor, full, 2)
}

/// Computes `ftr(e1, e2)` with contexts `ctx_{G,k}` for a chosen `k ≥ 1`
/// (the paper's formalism is parameterized by the maximum path length; its
/// implementation uses `k = 2`). `k = 1` keeps only the anchors' own
/// identities; larger `k` adds grandparent/grandchild path tokens.
pub fn featurize_depth(
    g: &EventGraph,
    e1: EventId,
    e2: EventId,
    censor: bool,
    full: bool,
    k: usize,
) -> PairFeature {
    let ev1 = g.event(e1);
    let ev2 = g.event(e2);
    let mut tokens = Vec::with_capacity(16);

    context_tokens(g, e1, censor.then_some(e2), "L", Dir::In, k, &mut tokens);
    context_tokens(g, e2, censor.then_some(e1), "R", Dir::Out, k, &mut tokens);
    if full {
        context_tokens(g, e1, censor.then_some(e2), "L", Dir::Out, k, &mut tokens);
        context_tokens(g, e2, censor.then_some(e1), "R", Dir::In, k, &mut tokens);
    }
    gamma_tokens(g, e1, e2, &mut tokens);

    // Feature crossing (the VW `-q` style quadratic feature): a linear
    // model over per-event tokens alone cannot express that *this producer*
    // pairs with *this consumer* — the interaction token carries exactly
    // the API-compatibility signal §4.3 relies on.
    let (m1, p1) = event_desc(g, e1);
    let (m2, p2) = event_desc(g, e2);
    tokens.push(
        TokenHasher::new("cross")
            .str(&m1)
            .num(p1 as u64)
            .str(&m2)
            .num(p2 as u64)
            .finish(),
    );

    tokens.sort_unstable();
    tokens.dedup();
    PairFeature {
        x1: ev1.pos.code(),
        x2: ev2.pos.code(),
        tokens,
    }
}

/// One hashed token together with a human-readable description of what it
/// encodes. Produced by [`featurize_labeled`] for provenance explanations.
/// Serializable so cached pair blueprints can carry the labeled tokens of
/// an induced edge for later model application.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LabeledToken {
    /// The hashed token, identical to the one [`featurize_depth`] emits.
    pub token: u64,
    /// Human-readable rendering (e.g. `ctx1 L File.getName/0@0`).
    pub label: String,
}

/// Labeled counterpart of [`PairFeature`].
#[derive(Clone, Debug, PartialEq)]
pub struct LabeledPairFeature {
    /// Position code of `e1`.
    pub x1: u8,
    /// Position code of `e2`.
    pub x2: u8,
    /// Labeled tokens, sorted by token with one label kept per token.
    pub tokens: Vec<LabeledToken>,
}

/// Labeled mirror of [`featurize_depth`]: emits the *same* token set (the
/// guard test `labeled_tokens_match_featurize_depth` pins this) plus a
/// human-readable label per token. This is a cold path used only when
/// explaining a prediction; the hot path stays label-free.
pub fn featurize_labeled(
    g: &EventGraph,
    e1: EventId,
    e2: EventId,
    censor: bool,
    full: bool,
    k: usize,
) -> LabeledPairFeature {
    let ev1 = g.event(e1);
    let ev2 = g.event(e2);
    let mut tokens: Vec<LabeledToken> = Vec::with_capacity(16);

    context_tokens_labeled(g, e1, censor.then_some(e2), "L", Dir::In, k, &mut tokens);
    context_tokens_labeled(g, e2, censor.then_some(e1), "R", Dir::Out, k, &mut tokens);
    if full {
        context_tokens_labeled(g, e1, censor.then_some(e2), "L", Dir::Out, k, &mut tokens);
        context_tokens_labeled(g, e2, censor.then_some(e1), "R", Dir::In, k, &mut tokens);
    }
    gamma_tokens_labeled(g, e1, e2, &mut tokens);

    let (m1, p1) = event_desc(g, e1);
    let (m2, p2) = event_desc(g, e2);
    tokens.push(LabeledToken {
        token: TokenHasher::new("cross")
            .str(&m1)
            .num(p1 as u64)
            .str(&m2)
            .num(p2 as u64)
            .finish(),
        label: format!("cross {m1}@{} x {m2}@{}", pos_label(p1), pos_label(p2)),
    });

    // Same ordering/dedup semantics as `featurize_depth`'s
    // `sort_unstable(); dedup();` on bare tokens: sort by token (label as a
    // deterministic tie-break) and keep one entry per token.
    tokens.sort_by(|a, b| a.token.cmp(&b.token).then_with(|| a.label.cmp(&b.label)));
    tokens.dedup_by(|a, b| a.token == b.token);
    LabeledPairFeature {
        x1: ev1.pos.code(),
        x2: ev2.pos.code(),
        tokens,
    }
}

/// Renders a position code the way [`Pos`] displays (`ret` for 255).
fn pos_label(code: u8) -> String {
    if code == u8::MAX {
        "ret".to_owned()
    } else {
        code.to_string()
    }
}

/// Token describing a single event relative to its anchor role.
fn event_desc(g: &EventGraph, e: EventId) -> (String, u8) {
    let ev = g.event(e);
    let method = g
        .site_info(ev.site)
        .map(|i| i.method.qualified())
        .unwrap_or_else(|| "?".to_owned());
    (method, ev.pos.code())
}

/// Which length-2 paths of `ctx_{G,2}(e)` contribute tokens.
#[derive(Clone, Copy, PartialEq)]
enum Dir {
    /// Incoming paths `(p, e)` — the object's past.
    In,
    /// Outgoing paths `(e, c)` — the object's future.
    Out,
}

/// Emits the hashed encodings of the paths of `ctx_{G,2}(e)` on the given
/// side, censoring paths that contain `exclude`.
///
/// For an ordered pair `(e1, e2)` only the *past* of `e1` and the *future*
/// of `e2` contribute length-2 paths: the inner-facing paths (children of
/// `e1`, parents of `e2`) largely re-encode the transitive closure between
/// the two events, which §4.2's censoring is designed to keep out of the
/// model. Their pair-compatibility content is carried by the cross token
/// instead.
fn context_tokens(
    g: &EventGraph,
    e: EventId,
    exclude: Option<EventId>,
    side: &str,
    dir: Dir,
    k: usize,
    out: &mut Vec<u64>,
) {
    let (m, x) = event_desc(g, e);
    // The length-1 path (e) — the event's own identity.
    out.push(
        TokenHasher::new("ctx1")
            .str(side)
            .str(&m)
            .num(x as u64)
            .finish(),
    );
    if k < 2 {
        return;
    }
    // Paths of length 2..=k walking away from the anchor. A path
    // (p_{n}, ..., p_1, e) (or its outgoing mirror) is encoded by hashing
    // the event descriptions along it.
    let step = |ev: EventId| -> &[EventId] {
        if dir == Dir::In {
            g.parents(ev)
        } else {
            g.children(ev)
        }
    };
    let tag = if dir == Dir::In { "ctxin" } else { "ctxout" };
    // Depth-first enumeration of paths up to length k (k-1 hops).
    let mut stack: Vec<(EventId, usize, TokenHasher)> = Vec::new();
    let base = TokenHasher::new(tag).str(side).num(2).str(&m).num(x as u64);
    for &n in step(e) {
        if Some(n) == exclude {
            continue;
        }
        stack.push((n, 2, base));
    }
    while let Some((ev, len, hash_so_far)) = stack.pop() {
        let (nm, nx) = event_desc(g, ev);
        let h = hash_so_far.str(&nm).num(nx as u64);
        out.push(h.num(len as u64).finish());
        if len < k {
            for &n in step(ev) {
                if Some(n) == exclude {
                    continue;
                }
                stack.push((n, len + 1, h));
            }
        }
    }
}

/// Labeled mirror of [`context_tokens`]; must emit the identical token
/// sequence (hash chains walked in the same order with the same inputs).
fn context_tokens_labeled(
    g: &EventGraph,
    e: EventId,
    exclude: Option<EventId>,
    side: &str,
    dir: Dir,
    k: usize,
    out: &mut Vec<LabeledToken>,
) {
    let (m, x) = event_desc(g, e);
    out.push(LabeledToken {
        token: TokenHasher::new("ctx1")
            .str(side)
            .str(&m)
            .num(x as u64)
            .finish(),
        label: format!("ctx1 {side} {m}@{}", pos_label(x)),
    });
    if k < 2 {
        return;
    }
    let step = |ev: EventId| -> &[EventId] {
        if dir == Dir::In {
            g.parents(ev)
        } else {
            g.children(ev)
        }
    };
    let (tag, arrow) = if dir == Dir::In {
        ("ctxin", "<-")
    } else {
        ("ctxout", "->")
    };
    let mut stack: Vec<(EventId, usize, TokenHasher, String)> = Vec::new();
    let base = TokenHasher::new(tag).str(side).num(2).str(&m).num(x as u64);
    let base_label = format!("{tag} {side} {m}@{}", pos_label(x));
    for &n in step(e) {
        if Some(n) == exclude {
            continue;
        }
        stack.push((n, 2, base, base_label.clone()));
    }
    while let Some((ev, len, hash_so_far, label_so_far)) = stack.pop() {
        let (nm, nx) = event_desc(g, ev);
        let h = hash_so_far.str(&nm).num(nx as u64);
        let label = format!("{label_so_far} {arrow} {nm}@{}", pos_label(nx));
        out.push(LabeledToken {
            token: h.num(len as u64).finish(),
            label: label.clone(),
        });
        if len < k {
            for &n in step(ev) {
                if Some(n) == exclude {
                    continue;
                }
                stack.push((n, len + 1, h, label.clone()));
            }
        }
    }
}

/// Emits the γ(e1, e2) tokens: receiver/argument type tokens of both call
/// sites and their guarding control-flow conditions, including a "shared
/// guard" token when the same condition dominates both sites.
fn gamma_tokens(g: &EventGraph, e1: EventId, e2: EventId, out: &mut Vec<u64>) {
    let s1 = g.event(e1).site;
    let s2 = g.event(e2).site;
    let i1 = g.site_info(s1);
    let i2 = g.site_info(s2);

    for (side, info) in [("L", i1), ("R", i2)] {
        let Some(info) = info else { continue };
        for (i, t) in info.type_tokens.iter().enumerate() {
            out.push(
                TokenHasher::new("ty")
                    .str(side)
                    .num(i as u64)
                    .str(t.as_str())
                    .finish(),
            );
        }
        for gd in &info.guards {
            out.push(
                TokenHasher::new("guard")
                    .str(side)
                    .str(gd.token.as_str())
                    .num(gd.polarity as u64)
                    .finish(),
            );
        }
    }
    if let (Some(i1), Some(i2)) = (i1, i2) {
        for g1 in &i1.guards {
            for g2 in &i2.guards {
                if g1.site == g2.site {
                    out.push(
                        TokenHasher::new("sharedguard")
                            .str(g1.token.as_str())
                            .num(g1.polarity as u64)
                            .num(g2.polarity as u64)
                            .finish(),
                    );
                }
            }
        }
    }
}

/// Labeled mirror of [`gamma_tokens`]; must emit the identical token
/// sequence.
fn gamma_tokens_labeled(g: &EventGraph, e1: EventId, e2: EventId, out: &mut Vec<LabeledToken>) {
    let s1 = g.event(e1).site;
    let s2 = g.event(e2).site;
    let i1 = g.site_info(s1);
    let i2 = g.site_info(s2);

    for (side, info) in [("L", i1), ("R", i2)] {
        let Some(info) = info else { continue };
        for (i, t) in info.type_tokens.iter().enumerate() {
            out.push(LabeledToken {
                token: TokenHasher::new("ty")
                    .str(side)
                    .num(i as u64)
                    .str(t.as_str())
                    .finish(),
                label: format!("ty {side} pos{} {}", i, t.as_str()),
            });
        }
        for gd in &info.guards {
            out.push(LabeledToken {
                token: TokenHasher::new("guard")
                    .str(side)
                    .str(gd.token.as_str())
                    .num(gd.polarity as u64)
                    .finish(),
                label: format!(
                    "guard {side} {}{}",
                    if gd.polarity { "" } else { "!" },
                    gd.token.as_str()
                ),
            });
        }
    }
    if let (Some(i1), Some(i2)) = (i1, i2) {
        for g1 in &i1.guards {
            for g2 in &i2.guards {
                if g1.site == g2.site {
                    out.push(LabeledToken {
                        token: TokenHasher::new("sharedguard")
                            .str(g1.token.as_str())
                            .num(g1.polarity as u64)
                            .num(g2.polarity as u64)
                            .finish(),
                        label: format!(
                            "sharedguard {} L={} R={}",
                            g1.token.as_str(),
                            g1.polarity,
                            g2.polarity
                        ),
                    });
                }
            }
        }
    }
}

/// Convenience: position-pair key for selecting the ψ model.
pub fn pos_pair(p1: Pos, p2: Pos) -> (u8, u8) {
    (p1.code(), p2.code())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph_of(src: &str) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    fn ev(g: &EventGraph, method: &str, pos: Pos) -> EventId {
        g.sites()
            .find(|(_, i)| i.method.method.as_str() == method)
            .and_then(|(s, _)| g.event_id(s, pos))
            .unwrap_or_else(|| panic!("no event {method}@{pos:?}"))
    }

    const SRC: &str = r#"
        fn main(db) {
            f = db.getFile("a");
            n = f.getName();
        }
    "#;

    #[test]
    fn feature_has_position_codes() {
        let g = graph_of(SRC);
        let ret = ev(&g, "getFile", Pos::Ret);
        let recv = ev(&g, "getName", Pos::Recv);
        let f = featurize(&g, ret, recv, false);
        assert_eq!(f.x1, Pos::Ret.code());
        assert_eq!(f.x2, Pos::Recv.code());
        assert!(!f.tokens.is_empty());
    }

    #[test]
    fn censoring_removes_cross_pair_paths_in_full_contexts() {
        let g = graph_of(SRC);
        let ret = ev(&g, "getFile", Pos::Ret);
        let recv = ev(&g, "getName", Pos::Recv);
        assert!(g.has_edge(ret, recv));
        let plain = featurize_with(&g, ret, recv, false, true);
        let censored = featurize_with(&g, ret, recv, true, true);
        assert!(
            censored.tokens.len() < plain.tokens.len(),
            "the (ret → recv) edge path must be dropped"
        );
    }

    #[test]
    fn directional_contexts_exclude_inner_paths() {
        // With directional contexts, the inner-facing paths (children of e1,
        // parents of e2) are dropped structurally, so censoring the other
        // endpoint changes nothing for a forward pair.
        let g = graph_of(SRC);
        let ret = ev(&g, "getFile", Pos::Ret);
        let recv = ev(&g, "getName", Pos::Recv);
        assert_eq!(
            featurize(&g, ret, recv, false),
            featurize(&g, ret, recv, true)
        );
        let full = featurize_with(&g, ret, recv, false, true);
        assert!(full.tokens.len() > featurize(&g, ret, recv, false).tokens.len());
    }

    #[test]
    fn features_are_deterministic() {
        let g = graph_of(SRC);
        let ret = ev(&g, "getFile", Pos::Ret);
        let recv = ev(&g, "getName", Pos::Recv);
        assert_eq!(
            featurize(&g, ret, recv, true),
            featurize(&g, ret, recv, true)
        );
    }

    #[test]
    fn same_usage_pattern_same_tokens_across_graphs() {
        // Two different files with the same API usage produce the same
        // censored feature for the corresponding pair — this is what lets a
        // model trained on one file score the other.
        let g1 = graph_of(SRC);
        let g2 = graph_of(SRC);
        let f1 = featurize(
            &g1,
            ev(&g1, "getFile", Pos::Ret),
            ev(&g1, "getName", Pos::Recv),
            true,
        );
        let f2 = featurize(
            &g2,
            ev(&g2, "getFile", Pos::Ret),
            ev(&g2, "getName", Pos::Recv),
            true,
        );
        assert_eq!(f1, f2);
    }

    #[test]
    fn guards_contribute_tokens() {
        let with_guard = graph_of(
            r#"
            fn main(db, it) {
                if (it.hasNext()) { f = db.getFile("a"); n = f.getName(); }
            }
            "#,
        );
        let without = graph_of(SRC);
        let fw = featurize(
            &with_guard,
            ev(&with_guard, "getFile", Pos::Ret),
            ev(&with_guard, "getName", Pos::Recv),
            false,
        );
        let fo = featurize(
            &without,
            ev(&without, "getFile", Pos::Ret),
            ev(&without, "getName", Pos::Recv),
            false,
        );
        assert!(fw.tokens.len() > fo.tokens.len());
    }
}

#[cfg(test)]
mod labeled_tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph_of(src: &str) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    #[test]
    fn labeled_tokens_match_featurize_depth() {
        // The labeled variant is a hand-maintained mirror of the plain one;
        // this pins that they emit identical token sets under every
        // censor/full/depth combination, on a graph with guards, chains,
        // and shared guards.
        let g = graph_of(
            r#"
            fn main(db, it) {
                if (it.hasNext()) {
                    c = db.connect("d");
                    f = c.getFile("x");
                    n = f.getName();
                    e = f.exists();
                }
            }
            "#,
        );
        let pairs: Vec<(EventId, EventId)> = g
            .event_ids()
            .flat_map(|a| g.event_ids().map(move |b| (a, b)))
            .filter(|(a, b)| a != b)
            .collect();
        for &(e1, e2) in &pairs {
            for censor in [false, true] {
                for full in [false, true] {
                    for k in 1..=3 {
                        let plain = featurize_depth(&g, e1, e2, censor, full, k);
                        let labeled = featurize_labeled(&g, e1, e2, censor, full, k);
                        let toks: Vec<u64> = labeled.tokens.iter().map(|t| t.token).collect();
                        assert_eq!(
                            plain.tokens, toks,
                            "token drift at censor={censor} full={full} k={k}"
                        );
                        assert_eq!((plain.x1, plain.x2), (labeled.x1, labeled.x2));
                        assert!(labeled.tokens.iter().all(|t| !t.label.is_empty()));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod depth_tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph_of(src: &str) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    fn ev(g: &EventGraph, method: &str, pos: Pos) -> EventId {
        g.sites()
            .find(|(_, i)| i.method.method.as_str() == method)
            .and_then(|(s, _)| g.event_id(s, pos))
            .unwrap()
    }

    #[test]
    fn token_count_grows_with_depth() {
        // A long producer chain gives e1 several ancestors.
        let g = graph_of(
            r#"
            fn main(db) {
                c = db.connect("d");
                s = c.stmt();
                r = s.query("q");
                n = r.firstRow();
            }
            "#,
        );
        let e1 = ev(&g, "firstRow", Pos::Ret);
        let e2 = ev(&g, "firstRow", Pos::Recv);
        let k1 = featurize_depth(&g, e1, e2, true, false, 1).tokens.len();
        let k2 = featurize_depth(&g, e1, e2, true, false, 2).tokens.len();
        assert!(k2 >= k1, "k=2 cannot have fewer tokens than k=1");
        // e2 (the receiver of firstRow) has ancestors query-ret etc. and
        // descendants none; check on a pair with real depth:
        let q_ret = ev(&g, "query", Pos::Ret);
        let fr_recv = ev(&g, "firstRow", Pos::Recv);
        let d2 = featurize_depth(&g, q_ret, fr_recv, true, false, 2)
            .tokens
            .len();
        let d3 = featurize_depth(&g, q_ret, fr_recv, true, false, 3)
            .tokens
            .len();
        assert!(d3 >= d2);
    }

    #[test]
    fn depth_one_keeps_only_anchor_and_gamma_tokens() {
        // e1 = ⟨getFile,0⟩ has a parent (⟨connect,ret⟩); e2 = ⟨getName,0⟩
        // has a child (⟨exists,0⟩) — so k = 2 adds path tokens on both
        // sides relative to k = 1.
        let g = graph_of(
            r#"
            fn main(db) {
                c = db.connect("d");
                f = c.getFile("x");
                n = f.getName();
                e = f.exists();
            }
            "#,
        );
        let e1 = ev(&g, "getFile", Pos::Recv);
        let e2 = ev(&g, "getName", Pos::Recv);
        let f1 = featurize_depth(&g, e1, e2, true, false, 1);
        // ctx1 L + ctx1 R + cross + γ type tokens; no path tokens.
        assert!(f1.tokens.len() >= 3);
        let f2 = featurize_depth(&g, e1, e2, true, false, 2);
        assert!(f2.tokens.len() > f1.tokens.len(), "k=2 adds path tokens");
    }

    #[test]
    fn depth_is_deterministic() {
        let g = graph_of("fn main(db) { f = db.getFile(\"x\"); n = f.getName(); }");
        let e1 = ev(&g, "getFile", Pos::Ret);
        let e2 = ev(&g, "getName", Pos::Recv);
        for k in 1..=4 {
            assert_eq!(
                featurize_depth(&g, e1, e2, true, false, k),
                featurize_depth(&g, e1, e2, true, false, k)
            );
        }
    }
}
