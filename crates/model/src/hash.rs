//! Deterministic feature hashing (the Vowpal-Wabbit-style hashing trick).

/// 64-bit FNV-1a hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Incremental FNV-1a hasher for composing feature tokens without
/// allocating strings.
#[derive(Clone, Copy, Debug)]
pub struct TokenHasher(u64);

impl TokenHasher {
    /// Starts a token with a namespace tag.
    pub fn new(tag: &str) -> TokenHasher {
        TokenHasher(fnv1a(tag.as_bytes()))
    }

    /// Mixes a string component.
    pub fn str(mut self, s: &str) -> TokenHasher {
        self.0 ^= fnv1a(s.as_bytes());
        self.0 = self.0.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        self
    }

    /// Mixes an integer component.
    pub fn num(mut self, n: u64) -> TokenHasher {
        self.0 ^= n.wrapping_mul(0xff51_afd7_ed55_8ccd);
        self.0 = self.0.rotate_left(31).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        self
    }

    /// Finishes the token.
    pub fn finish(self) -> u64 {
        // Final avalanche.
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

/// Maps a 64-bit token into a `2^bits`-dimensional index.
pub fn bucket(token: u64, bits: u32) -> usize {
    (token & ((1u64 << bits) - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic() {
        let a = TokenHasher::new("E").str("HashMap.get/1").num(0).finish();
        let b = TokenHasher::new("E").str("HashMap.get/1").num(0).finish();
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_differ() {
        let a = TokenHasher::new("E").str("HashMap.get/1").num(0).finish();
        let b = TokenHasher::new("E").str("HashMap.get/1").num(1).finish();
        let c = TokenHasher::new("F").str("HashMap.get/1").num(0).finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn order_of_components_matters() {
        let a = TokenHasher::new("t").str("x").str("y").finish();
        let b = TokenHasher::new("t").str("y").str("x").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn bucket_respects_bits() {
        for bits in [1u32, 8, 16, 20] {
            let idx = bucket(u64::MAX, bits);
            assert!(idx < (1 << bits));
        }
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
