//! Sparse logistic regression trained by SGD (the Vowpal Wabbit stand-in).

use serde::{Deserialize, Serialize};

use crate::hash::bucket;

/// A logistic regression over a `2^dim_bits`-dimensional hashed feature
/// space with binary (presence) features.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogReg {
    weights: Vec<f32>,
    bias: f32,
    dim_bits: u32,
    updates: u64,
}

impl LogReg {
    /// Creates a zero-initialized model with `2^dim_bits` weights.
    pub fn new(dim_bits: u32) -> LogReg {
        assert!(dim_bits <= 26, "dimension 2^{dim_bits} is excessive");
        LogReg {
            weights: vec![0.0; 1 << dim_bits],
            bias: 0.0,
            dim_bits,
            updates: 0,
        }
    }

    /// Predicted probability that the label is 1.
    pub fn predict(&self, tokens: &[u64]) -> f32 {
        sigmoid(self.margin(tokens))
    }

    /// The weight a single hashed token contributes to the margin — the
    /// per-feature logit contribution used by provenance explanations.
    /// Hash collisions are inherent to the bucketed space: the weight is
    /// the bucket's, shared by every token hashing there.
    pub fn weight_of(&self, token: u64) -> f32 {
        self.weights[bucket(token, self.dim_bits)]
    }

    /// Intercept `b` of the decision value.
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Raw decision value `w·x + b`.
    pub fn margin(&self, tokens: &[u64]) -> f32 {
        let mut z = self.bias;
        for &t in tokens {
            z += self.weights[bucket(t, self.dim_bits)];
        }
        z
    }

    /// One SGD step on (tokens, label) with log loss and L2 regularization.
    /// Returns the example's log loss *before* the step (the prediction is
    /// already computed for the gradient, so the loss costs one `ln`).
    pub fn update(&mut self, tokens: &[u64], label: bool, lr: f32, l2: f32) -> f32 {
        let p = self.predict(tokens);
        let g = p - (label as u8 as f32);
        self.bias -= lr * g;
        for &t in tokens {
            let w = &mut self.weights[bucket(t, self.dim_bits)];
            *w -= lr * (g + l2 * *w);
        }
        self.updates += 1;
        let p = p.clamp(1e-7, 1.0 - 1e-7);
        if label {
            -p.ln()
        } else {
            -(1.0 - p).ln()
        }
    }

    /// Log loss of a single example.
    pub fn loss(&self, tokens: &[u64], label: bool) -> f32 {
        let p = self.predict(tokens).clamp(1e-7, 1.0 - 1e-7);
        if label {
            -p.ln()
        } else {
            -(1.0 - p).ln()
        }
    }

    /// Number of SGD updates performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// A sparse serializable copy: only the touched weights. The hashed
    /// feature space is huge (`2^dim_bits` slots) but SGD reaches only the
    /// slots its training tokens hash to, so this is orders of magnitude
    /// smaller than the dense vector.
    pub fn snapshot(&self) -> LogRegSnapshot {
        LogRegSnapshot {
            dim_bits: self.dim_bits,
            bias: self.bias,
            updates: self.updates,
            nonzero: self
                .weights
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w != 0.0)
                .map(|(i, &w)| (i as u64, w))
                .collect(),
        }
    }

    /// Rebuilds the dense model from a [`snapshot`](LogReg::snapshot);
    /// predictions are bit-identical to the snapshotted model.
    pub fn from_snapshot(snap: LogRegSnapshot) -> LogReg {
        let mut m = LogReg::new(snap.dim_bits);
        m.bias = snap.bias;
        m.updates = snap.updates;
        for (i, w) in snap.nonzero {
            if let Some(slot) = m.weights.get_mut(i as usize) {
                *slot = w;
            }
        }
        m
    }
}

/// Sparse serialized form of a [`LogReg`] (see [`LogReg::snapshot`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogRegSnapshot {
    /// Hashed feature-space bits of the dense model.
    pub dim_bits: u32,
    /// Intercept.
    pub bias: f32,
    /// SGD updates performed.
    pub updates: u64,
    /// `(slot, weight)` for every nonzero weight, in slot order.
    pub nonzero: Vec<(u64, f32)>,
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_model_predicts_half() {
        let m = LogReg::new(10);
        assert!((m.predict(&[1, 2, 3]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn learns_linearly_separable_data() {
        let mut m = LogReg::new(12);
        // Token 10 => positive, token 20 => negative.
        for _ in 0..200 {
            m.update(&[10, 30], true, 0.5, 0.0);
            m.update(&[20, 30], false, 0.5, 0.0);
        }
        assert!(m.predict(&[10, 30]) > 0.9);
        assert!(m.predict(&[20, 30]) < 0.1);
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut m = LogReg::new(12);
        let before = m.loss(&[10], true) + m.loss(&[20], false);
        for _ in 0..50 {
            m.update(&[10], true, 0.3, 0.0);
            m.update(&[20], false, 0.3, 0.0);
        }
        let after = m.loss(&[10], true) + m.loss(&[20], false);
        assert!(after < before);
    }

    #[test]
    fn l2_shrinks_weights() {
        let mut a = LogReg::new(10);
        let mut b = LogReg::new(10);
        for _ in 0..500 {
            a.update(&[5], true, 0.5, 0.0);
            b.update(&[5], true, 0.5, 0.05);
        }
        assert!(b.predict(&[5]) < a.predict(&[5]));
    }

    #[test]
    #[should_panic(expected = "excessive")]
    fn huge_dims_rejected() {
        let _ = LogReg::new(40);
    }

    #[test]
    fn sigmoid_sanity() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }
}
