//! # uspec-model
//!
//! The probabilistic event-graph model ϕ of §4: given the feature
//! `ftr(e1, e2)` of an event pair, ϕ returns the probability that the edge
//! `(e1, e2)` exists. Following §4.1 it is factorized into one logistic
//! regression ψ(x1, x2) per argument-position pair, over a sparse hashed
//! feature space (the paper uses Vowpal Wabbit; this crate implements the
//! same model class from scratch: FNV-based feature hashing + SGD with log
//! loss).
//!
//! Training data (§4.2): positives are graph edges with *censored* features
//! (paths containing the opposite endpoint are dropped so the model cannot
//! simply learn the transitive closure); negatives are subsampled
//! unconnected pairs from the same graphs.
//!
//! The trained model's key use (§4.3) is scoring event pairs that are *not*
//! connected — edge candidates induced by specification patterns.

#![warn(missing_docs)]

pub mod features;
pub mod hash;
pub mod logreg;
pub mod seed;
pub mod train;

pub use features::{
    featurize, featurize_depth, featurize_labeled, featurize_with, LabeledPairFeature,
    LabeledToken, PairFeature,
};
pub use logreg::{LogReg, LogRegSnapshot};
pub use seed::{mix_seed, splitmix64};
pub use train::{
    extract_samples, EdgeModel, ModelSnapshot, PairExplanation, Sample, TrainOptions, TrainStats,
};
