//! Deterministic per-stream seed derivation.
//!
//! Every place that derives an independent RNG stream from a base seed plus
//! a stream index (per-file corpus generation, per-graph negative sampling)
//! goes through [`mix_seed`], so the derivation is strong and identical
//! everywhere. The previous ad-hoc mix (`seed ^ i.wrapping_mul(0x9E37)`)
//! only perturbed the low bits and produced correlated neighbouring
//! streams.

/// The splitmix64 finalizer: a full-avalanche bijection on `u64`.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the seed of stream `index` from `base`.
///
/// Both arguments are avalanched before combining, so neighbouring indices
/// (or neighbouring base seeds) yield uncorrelated streams. Nest calls to
/// derive from multi-part indices: `mix_seed(mix_seed(base, file), graph)`.
pub fn mix_seed(base: u64, index: u64) -> u64 {
    splitmix64(splitmix64(base) ^ splitmix64(index ^ 0xA0761D6478BD642F))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference values for the standard splitmix64 constants.
        assert_eq!(splitmix64(0), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(1), 0x910A2DEC89025CC1);
    }

    #[test]
    fn neighbouring_indices_are_uncorrelated() {
        let base = 42;
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            let s = mix_seed(base, i);
            assert!(seen.insert(s), "collision at index {i}");
            // The old weak mix kept the high 48 bits of neighbouring seeds
            // nearly equal; the strong mix must not.
            let next = mix_seed(base, i + 1);
            assert_ne!(s >> 32, next >> 32, "high bits repeat at index {i}");
        }
    }

    #[test]
    fn nested_mixing_separates_dimensions() {
        // (file=1, graph=2) and (file=2, graph=1) must differ.
        let a = mix_seed(mix_seed(7, 1), 2);
        let b = mix_seed(mix_seed(7, 2), 1);
        assert_ne!(a, b);
    }
}
