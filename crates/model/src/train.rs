//! Training-data extraction and the per-position edge model (§4.1–4.2).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use uspec_graph::{EventGraph, EventId};

use crate::features::{featurize_depth, featurize_labeled, PairFeature};
use crate::logreg::LogReg;

/// Options controlling sample extraction and SGD training.
#[derive(Clone, Debug)]
pub struct TrainOptions {
    /// Hashed feature-space size is `2^dim_bits` per position-pair model.
    pub dim_bits: u32,
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Learning-rate decay per epoch: `lr / (1 + decay·epoch)`.
    pub lr_decay: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// RNG seed (negative sampling and shuffling).
    pub seed: u64,
    /// Number of negative samples per positive sample (§4.2 subsampling).
    pub neg_per_pos: f32,
    /// Whether to censor cross-pair paths in positive features (§4.2);
    /// disabling this is the "learn the transitive closure" ablation.
    pub censor_positive_paths: bool,
    /// Use full (bidirectional) event contexts instead of the default
    /// directional ones; see [`crate::features::featurize_with`].
    pub full_contexts: bool,
    /// Maximum context path length `k` of `ctx_{G,k}` (§4.1); the paper
    /// uses 2.
    pub context_depth: usize,
    /// Restrict negative samples to event pairs "that occur in the same
    /// calling context" (§4.2). With inlined bodies the calling context is
    /// the inlining stack of each event's call site.
    pub negatives_same_context: bool,
    /// Cap on positive samples per event graph.
    pub max_pos_per_graph: usize,
}

impl Default for TrainOptions {
    fn default() -> TrainOptions {
        TrainOptions {
            dim_bits: 18,
            epochs: 6,
            lr: 0.4,
            lr_decay: 0.3,
            l2: 1e-6,
            seed: 42,
            neg_per_pos: 1.0,
            censor_positive_paths: true,
            full_contexts: false,
            context_depth: 2,
            negatives_same_context: true,
            max_pos_per_graph: 512,
        }
    }
}

/// One training sample: a featurized event pair with its edge label.
/// Serializable so the artifact store can cache a shard's samples.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Position-pair key selecting the ψ model.
    pub key: (u8, u8),
    /// Hashed feature tokens.
    pub tokens: Vec<u64>,
    /// Whether the edge exists.
    pub label: bool,
}

impl Sample {
    fn from_feature(f: PairFeature, label: bool) -> Sample {
        Sample {
            key: (f.x1, f.x2),
            tokens: f.tokens,
            label,
        }
    }
}

/// Extracts positive (edges, censored) and negative (subsampled non-edges)
/// training samples from one event graph (§4.2).
pub fn extract_samples(g: &EventGraph, rng: &mut ChaCha8Rng, opts: &TrainOptions) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut edges: Vec<(EventId, EventId)> = g.edges().map(|(a, b, _)| (a, b)).collect();
    edges.sort_unstable();
    if edges.len() > opts.max_pos_per_graph {
        edges.shuffle(rng);
        edges.truncate(opts.max_pos_per_graph);
    }
    for &(a, b) in &edges {
        let f = featurize_depth(
            g,
            a,
            b,
            opts.censor_positive_paths,
            opts.full_contexts,
            opts.context_depth,
        );
        samples.push(Sample::from_feature(f, true));
    }

    let n_events = g.num_events();
    if n_events >= 2 {
        let target = (edges.len() as f32 * opts.neg_per_pos).round() as usize;
        let mut found = 0;
        let mut tries = 0;
        while found < target && tries < target * 20 + 50 {
            tries += 1;
            let a = EventId(rng.gen_range(0..n_events as u32));
            let b = EventId(rng.gen_range(0..n_events as u32));
            if a == b || g.has_edge(a, b) {
                continue;
            }
            if opts.negatives_same_context && g.event(a).site.ctx != g.event(b).site.ctx {
                continue;
            }
            let f = featurize_depth(g, a, b, true, opts.full_contexts, opts.context_depth);
            samples.push(Sample::from_feature(f, false));
            found += 1;
        }
    }
    samples
}

/// Summary statistics of one training run.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainStats {
    /// Number of positive samples.
    pub n_pos: usize,
    /// Number of negative samples.
    pub n_neg: usize,
    /// Number of per-position models instantiated.
    pub n_models: usize,
    /// Mean log loss of each epoch, measured on each example *before* its
    /// SGD step (free: the prediction is already computed for the
    /// gradient). `epoch_loss.last()` equals `final_loss`.
    pub epoch_loss: Vec<f64>,
    /// Mean log loss over the final epoch.
    pub final_loss: f64,
    /// Training-set accuracy at threshold 0.5 after training.
    pub train_accuracy: f64,
}

/// Flat, serializable form of an [`EdgeModel`] — the per-position map as
/// sorted pairs (the vendored serde stack only supports string map keys).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ModelSnapshot {
    /// `((x1, x2), ψ)` per argument-position pair, sorted by position,
    /// each regression in its sparse form.
    pub models: Vec<((u8, u8), crate::LogRegSnapshot)>,
    /// Hashed feature-space bits.
    pub dim_bits: u32,
    /// Whether full calling contexts were featurized.
    pub full_contexts: bool,
    /// Context depth used for featurization.
    pub context_depth: usize,
    /// Statistics of the training run that produced the model.
    pub stats: TrainStats,
}

/// The decomposition of one edge prediction into per-feature logit
/// contributions; see [`EdgeModel::explain_pair`].
#[derive(Clone, Debug)]
pub struct PairExplanation {
    /// ϕ(ftr(e1, e2)) — bit-identical to `predict_pair`.
    pub conf: f32,
    /// Raw decision value `w·x + b` behind `conf`.
    pub margin: f32,
    /// Intercept of the selected ψ model.
    pub bias: f32,
    /// `(label, weight)` per feature token, sorted by descending |weight|
    /// (label as deterministic tie-break). Margin = bias + Σ weights.
    pub contributions: Vec<(String, f32)>,
}

/// The probabilistic event-graph edge model ϕ: one logistic regression
/// ψ(x1, x2) per argument-position pair (§4.1).
#[derive(Clone, Debug)]
pub struct EdgeModel {
    models: HashMap<(u8, u8), LogReg>,
    dim_bits: u32,
    full_contexts: bool,
    context_depth: usize,
    stats: TrainStats,
}

impl EdgeModel {
    /// Trains the model on pre-extracted samples.
    pub fn train(samples: &[Sample], opts: &TrainOptions) -> EdgeModel {
        let mut model = EdgeModel {
            models: HashMap::new(),
            dim_bits: opts.dim_bits,
            full_contexts: opts.full_contexts,
            context_depth: opts.context_depth,
            stats: TrainStats {
                n_pos: samples.iter().filter(|s| s.label).count(),
                n_neg: samples.iter().filter(|s| !s.label).count(),
                ..TrainStats::default()
            },
        };
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x7261_6e64);
        for epoch in 0..opts.epochs {
            let _span = uspec_telemetry::span!("train.epoch", "epoch={}", epoch);
            order.shuffle(&mut rng);
            let lr = opts.lr / (1.0 + opts.lr_decay * epoch as f32);
            let mut loss = 0.0f64;
            for &i in &order {
                let s = &samples[i];
                let m = model
                    .models
                    .entry(s.key)
                    .or_insert_with(|| LogReg::new(opts.dim_bits));
                loss += m.update(&s.tokens, s.label, lr, opts.l2) as f64;
            }
            if !samples.is_empty() {
                model.stats.epoch_loss.push(loss / samples.len() as f64);
            }
        }
        model.stats.final_loss = model.stats.epoch_loss.last().copied().unwrap_or(0.0);
        model.stats.n_models = model.models.len();
        if !samples.is_empty() {
            let correct = samples
                .iter()
                .filter(|s| {
                    let p = model.predict_tokens(s.key, &s.tokens).unwrap_or(0.5);
                    (p >= 0.5) == s.label
                })
                .count();
            model.stats.train_accuracy = correct as f64 / samples.len() as f64;
        }
        model
    }

    /// Trains directly from a set of event graphs (extraction + SGD).
    pub fn train_on_graphs<'a>(
        graphs: impl IntoIterator<Item = &'a EventGraph>,
        opts: &TrainOptions,
    ) -> EdgeModel {
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let mut samples = Vec::new();
        for g in graphs {
            samples.extend(extract_samples(g, &mut rng, opts));
        }
        EdgeModel::train(&samples, opts)
    }

    /// ϕ(ftr(e1, e2)): probability that the edge `(e1, e2)` exists.
    ///
    /// Returns `None` when no model exists for the pair's argument
    /// positions (no such pair was ever seen in training).
    pub fn predict_pair(&self, g: &EventGraph, e1: EventId, e2: EventId) -> Option<f32> {
        let f = featurize_depth(g, e1, e2, true, self.full_contexts, self.context_depth);
        self.predict_tokens((f.x1, f.x2), &f.tokens)
    }

    /// Prediction from pre-extracted tokens.
    pub fn predict_tokens(&self, key: (u8, u8), tokens: &[u64]) -> Option<f32> {
        self.models.get(&key).map(|m| m.predict(tokens))
    }

    /// Explains ϕ(ftr(e1, e2)): the same prediction as
    /// [`predict_pair`](EdgeModel::predict_pair) (bit-identical `conf` —
    /// the tokens come from the labeled mirror of the same featurization
    /// and the probability is computed by the same `predict` path) plus
    /// the per-feature logit contribution of every token. Cold path used
    /// only for provenance.
    pub fn explain_pair(
        &self,
        g: &EventGraph,
        e1: EventId,
        e2: EventId,
    ) -> Option<PairExplanation> {
        let f = featurize_labeled(g, e1, e2, true, self.full_contexts, self.context_depth);
        self.explain_tokens((f.x1, f.x2), &f.tokens)
    }

    /// Explanation from pre-extracted labeled tokens — the scoring core of
    /// [`explain_pair`](EdgeModel::explain_pair), split out so cached pair
    /// blueprints (tokens captured at enumeration time, model applied
    /// later) score through the exact same arithmetic as live extraction.
    pub fn explain_tokens(
        &self,
        key: (u8, u8),
        labeled: &[crate::features::LabeledToken],
    ) -> Option<PairExplanation> {
        let m = self.models.get(&key)?;
        let tokens: Vec<u64> = labeled.iter().map(|t| t.token).collect();
        let mut contributions: Vec<(String, f32)> = labeled
            .iter()
            .map(|t| (t.label.clone(), m.weight_of(t.token)))
            .collect();
        contributions.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        Some(PairExplanation {
            conf: m.predict(&tokens),
            margin: m.margin(&tokens),
            bias: m.bias(),
            contributions,
        })
    }

    /// Training statistics.
    pub fn stats(&self) -> &TrainStats {
        &self.stats
    }

    /// A serializable copy of the whole model, per-position regressions
    /// sorted by position pair.
    pub fn snapshot(&self) -> ModelSnapshot {
        let mut models: Vec<((u8, u8), crate::LogRegSnapshot)> = self
            .models
            .iter()
            .map(|(&k, m)| (k, m.snapshot()))
            .collect();
        models.sort_by_key(|&(k, _)| k);
        ModelSnapshot {
            models,
            dim_bits: self.dim_bits,
            full_contexts: self.full_contexts,
            context_depth: self.context_depth,
            stats: self.stats.clone(),
        }
    }

    /// Rebuilds a model from a [`snapshot`](EdgeModel::snapshot). The
    /// result predicts identically to the snapshotted model.
    pub fn from_snapshot(snap: ModelSnapshot) -> EdgeModel {
        EdgeModel {
            models: snap
                .models
                .into_iter()
                .map(|(k, m)| (k, LogReg::from_snapshot(m)))
                .collect(),
            dim_bits: snap.dim_bits,
            full_contexts: snap.full_contexts,
            context_depth: snap.context_depth,
            stats: snap.stats,
        }
    }

    /// Hashed feature-space bits.
    pub fn dim_bits(&self) -> u32 {
        self.dim_bits
    }

    /// Number of position-pair models.
    pub fn num_models(&self) -> usize {
        self.models.len()
    }

    /// Whether featurization uses full calling contexts.
    pub fn full_contexts(&self) -> bool {
        self.full_contexts
    }

    /// Context truncation depth used by featurization.
    pub fn context_depth(&self) -> usize {
        self.context_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions, Pos};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph_of(src: &str) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    fn ev(g: &EventGraph, method: &str, pos: Pos) -> EventId {
        g.sites()
            .find(|(_, i)| i.method.method.as_str() == method)
            .and_then(|(s, _)| g.event_id(s, pos))
            .unwrap_or_else(|| panic!("no event {method}@{pos:?}"))
    }

    fn training_graphs() -> Vec<EventGraph> {
        let mut graphs = Vec::new();
        for _ in 0..15 {
            graphs.push(graph_of(
                r#"
                fn main(db) {
                    f = db.getFile("x");
                    n = f.getName();
                }
                "#,
            ));
            graphs.push(graph_of(
                r#"
                fn main(db) {
                    c = db.openConn("dsn");
                    c.execute("q");
                }
                "#,
            ));
        }
        graphs
    }

    #[test]
    fn extraction_balances_classes() {
        let g = graph_of("fn main(db) { f = db.getFile(\"x\"); n = f.getName(); }");
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples = extract_samples(&g, &mut rng, &TrainOptions::default());
        let pos = samples.iter().filter(|s| s.label).count();
        let neg = samples.len() - pos;
        assert!(pos > 0);
        assert!(neg > 0);
        assert!((pos as i64 - neg as i64).abs() <= pos as i64 / 2 + 2);
    }

    #[test]
    fn model_learns_edges_and_generalizes_to_induced_pairs() {
        let graphs = training_graphs();
        let model = EdgeModel::train_on_graphs(&graphs, &TrainOptions::default());
        assert!(model.stats().train_accuracy > 0.8, "{:?}", model.stats());

        // The §4.3 key insight: in a store/retrieve program the (non-existent)
        // induced edge ⟨getFile,ret⟩ → ⟨getName,0⟩ gets a high probability
        // because the usage pattern was seen many times.
        let test = graph_of(
            r#"
            fn main(db) {
                map = new HashMap();
                map.put("k", db.getFile("x"));
                y = map.get("k");
                n = y.getName();
            }
            "#,
        );
        let e1 = ev(&test, "getFile", Pos::Ret);
        let e2 = ev(&test, "getName", Pos::Recv);
        assert!(!test.has_edge(e1, e2), "edge must not exist API-unaware");
        let p_induced = model
            .predict_pair(&test, e1, e2)
            .expect("model for (ret,0)");

        // Control: an implausible pairing in the same graph.
        let lc = ev(&test, "str", Pos::Ret);
        let p_control = model.predict_pair(&test, lc, e2).unwrap_or(0.0);
        assert!(
            p_induced > p_control,
            "induced {p_induced} should beat control {p_control}"
        );
        assert!(p_induced > 0.5, "induced edge is likely: {p_induced}");
    }

    #[test]
    fn wrong_direction_is_less_likely() {
        let graphs = training_graphs();
        let model = EdgeModel::train_on_graphs(&graphs, &TrainOptions::default());
        let g = graph_of("fn main(db) { f = db.getFile(\"x\"); n = f.getName(); }");
        let ret = ev(&g, "getFile", Pos::Ret);
        let recv = ev(&g, "getName", Pos::Recv);
        let fwd = model.predict_pair(&g, ret, recv).unwrap();
        let bwd = model.predict_pair(&g, recv, ret).unwrap_or(0.0);
        assert!(fwd > bwd);
    }

    #[test]
    fn unseen_position_pair_returns_none() {
        let model = EdgeModel::train(&[], &TrainOptions::default());
        assert_eq!(model.predict_tokens((3, 4), &[1, 2]), None);
        assert_eq!(model.num_models(), 0);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let graphs = training_graphs();
        let opts = TrainOptions::default();
        let m1 = EdgeModel::train_on_graphs(&graphs, &opts);
        let m2 = EdgeModel::train_on_graphs(&graphs, &opts);
        let g = &graphs[0];
        let ret = ev(g, "getFile", Pos::Ret);
        let recv = ev(g, "getName", Pos::Recv);
        assert_eq!(m1.predict_pair(g, ret, recv), m2.predict_pair(g, ret, recv));
    }

    #[test]
    fn explain_pair_matches_predict_pair_bit_exactly() {
        let graphs = training_graphs();
        let model = EdgeModel::train_on_graphs(&graphs, &TrainOptions::default());
        let g = &graphs[0];
        let ret = ev(g, "getFile", Pos::Ret);
        let recv = ev(g, "getName", Pos::Recv);
        let conf = model.predict_pair(g, ret, recv).unwrap();
        let exp = model.explain_pair(g, ret, recv).unwrap();
        assert_eq!(exp.conf, conf, "explanation drifted from prediction");
        assert!(!exp.contributions.is_empty());
        // The contributions decompose the margin exactly.
        let sum: f32 = exp.bias + exp.contributions.iter().map(|&(_, w)| w).sum::<f32>();
        assert!(
            (sum - exp.margin).abs() < 1e-4,
            "bias + Σ contributions = {sum} vs margin {}",
            exp.margin
        );
        // Sorted by descending |weight|.
        for w in exp.contributions.windows(2) {
            assert!(w[0].1.abs() >= w[1].1.abs());
        }
        // Unseen position pair explains to None, like predict_pair.
        let empty = EdgeModel::train(&[], &TrainOptions::default());
        assert!(empty.explain_pair(g, ret, recv).is_none());
    }

    #[test]
    fn stats_populated() {
        let graphs = training_graphs();
        let model = EdgeModel::train_on_graphs(&graphs, &TrainOptions::default());
        let s = model.stats();
        assert!(s.n_pos > 0);
        assert!(s.n_neg > 0);
        assert!(s.n_models > 0);
        assert!(s.final_loss > 0.0);
    }
}

#[cfg(test)]
mod context_variant_tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions, Pos};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph_of(src: &str) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    #[test]
    fn full_context_model_trains_and_predicts() {
        let graphs: Vec<EventGraph> = (0..10)
            .map(|_| graph_of("fn main(db) { f = db.getFile(\"x\"); n = f.getName(); }"))
            .collect();
        let opts = TrainOptions {
            full_contexts: true,
            ..TrainOptions::default()
        };
        let model = EdgeModel::train_on_graphs(&graphs, &opts);
        assert!(model.stats().train_accuracy > 0.7);
        let g = &graphs[0];
        let ret = g
            .sites()
            .find(|(_, i)| i.method.method.as_str() == "getFile")
            .and_then(|(s, _)| g.event_id(s, Pos::Ret))
            .unwrap();
        let recv = g
            .sites()
            .find(|(_, i)| i.method.method.as_str() == "getName")
            .and_then(|(s, _)| g.event_id(s, Pos::Recv))
            .unwrap();
        assert!(model.predict_pair(g, ret, recv).is_some());
    }

    #[test]
    fn negative_subsampling_ratio_is_respected() {
        let g = graph_of(
            r#"
            fn main(db) {
                f = db.getFile("x");
                n = f.getName();
                c = db.openConn("d");
                c.execute("q");
            }
            "#,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let half = TrainOptions {
            neg_per_pos: 0.5,
            ..TrainOptions::default()
        };
        let samples = extract_samples(&g, &mut rng, &half);
        let pos = samples.iter().filter(|s| s.label).count();
        let neg = samples.len() - pos;
        assert!(neg <= pos / 2 + 1, "pos={pos} neg={neg}");
    }

    #[test]
    fn model_snapshot_roundtrip_is_bit_exact() {
        let g = graph_of(
            r#"
            fn main(db) {
                f = db.getFile("x");
                n = f.getName();
                c = db.openConn("d");
                c.execute("q");
            }
            "#,
        );
        let opts = TrainOptions::default();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let samples = extract_samples(&g, &mut rng, &opts);
        let model = EdgeModel::train(&samples, &opts);

        let json = serde_json::to_string(&model.snapshot()).unwrap();
        let snap: ModelSnapshot = serde_json::from_str(&json).unwrap();
        // The sparse form is far smaller than the dense weight vectors.
        assert!(
            json.len() < model.stats().n_models * (1 << opts.dim_bits),
            "snapshot is not sparse: {} bytes",
            json.len()
        );
        let back = EdgeModel::from_snapshot(snap);
        assert_eq!(back.stats().n_models, model.stats().n_models);
        assert_eq!(back.stats().final_loss, model.stats().final_loss);
        for s in &samples {
            assert_eq!(
                model.predict_tokens(s.key, &s.tokens),
                back.predict_tokens(s.key, &s.tokens),
                "prediction drifted through the snapshot"
            );
        }
    }

    #[test]
    fn logreg_serde_roundtrip() {
        let mut m = crate::logreg::LogReg::new(8);
        for _ in 0..50 {
            m.update(&[3, 9], true, 0.4, 0.0);
            m.update(&[5], false, 0.4, 0.0);
        }
        let json = serde_json::to_string(&m).unwrap();
        let back: crate::logreg::LogReg = serde_json::from_str(&json).unwrap();
        assert_eq!(m.predict(&[3, 9]), back.predict(&[3, 9]));
        assert_eq!(m.updates(), back.updates());
    }
}

// Manual serde for EdgeModel: the per-position map is keyed by a tuple,
// which JSON cannot represent directly, so it is flattened into pairs.
impl serde::Serialize for EdgeModel {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = ser.serialize_struct("EdgeModel", 4)?;
        let models: Vec<(&(u8, u8), &LogReg)> = {
            let mut v: Vec<_> = self.models.iter().collect();
            v.sort_by_key(|(k, _)| **k);
            v
        };
        st.serialize_field("models", &models)?;
        st.serialize_field("dim_bits", &self.dim_bits)?;
        st.serialize_field("full_contexts", &self.full_contexts)?;
        st.serialize_field("context_depth", &self.context_depth)?;
        st.end()
    }
}

impl<'de> serde::Deserialize<'de> for EdgeModel {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<EdgeModel, D::Error> {
        #[derive(serde::Deserialize)]
        struct Raw {
            models: Vec<((u8, u8), LogReg)>,
            dim_bits: u32,
            full_contexts: bool,
            context_depth: usize,
        }
        let raw = Raw::deserialize(de)?;
        Ok(EdgeModel {
            models: raw.models.into_iter().collect(),
            dim_bits: raw.dim_bits,
            full_contexts: raw.full_contexts,
            context_depth: raw.context_depth,
            stats: TrainStats::default(),
        })
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions, Pos};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    #[test]
    fn edge_model_json_roundtrip_preserves_predictions() {
        let graphs: Vec<EventGraph> = (0..8)
            .map(|_| {
                let program =
                    parse("fn main(db) { f = db.getFile(\"x\"); n = f.getName(); }").unwrap();
                let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
                    .unwrap()
                    .pop()
                    .unwrap();
                let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
                build_event_graph(&body, &pta, &GraphOptions::default())
            })
            .collect();
        let model = EdgeModel::train_on_graphs(&graphs, &TrainOptions::default());
        let json = serde_json::to_string(&model).unwrap();
        let back: EdgeModel = serde_json::from_str(&json).unwrap();
        let g = &graphs[0];
        let e1 = g
            .sites()
            .find(|(_, i)| i.method.method.as_str() == "getFile")
            .and_then(|(s, _)| g.event_id(s, Pos::Ret))
            .unwrap();
        let e2 = g
            .sites()
            .find(|(_, i)| i.method.method.as_str() == "getName")
            .and_then(|(s, _)| g.event_id(s, Pos::Recv))
            .unwrap();
        assert_eq!(model.predict_pair(g, e1, e2), back.predict_pair(g, e1, e2));
        assert_eq!(model.num_models(), back.num_models());
    }
}
