//! Type-state client analysis (§7.4, Fig. 8a).
//!
//! Checks guard/action protocols such as `Iterator::hasNext` before
//! `Iterator::next`: at every call of the *action* method, every abstract
//! object the receiver may point to must have been *guarded* on all paths
//! since its last action. The precision of the underlying may-alias
//! analysis is decisive: if two reads of the same collection slot are
//! assigned distinct abstract objects (the API-unaware baseline), the guard
//! lands on a different object than the action and a false positive is
//! reported.

use std::collections::BTreeMap;
use uspec_lang::mir::{Body, CallSite, Terminator};
use uspec_lang::{MethodId, Symbol};
use uspec_pta::{InstrRecord, ObjId, Pta};

/// A two-method guard/action protocol.
#[derive(Clone, Debug)]
pub struct TypestateProtocol {
    /// Method (by simple name) that establishes the guard, e.g. `hasNext`.
    pub guard: Symbol,
    /// Method that requires and consumes the guard, e.g. `next`.
    pub action: Symbol,
}

impl TypestateProtocol {
    /// The classic `hasNext`/`next` iterator protocol.
    pub fn iterator() -> TypestateProtocol {
        TypestateProtocol {
            guard: Symbol::intern("hasNext"),
            action: Symbol::intern("next"),
        }
    }
}

/// A reported protocol violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypestateViolation {
    /// The action call site that may fire unguarded.
    pub site: CallSite,
    /// The action method.
    pub method: MethodId,
}

/// Per-object guard state; an object is safe at an action only if it is
/// guarded on **all** incoming paths (must-analysis).
type State = BTreeMap<ObjId, bool>;

/// Checks `protocol` over one analyzed body.
///
/// Returns every action call site where some receiver object may be
/// unguarded. Fewer reports with a more precise may-alias analysis means
/// fewer false positives (the Fig. 8a effect).
pub fn check_typestate(
    body: &Body,
    pta: &Pta,
    protocol: &TypestateProtocol,
) -> Vec<TypestateViolation> {
    let nblocks = body.blocks.len();
    let mut entry: Vec<Option<State>> = vec![None; nblocks];
    entry[0] = Some(State::new());
    let mut violations = Vec::new();
    let mut seen = std::collections::BTreeSet::new();

    for bb in 0..nblocks {
        let Some(state0) = entry[bb].take() else {
            continue;
        };
        let mut state = state0;
        for rec in &pta.records[bb] {
            let InstrRecord::Call(call) = rec else {
                continue;
            };
            let Some(recv) = &call.recv else { continue };
            if call.method.method == protocol.guard {
                for &o in recv {
                    state.insert(o, true);
                }
            } else if call.method.method == protocol.action {
                let unguarded = recv.iter().any(|o| !state.get(o).copied().unwrap_or(false));
                if unguarded && seen.insert(call.site) {
                    violations.push(TypestateViolation {
                        site: call.site,
                        method: call.method,
                    });
                }
                for &o in recv {
                    state.insert(o, false);
                }
            }
        }
        let succs: Vec<u32> = match &body.blocks[bb].term {
            Terminator::Goto(t) => vec![t.0],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![then_bb.0, else_bb.0],
            Terminator::Return => vec![],
        };
        for s in succs {
            match &mut entry[s as usize] {
                Some(dest) => {
                    // Must-join: guarded only if guarded on every path.
                    let keys: Vec<ObjId> =
                        dest.keys().copied().chain(state.keys().copied()).collect();
                    for k in keys {
                        let a = dest.get(&k).copied().unwrap_or(false);
                        let b = state.get(&k).copied().unwrap_or(false);
                        dest.insert(k, a && b);
                    }
                }
                slot @ None => *slot = Some(state.clone()),
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{PtaOptions, Spec, SpecDb};

    fn violations(src: &str, specs: &SpecDb) -> Vec<TypestateViolation> {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, specs, &PtaOptions::default());
        check_typestate(&body, &pta, &TypestateProtocol::iterator())
    }

    fn list_get_ret_same() -> SpecDb {
        SpecDb::from_specs([Spec::RetSame {
            method: MethodId::new("?", "get", 1),
        }])
    }

    const FIG8A: &str = r#"
        fn main(iters, flag) {
            c = iters.get(0).hasNext();
            if (c) {
                x = iters.get(0).next();
            }
        }
    "#;

    #[test]
    fn fig8a_false_positive_without_specs() {
        let v = violations(FIG8A, &SpecDb::empty());
        assert_eq!(v.len(), 1, "baseline cannot connect the two gets");
    }

    #[test]
    fn fig8a_no_false_positive_with_ret_same() {
        let v = violations(FIG8A, &list_get_ret_same());
        assert!(v.is_empty(), "RetSame(get) merges the iterators: {v:?}");
    }

    #[test]
    fn direct_protocol_violation_still_reported() {
        let src = r#"
            fn main(it) {
                x = it.next();
            }
        "#;
        assert_eq!(violations(src, &list_get_ret_same()).len(), 1);
    }

    #[test]
    fn guarded_direct_use_is_clean() {
        let src = r#"
            fn main(it) {
                c = it.hasNext();
                if (c) { x = it.next(); }
            }
        "#;
        assert!(violations(src, &SpecDb::empty()).is_empty());
    }

    #[test]
    fn action_consumes_guard() {
        let src = r#"
            fn main(it) {
                c = it.hasNext();
                x = it.next();
                y = it.next();
            }
        "#;
        let v = violations(src, &SpecDb::empty());
        assert_eq!(v.len(), 1, "second next is unguarded");
    }

    #[test]
    fn must_join_requires_guard_on_all_paths() {
        let src = r#"
            fn main(it, flag) {
                if (flag) { c = it.hasNext(); }
                x = it.next();
            }
        "#;
        let v = violations(src, &SpecDb::empty());
        assert_eq!(v.len(), 1, "guard missing on the else path");
    }
}

#[cfg(test)]
mod loop_tests {
    use super::*;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{PtaOptions, SpecDb};

    fn violations(src: &str) -> usize {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        check_typestate(&body, &pta, &TypestateProtocol::iterator()).len()
    }

    #[test]
    fn guarded_loop_body_is_clean() {
        assert_eq!(
            violations(
                r#"
                fn main(it, c) {
                    while (c) {
                        g = it.hasNext();
                        x = it.next();
                    }
                }
                "#
            ),
            0
        );
    }

    #[test]
    fn guard_outside_loop_does_not_cover_second_iteration() {
        // hasNext once, next repeatedly: the unrolled second iteration's
        // next() is unguarded (next consumes the guard).
        assert_eq!(
            violations(
                r#"
                fn main(it, c) {
                    g = it.hasNext();
                    while (c) {
                        x = it.next();
                    }
                }
                "#
            ),
            1
        );
    }

    #[test]
    fn violations_deduplicated_per_site() {
        // The same syntactic next() in a loop reports once, not per copy.
        assert_eq!(
            violations(
                r#"
                fn main(it, c) {
                    while (c) { x = it.next(); }
                }
                "#
            ),
            1
        );
    }
}
