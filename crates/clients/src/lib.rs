//! # uspec-clients
//!
//! Downstream client analyses consuming may-alias results (§7.4):
//!
//! * [`typestate`] — guard/action protocol checking (`Iterator::hasNext`
//!   before `next`, Fig. 8a): better aliasing removes false positives;
//! * [`taint`] — source→sink object taint with sanitizers (Fig. 8b): better
//!   aliasing coverage removes false negatives on container round-trips;
//! * [`leaks`] — open/close resource tracking: closing through a
//!   container-read alias is only recognized with the learned specs.
//!
//! Both clients take a lowered body plus a converged [`uspec_pta::Pta`]
//! run, so the same client can be evaluated under the API-unaware baseline,
//! the learned specifications, or the ground-truth oracle.

#![warn(missing_docs)]

pub mod leaks;
pub mod taint;
pub mod typestate;

pub use leaks::{check_leaks, LeakConfig, LeakReport};
pub use taint::{check_taint, TaintConfig, TaintFinding};
pub use typestate::{check_typestate, TypestateProtocol, TypestateViolation};
