//! Taint client analysis (§7.4, Fig. 8b).
//!
//! Object-level taint propagation on top of the may-alias results: objects
//! returned by *source* methods are tainted; calls propagate taint from
//! receiver/arguments to returned objects (string manipulation keeps taint)
//! unless the method is a *sanitizer*; a finding is reported when a tainted
//! object reaches a *sink* argument.
//!
//! Aliasing coverage is decisive for recall: without the
//! `RetArg(SubscriptLoad, setdefault, 2)`-style specifications, a value
//! stored into a dict and read back is a fresh, untainted object and the
//! vulnerability is missed (the Fig. 8b false negative).

use std::collections::BTreeSet;
use uspec_lang::mir::CallSite;
use uspec_lang::{MethodId, Symbol};
use uspec_pta::{InstrRecord, ObjId, Pta};

/// Source/sink/sanitizer configuration (by simple method name).
#[derive(Clone, Debug, Default)]
pub struct TaintConfig {
    /// Methods whose return value is attacker-controlled.
    pub sources: Vec<Symbol>,
    /// Methods whose arguments must not be tainted.
    pub sinks: Vec<Symbol>,
    /// Methods whose return value is clean regardless of inputs.
    pub sanitizers: Vec<Symbol>,
}

impl TaintConfig {
    /// Builds a config from method-name strings.
    pub fn new(sources: &[&str], sinks: &[&str], sanitizers: &[&str]) -> TaintConfig {
        let syms = |xs: &[&str]| xs.iter().map(|s| Symbol::intern(s)).collect();
        TaintConfig {
            sources: syms(sources),
            sinks: syms(sinks),
            sanitizers: syms(sanitizers),
        }
    }
}

/// A tainted value reaching a sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaintFinding {
    /// The sink call site.
    pub site: CallSite,
    /// The sink method.
    pub method: MethodId,
}

/// Runs the taint client over one analyzed body.
///
/// The propagation is a fixpoint over the analysis records: heap flow is
/// already folded into the points-to sets (ghost fields), so only the
/// call-level source/propagate/sanitize rules are needed here.
pub fn check_taint(pta: &Pta, config: &TaintConfig) -> Vec<TaintFinding> {
    let mut tainted: BTreeSet<ObjId> = BTreeSet::new();
    // Fixpoint: records are in topological order but ghost-field flow can
    // connect a later store to an earlier read.
    loop {
        let before = tainted.len();
        for rec in pta.records.iter().flatten() {
            let InstrRecord::Call(call) = rec else {
                continue;
            };
            let name = call.method.method;
            if config.sources.contains(&name) {
                tainted.extend(call.ret.iter().copied());
                continue;
            }
            if config.sanitizers.contains(&name) {
                continue;
            }
            let input_tainted = call
                .recv
                .iter()
                .chain(call.args.iter())
                .any(|pts| pts.iter().any(|o| tainted.contains(o)));
            if input_tainted {
                tainted.extend(call.ret.iter().copied());
            }
        }
        if tainted.len() == before {
            break;
        }
    }

    let mut findings = Vec::new();
    let mut seen = BTreeSet::new();
    for rec in pta.records.iter().flatten() {
        let InstrRecord::Call(call) = rec else {
            continue;
        };
        if !config.sinks.contains(&call.method.method) {
            continue;
        }
        let hit = call
            .args
            .iter()
            .any(|pts| pts.iter().any(|o| tainted.contains(o)));
        if hit && seen.insert(call.site) {
            findings.push(TaintFinding {
                site: call.site,
                method: call.method,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{PtaOptions, Spec, SpecDb};

    fn findings(src: &str, specs: &SpecDb) -> Vec<TaintFinding> {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, specs, &PtaOptions::default());
        let config = TaintConfig::new(&["getParam", "pop"], &["render"], &["escape"]);
        check_taint(&pta, &config)
    }

    fn dict_specs() -> SpecDb {
        SpecDb::from_specs([Spec::RetArg {
            target: MethodId::new("?", "SubscriptLoad", 1),
            source: MethodId::new("?", "setdefault", 2),
            x: 2,
        }])
    }

    #[test]
    fn direct_flow_is_found_without_specs() {
        let src = r#"
            fn main(req, html) {
                v = req.getParam("q");
                html.render(v);
            }
        "#;
        assert_eq!(findings(src, &SpecDb::empty()).len(), 1);
    }

    #[test]
    fn sanitizer_blocks_flow() {
        let src = r#"
            fn main(req, html) {
                v = req.getParam("q");
                s = v.escape();
                html.render(s);
            }
        "#;
        assert!(findings(src, &SpecDb::empty()).is_empty());
    }

    #[test]
    fn string_ops_propagate_taint() {
        let src = r#"
            fn main(req, html) {
                v = req.getParam("q");
                s = v.strip();
                html.render(s);
            }
        "#;
        assert_eq!(findings(src, &SpecDb::empty()).len(), 1);
    }

    const FIG8B: &str = r#"
        fn main(kwargs, html) {
            v = kwargs.pop("value");
            kwargs.setdefault("data-value", v);
            w = kwargs.SubscriptLoad("data-value");
            html.render(w);
        }
    "#;

    #[test]
    fn fig8b_false_negative_without_specs() {
        assert!(
            findings(FIG8B, &SpecDb::empty()).is_empty(),
            "baseline misses the dict round-trip"
        );
    }

    #[test]
    fn fig8b_found_with_dict_specs() {
        assert_eq!(
            findings(FIG8B, &dict_specs()).len(),
            1,
            "RetArg(SubscriptLoad, setdefault, 2) closes the gap"
        );
    }

    #[test]
    fn untainted_dict_roundtrip_is_clean() {
        let src = r#"
            fn main(kwargs, html) {
                v = "static";
                kwargs.setdefault("data-value", v);
                w = kwargs.SubscriptLoad("data-value");
                html.render(w);
            }
        "#;
        assert!(findings(src, &dict_specs()).is_empty());
    }
}
