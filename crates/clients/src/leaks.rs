//! Resource-leak client analysis.
//!
//! A third client in the spirit of §7.4: every object returned by an *open*
//! method must receive a *close* call on every path to the exit. Aliasing
//! coverage matters in the same way as for the other clients: if the
//! resource is re-read from a container (`conns.get(0).close()`), the
//! baseline analysis closes a *different* abstract object than the one that
//! was opened and reports a false leak; `RetSame`/`RetArg` specifications
//! connect the two.

use std::collections::{BTreeMap, BTreeSet};
use uspec_lang::mir::{Body, CallSite, Terminator};
use uspec_lang::{MethodId, Symbol};
use uspec_pta::{InstrRecord, ObjId, Pta};

/// Configuration of the open/close protocol.
#[derive(Clone, Debug)]
pub struct LeakConfig {
    /// Methods whose return value is a resource that must be closed.
    pub opens: Vec<Symbol>,
    /// Methods that release the receiver resource.
    pub closes: Vec<Symbol>,
}

impl LeakConfig {
    /// Builds a config from method-name strings.
    pub fn new(opens: &[&str], closes: &[&str]) -> LeakConfig {
        LeakConfig {
            opens: opens.iter().map(|s| Symbol::intern(s)).collect(),
            closes: closes.iter().map(|s| Symbol::intern(s)).collect(),
        }
    }
}

/// A resource that may leak: opened at `site`, not closed on some exit path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakReport {
    /// The opening call site.
    pub site: CallSite,
    /// The opening method.
    pub method: MethodId,
}

/// Per-path state: resources opened (object → opening record index) and
/// the subset already closed.
#[derive(Clone, Debug, Default, PartialEq)]
struct State {
    opened: BTreeMap<ObjId, (CallSite, MethodId)>,
    closed: BTreeSet<ObjId>,
}

/// Checks the open/close protocol over one analyzed body.
///
/// A resource leaks if on **some** path to the exit it was opened but no
/// close reached any object it may alias (may-leak, like the paper's
/// may-analyses). Closing through an alias counts — that is where the
/// learned specifications earn their keep.
pub fn check_leaks(body: &Body, pta: &Pta, config: &LeakConfig) -> Vec<LeakReport> {
    let nblocks = body.blocks.len();
    let mut entry: Vec<Option<Vec<State>>> = vec![None; nblocks];
    entry[0] = Some(vec![State::default()]);
    let mut leaks: Vec<LeakReport> = Vec::new();
    let mut seen = BTreeSet::new();

    for bb in 0..nblocks {
        let Some(states) = entry[bb].take() else {
            continue;
        };
        let mut states = states;
        for rec in &pta.records[bb] {
            let InstrRecord::Call(call) = rec else {
                continue;
            };
            if config.opens.contains(&call.method.method) {
                for st in &mut states {
                    for &o in &call.ret {
                        st.opened.insert(o, (call.site, call.method));
                    }
                }
            } else if config.closes.contains(&call.method.method) {
                if let Some(recv) = &call.recv {
                    for st in &mut states {
                        for &o in recv {
                            st.closed.insert(o);
                        }
                    }
                }
            }
        }
        match &body.blocks[bb].term {
            Terminator::Return => {
                for st in &states {
                    for (&obj, &(site, method)) in &st.opened {
                        let closed = st.closed.contains(&obj);
                        if !closed && seen.insert(site) {
                            let _ = obj;
                            leaks.push(LeakReport { site, method });
                        }
                    }
                }
            }
            Terminator::Goto(t) => {
                merge(&mut entry[t.0 as usize], states);
            }
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                merge(&mut entry[then_bb.0 as usize], states.clone());
                merge(&mut entry[else_bb.0 as usize], states);
            }
        }
    }
    leaks
}

/// Path-sensitive join with a cap: keep distinct states up to a small bound,
/// falling back to a merged over-approximation beyond it.
fn merge(slot: &mut Option<Vec<State>>, mut incoming: Vec<State>) {
    const MAX_STATES: usize = 8;
    match slot {
        None => *slot = Some(incoming),
        Some(existing) => {
            for st in incoming.drain(..) {
                if !existing.contains(&st) {
                    existing.push(st);
                }
            }
            if existing.len() > MAX_STATES {
                // Merge everything into one conservative state: union of
                // opened, intersection of closed.
                let mut opened = BTreeMap::new();
                let mut closed: Option<BTreeSet<ObjId>> = None;
                for st in existing.drain(..) {
                    opened.extend(st.opened);
                    closed = Some(match closed {
                        None => st.closed,
                        Some(c) => c.intersection(&st.closed).copied().collect(),
                    });
                }
                existing.push(State {
                    opened,
                    closed: closed.unwrap_or_default(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{PtaOptions, Spec, SpecDb};

    fn leaks(src: &str, specs: &SpecDb) -> Vec<LeakReport> {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, specs, &PtaOptions::default());
        let config = LeakConfig::new(&["open", "openConnection"], &["close"]);
        check_leaks(&body, &pta, &config)
    }

    #[test]
    fn unclosed_resource_leaks() {
        let v = leaks(
            "fn main(db) { c = db.open(\"f\"); c.read(); }",
            &SpecDb::empty(),
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn closed_resource_is_clean() {
        let v = leaks(
            "fn main(db) { c = db.open(\"f\"); c.read(); c.close(); }",
            &SpecDb::empty(),
        );
        assert!(v.is_empty());
    }

    #[test]
    fn close_on_one_branch_only_still_leaks() {
        let v = leaks(
            r#"
            fn main(db, cond) {
                c = db.open("f");
                if (cond) { c.close(); }
            }
            "#,
            &SpecDb::empty(),
        );
        assert_eq!(v.len(), 1, "the else path leaks");
    }

    #[test]
    fn close_on_both_branches_is_clean() {
        let v = leaks(
            r#"
            fn main(db, cond) {
                c = db.open("f");
                if (cond) { c.close(); } else { c.close(); }
            }
            "#,
            &SpecDb::empty(),
        );
        assert!(v.is_empty());
    }

    #[test]
    fn container_roundtrip_close_needs_specs() {
        // Fig. 8a-style: the resource is re-read from a registry before
        // being closed.
        let src = r#"
            fn main(db) {
                reg = new Registry();
                c = db.open("f");
                reg.put("conn", c);
                reg.get("conn").close();
            }
        "#;
        let baseline = leaks(src, &SpecDb::empty());
        assert_eq!(baseline.len(), 1, "baseline reports a false leak");

        let specs = SpecDb::from_specs([Spec::RetArg {
            target: MethodId::new("Registry", "get", 1),
            source: MethodId::new("Registry", "put", 2),
            x: 2,
        }]);
        let with_specs = leaks(src, &specs);
        assert!(
            with_specs.is_empty(),
            "RetArg connects the close to the open: {with_specs:?}"
        );
    }

    #[test]
    fn two_resources_tracked_independently() {
        let v = leaks(
            r#"
            fn main(db) {
                a = db.open("f");
                b = db.open("g");
                a.close();
            }
            "#,
            &SpecDb::empty(),
        );
        assert_eq!(v.len(), 1, "only b leaks");
    }
}
