//! Corpus-wide differential test: the worklist engine must produce
//! byte-identical `Pta` results to the naive reference engine on the full
//! generated test corpus of both library universes, under empty and
//! ground-truth spec databases and both ghost modes — and downstream
//! clients must therefore be engine-agnostic.

use uspec_corpus::{generate_corpus, java_library, python_library, GenOptions, Library};
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::mir::Body;
use uspec_lang::parser::parse;
use uspec_pta::{EngineKind, GhostMode, Pta, PtaOptions, SpecDb};

fn run(body: &Body, specs: &SpecDb, opts: &PtaOptions, engine: EngineKind) -> Pta {
    Pta::run(
        body,
        specs,
        &PtaOptions {
            engine,
            ..opts.clone()
        },
    )
}

fn assert_engines_agree(body: &Body, specs: &SpecDb, opts: &PtaOptions, ctx: &str) {
    let naive = run(body, specs, opts, EngineKind::Naive);
    let wl = run(body, specs, opts, EngineKind::Worklist);
    assert_eq!(naive.objs, wl.objs, "{ctx}: object pools differ");
    assert_eq!(naive.heap, wl.heap, "{ctx}: heaps differ");
    assert_eq!(naive.records, wl.records, "{ctx}: records differ");
    assert_eq!(naive.entry_envs, wl.entry_envs, "{ctx}: entry envs differ");
}

fn corpus_differential(lib: &Library, num_files: usize, label: &str) {
    let table = lib.api_table();
    let truth = SpecDb::from_specs(lib.true_specs());
    let lower_opts = LowerOptions::default();
    let mut bodies_checked = 0usize;
    for file in generate_corpus(
        lib,
        &GenOptions {
            num_files,
            seed: 2019,
            ..GenOptions::default()
        },
    ) {
        let program = parse(&file.source).expect("generated corpus parses");
        let bodies = lower_program(&program, &table, &lower_opts).expect("generated corpus lowers");
        for body in &bodies {
            for (specs, db_name) in [(&SpecDb::empty(), "empty"), (&truth, "truth")] {
                for mode in [GhostMode::Base, GhostMode::Coverage] {
                    for max_passes in [2usize, 64] {
                        let opts = PtaOptions {
                            ghost_mode: mode,
                            max_passes,
                            ..PtaOptions::default()
                        };
                        let ctx =
                            format!("{label}/{}/{db_name}/{mode:?}/cap{max_passes}", file.name);
                        assert_engines_agree(body, specs, &opts, &ctx);
                    }
                }
            }
            bodies_checked += 1;
        }
    }
    assert!(bodies_checked > 0, "corpus produced no bodies");
}

#[test]
fn worklist_matches_naive_on_java_corpus() {
    corpus_differential(&java_library(), 80, "java");
}

#[test]
fn worklist_matches_naive_on_python_corpus() {
    corpus_differential(&python_library(), 80, "python");
}

#[test]
fn clients_see_identical_verdicts_from_both_engines() {
    // A spot-check one level up from raw Pta equality: the taint client
    // over both engines' results reports the same findings.
    let lib = java_library();
    let table = lib.api_table();
    let truth = SpecDb::from_specs(lib.true_specs());
    let config = uspec_clients::taint::TaintConfig::new(&["get"], &["put"], &[]);
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 10,
            seed: 7,
            ..GenOptions::default()
        },
    );
    for file in files {
        let program = parse(&file.source).unwrap();
        for body in lower_program(&program, &table, &LowerOptions::default()).unwrap() {
            let naive = run(&body, &truth, &PtaOptions::default(), EngineKind::Naive);
            let wl = run(&body, &truth, &PtaOptions::default(), EngineKind::Worklist);
            let a = uspec_clients::taint::check_taint(&naive, &config);
            let b = uspec_clients::taint::check_taint(&wl, &config);
            assert_eq!(a.len(), b.len(), "{}: client verdicts differ", file.name);
        }
    }
}
