//! Events and per-call-site metadata.

use serde::{Deserialize, Serialize};
use uspec_lang::mir::{CallSite, Guard, Literal};
use uspec_lang::registry::MethodId;
use uspec_lang::Symbol;

/// An event position `x ∈ Pos = N ∪ {ret}` (§3.1): `Recv` is the paper's
/// position 0, `Arg(i)` the i-th argument (1-based), `Ret` the return value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Pos {
    /// The receiver (position 0).
    Recv,
    /// The `i`-th argument, `i ≥ 1`.
    Arg(u8),
    /// The returned object.
    Ret,
}

impl Pos {
    /// Numeric encoding used by the probabilistic model: 0 for receiver,
    /// `i` for arguments, 255 for `ret`.
    pub fn code(self) -> u8 {
        match self {
            Pos::Recv => 0,
            Pos::Arg(i) => i,
            Pos::Ret => u8::MAX,
        }
    }
}

impl std::fmt::Debug for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pos::Recv => write!(f, "0"),
            Pos::Arg(i) => write!(f, "{i}"),
            Pos::Ret => write!(f, "ret"),
        }
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// An event `⟨m, x⟩`: the usage of an object at position `x` of call site
/// `m` (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Event {
    /// The call site `m` (allocation and literal sites use pseudo methods).
    pub site: CallSite,
    /// The position of the object in the call.
    pub pos: Pos,
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨{:?},{:?}⟩", self.site, self.pos)
    }
}

/// Dense index of an event within one [`EventGraph`](crate::EventGraph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl std::fmt::Debug for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What kind of call site an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteKind {
    /// A real API method call.
    ApiCall,
    /// A `new T()` allocation (`⟨newT, ret⟩`).
    Alloc,
    /// A literal construction (`⟨lc_i, ret⟩`).
    LitCtor,
}

/// Static information about one call site of the event graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SiteInfo {
    /// The method identifier `id(m)`; allocations use `C.<new>/0` and
    /// literal constructions `<lit>.str/0` etc.
    pub method: MethodId,
    /// Which kind of site this is.
    pub kind: SiteKind,
    /// Number of arguments at the site.
    pub nargs: u8,
    /// Control-flow guards dominating the site (for γ features).
    pub guards: Vec<Guard>,
    /// Coarse type tokens of receiver and arguments (for γ features):
    /// element 0 is the receiver (or `-`), then one per argument.
    pub type_tokens: Vec<Symbol>,
    /// 1-based source line of the call site (`0` = unknown). Filled in by
    /// [`EventGraph::annotate_lines`](crate::EventGraph::annotate_lines)
    /// after construction; the builder has no access to source text.
    pub line: u32,
}

/// Pseudo method identifier for an allocation site of `class`.
pub fn alloc_method(class: Symbol) -> MethodId {
    MethodId {
        class,
        method: Symbol::intern("<new>"),
        arity: 0,
    }
}

/// Pseudo method identifier for a literal-construction site.
pub fn lit_method(lit: Literal) -> MethodId {
    let method = match lit {
        Literal::Str(_) => "str",
        Literal::Int(_) => "int",
        Literal::Bool(_) => "bool",
        Literal::Null => "null",
    };
    MethodId {
        class: Symbol::intern("<lit>"),
        method: Symbol::intern(method),
        arity: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_codes_are_distinct() {
        assert_eq!(Pos::Recv.code(), 0);
        assert_eq!(Pos::Arg(1).code(), 1);
        assert_eq!(Pos::Arg(7).code(), 7);
        assert_eq!(Pos::Ret.code(), 255);
    }

    #[test]
    fn pos_display_matches_paper() {
        assert_eq!(Pos::Recv.to_string(), "0");
        assert_eq!(Pos::Arg(2).to_string(), "2");
        assert_eq!(Pos::Ret.to_string(), "ret");
    }

    #[test]
    fn pseudo_methods() {
        assert_eq!(
            alloc_method(Symbol::intern("HashMap")).qualified(),
            "HashMap.<new>/0"
        );
        assert_eq!(
            lit_method(Literal::Str(Symbol::intern("k"))).qualified(),
            "<lit>.str/0"
        );
        assert_eq!(lit_method(Literal::Int(3)).qualified(), "<lit>.int/0");
    }

    #[test]
    fn pos_ordering() {
        assert!(Pos::Recv < Pos::Arg(1));
        assert!(Pos::Arg(1) < Pos::Arg(2));
        assert!(Pos::Arg(200) < Pos::Ret);
    }
}
