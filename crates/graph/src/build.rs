//! Event-graph construction from points-to analysis results.
//!
//! Implements §3.2–3.3: abstract histories are propagated through the
//! (acyclic, loop-unrolled) body by a forward dataflow whose state maps each
//! abstract object to its set of bounded event sequences; joins are set
//! unions; the event graph's edges are the history orderings that are
//! consistent per object.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use uspec_lang::mir::{Body, CallSite, Instr, Terminator};
use uspec_lang::registry::MethodId;
use uspec_lang::Symbol;
use uspec_pta::{InstrRecord, ObjId, ObjKind, ObjPool, Pta};

use crate::event::{alloc_method, lit_method, Event, EventId, Pos, SiteInfo, SiteKind};
use crate::graph::EventGraph;

/// Options bounding history construction.
#[derive(Clone, Debug)]
pub struct GraphOptions {
    /// Maximum number of concrete histories kept per abstract object.
    pub max_histories: usize,
    /// Maximum history length; longer histories are frozen.
    pub max_history_len: usize,
}

impl Default for GraphOptions {
    fn default() -> GraphOptions {
        GraphOptions {
            max_histories: 8,
            max_history_len: 48,
        }
    }
}

type HistorySet = BTreeSet<Vec<EventId>>;
type State = BTreeMap<ObjId, HistorySet>;

/// Builds the event graph of `body` from the converged analysis `pta`.
///
/// # Examples
///
/// ```
/// # use uspec_lang::{parse, lower_program, LowerOptions, ApiTable};
/// # use uspec_pta::{Pta, PtaOptions, SpecDb};
/// # use uspec_graph::{build_event_graph, GraphOptions};
/// let program = parse("fn main(db) { f = db.getFile(\"a\"); n = f.getName(); }")?;
/// let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())?.pop().unwrap();
/// let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
/// let graph = build_event_graph(&body, &pta, &GraphOptions::default());
/// assert!(graph.num_events() > 0);
/// # Ok::<(), uspec_lang::LangError>(())
/// ```
pub fn build_event_graph(body: &Body, pta: &Pta, opts: &GraphOptions) -> EventGraph {
    let _span = uspec_telemetry::span!("graph.build", "fn={}", body.func);
    let mut b = Builder {
        body,
        pta,
        opts,
        graph: EventGraph::default(),
    };
    b.run();
    uspec_telemetry::counter!("graph.graphs_built").inc();
    uspec_telemetry::counter!("graph.events").add(b.graph.num_events() as u64);
    uspec_telemetry::counter!("graph.edges").add(b.graph.num_edges() as u64);
    b.graph
}

struct Builder<'a> {
    body: &'a Body,
    pta: &'a Pta,
    opts: &'a GraphOptions,
    graph: EventGraph,
}

impl<'a> Builder<'a> {
    fn run(&mut self) {
        let nblocks = self.body.blocks.len();
        let mut entry: Vec<Option<State>> = vec![None; nblocks];
        entry[0] = Some(State::new());
        let mut finals: State = State::new();

        for bb in 0..nblocks {
            let Some(state0) = entry[bb].take() else {
                continue;
            };
            let mut state = state0;
            let records = &self.pta.records[bb];
            for (idx, rec) in records.iter().enumerate() {
                self.step(bb, idx, rec, &mut state);
            }
            match &self.body.blocks[bb].term {
                Terminator::Return => {
                    join_state(&mut finals, &state, self.opts, &mut self.graph.truncated);
                }
                Terminator::Goto(t) => {
                    merge_into(
                        &mut entry[t.0 as usize],
                        state,
                        self.opts,
                        &mut self.graph.truncated,
                    );
                }
                Terminator::Branch {
                    then_bb, else_bb, ..
                } => {
                    merge_into(
                        &mut entry[then_bb.0 as usize],
                        state.clone(),
                        self.opts,
                        &mut self.graph.truncated,
                    );
                    merge_into(
                        &mut entry[else_bb.0 as usize],
                        state,
                        self.opts,
                        &mut self.graph.truncated,
                    );
                }
            }
        }

        self.extract_edges(&finals);
    }

    /// Interns an event, growing the per-event tables.
    fn event(&mut self, site: CallSite, pos: Pos) -> EventId {
        let ev = Event { site, pos };
        if let Some(&id) = self.graph.index.get(&ev) {
            return id;
        }
        let id = EventId(self.graph.events.len() as u32);
        self.graph.events.push(ev);
        self.graph.index.insert(ev, id);
        self.graph.vals.push(Vec::new());
        self.graph.pts.push(Vec::new());
        id
    }

    fn note_pts(&mut self, ev: EventId, pts: &[ObjId]) {
        let pool = &self.pta.objs;
        let slot = &mut self.graph.pts[ev.0 as usize];
        for &o in pts {
            if !slot.contains(&o) {
                slot.push(o);
            }
        }
        slot.sort_unstable();
        let vals = pool.values_of(slot);
        self.graph.vals[ev.0 as usize] = vals;
    }

    fn note_site(
        &mut self,
        bb: usize,
        site: CallSite,
        method: MethodId,
        kind: SiteKind,
        type_tokens: Vec<Symbol>,
    ) {
        let guards = self.body.blocks[bb].guards.clone();
        let entry = self.graph.sites.entry(site).or_insert_with(|| SiteInfo {
            method,
            kind,
            nargs: method.arity,
            guards: Vec::new(),
            type_tokens,
            line: 0,
        });
        for g in guards {
            if !entry.guards.contains(&g) {
                entry.guards.push(g);
            }
        }
    }

    fn step(&mut self, bb: usize, idx: usize, rec: &InstrRecord, state: &mut State) {
        match rec {
            InstrRecord::Alloc { obj, .. } => {
                let instr = &self.body.blocks[bb].instrs[idx];
                let (site, method) = match instr {
                    Instr::New { site, class, .. } => (*site, alloc_method(*class)),
                    Instr::Lit { site, value, .. } => (*site, lit_method(*value)),
                    // Opaque allocations produce no events.
                    _ => return,
                };
                let kind = if matches!(instr, Instr::New { .. }) {
                    SiteKind::Alloc
                } else {
                    SiteKind::LitCtor
                };
                self.note_site(bb, site, method, kind, Vec::new());
                let ev = self.event(site, Pos::Ret);
                self.note_pts(ev, &[*obj]);
                state.entry(*obj).or_default().insert(vec![ev]);
            }
            InstrRecord::Call(call) => {
                let mut tokens = Vec::with_capacity(call.args.len() + 1);
                tokens.push(match &call.recv {
                    Some(pts) => type_token(&self.pta.objs, pts),
                    None => Symbol::intern("-"),
                });
                for a in &call.args {
                    tokens.push(type_token(&self.pta.objs, a));
                }
                self.note_site(bb, call.site, call.method, SiteKind::ApiCall, tokens);

                let mut positions: Vec<(Pos, &[ObjId])> = Vec::new();
                if let Some(r) = &call.recv {
                    positions.push((Pos::Recv, r));
                }
                for (i, a) in call.args.iter().enumerate() {
                    positions.push((Pos::Arg((i + 1) as u8), a));
                }
                positions.push((Pos::Ret, &call.ret));

                for (pos, pts) in positions {
                    if pts.is_empty() {
                        continue;
                    }
                    let ev = self.event(call.site, pos);
                    self.note_pts(ev, pts);
                    for &obj in pts {
                        append_event(state, obj, ev, self.opts, &mut self.graph.truncated);
                    }
                }
            }
            InstrRecord::Other => {}
        }
    }

    /// Extracts the edge set from the final histories: all ordered pairs of
    /// each history, kept only if consistently ordered within the object.
    fn extract_edges(&mut self, finals: &State) {
        let mut edges: HashMap<(EventId, EventId), u32> = HashMap::new();
        for histories in finals.values() {
            let mut fwd: HashMap<(EventId, EventId), u32> = HashMap::new();
            for h in histories {
                for i in 0..h.len() {
                    for j in (i + 1)..h.len() {
                        if h[i] == h[j] {
                            continue;
                        }
                        let d = (j - i) as u32;
                        fwd.entry((h[i], h[j]))
                            .and_modify(|old| *old = (*old).min(d))
                            .or_insert(d);
                    }
                }
            }
            for (&(a, b), &d) in &fwd {
                // Drop pairs ordered inconsistently within this object.
                if fwd.contains_key(&(b, a)) {
                    continue;
                }
                edges
                    .entry((a, b))
                    .and_modify(|old| *old = (*old).min(d))
                    .or_insert(d);
            }
        }
        let n = self.graph.events.len();
        self.graph.succs = vec![Vec::new(); n];
        self.graph.preds = vec![Vec::new(); n];
        for (&(a, b), &d) in &edges {
            self.graph.succs[a.0 as usize].push(b);
            self.graph.preds[b.0 as usize].push(a);
            self.graph.dist.insert((a, b), d);
        }
        for v in &mut self.graph.succs {
            v.sort_unstable();
        }
        for v in &mut self.graph.preds {
            v.sort_unstable();
        }
    }
}

/// Appends `ev` to every history of `obj`, starting a new history if none
/// exists. Histories at the length cap are frozen.
fn append_event(
    state: &mut State,
    obj: ObjId,
    ev: EventId,
    opts: &GraphOptions,
    truncated: &mut bool,
) {
    let histories = state.entry(obj).or_default();
    if histories.is_empty() {
        histories.insert(vec![ev]);
        return;
    }
    let mut next = HistorySet::new();
    for h in histories.iter() {
        if h.len() >= opts.max_history_len {
            *truncated = true;
            next.insert(h.clone());
        } else {
            let mut h2 = h.clone();
            h2.push(ev);
            next.insert(h2);
        }
    }
    *histories = next;
}

fn merge_into(slot: &mut Option<State>, state: State, opts: &GraphOptions, truncated: &mut bool) {
    match slot {
        None => *slot = Some(state),
        Some(dest) => join_state(dest, &state, opts, truncated),
    }
}

/// Joins two states via per-object set union, capping the history count.
fn join_state(dest: &mut State, src: &State, opts: &GraphOptions, truncated: &mut bool) {
    for (obj, hs) in src {
        let slot = dest.entry(*obj).or_default();
        for h in hs {
            slot.insert(h.clone());
        }
        while slot.len() > opts.max_histories {
            *truncated = true;
            let last = slot.iter().next_back().cloned().expect("non-empty");
            slot.remove(&last);
        }
    }
}

/// A coarse type token for γ features: the literal kind, allocated class,
/// or API return class observed in a points-to set.
fn type_token(pool: &ObjPool, pts: &[ObjId]) -> Symbol {
    let mut token: Option<Symbol> = None;
    for &o in pts {
        let t = match &pool.get(o).kind {
            ObjKind::Lit(l) => match l {
                uspec_lang::Literal::Str(_) => Symbol::intern("str"),
                uspec_lang::Literal::Int(_) => Symbol::intern("int"),
                uspec_lang::Literal::Bool(_) => Symbol::intern("bool"),
                uspec_lang::Literal::Null => Symbol::intern("null"),
            },
            ObjKind::New { class, .. } => *class,
            ObjKind::ApiRet(m) => m.class,
            ObjKind::Param { class, .. } => class.unwrap_or_else(|| Symbol::intern("?")),
            ObjKind::Opaque | ObjKind::Ghost { .. } => Symbol::intern("?"),
        };
        match token {
            None => token = Some(t),
            Some(prev) if prev == t => {}
            Some(_) => return Symbol::intern("?"),
        }
    }
    token.unwrap_or_else(|| Symbol::intern("?"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{PtaOptions, SpecDb};

    fn graph_of(src: &str) -> (Body, Pta, EventGraph) {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        let graph = build_event_graph(&body, &pta, &GraphOptions::default());
        (body, pta, graph)
    }

    /// Finds the single event for `method` at `pos`.
    fn ev(graph: &EventGraph, method: &str, pos: Pos) -> EventId {
        let mut found = None;
        for (site, info) in graph.sites() {
            if info.method.method.as_str() == method {
                if let Some(id) = graph.event_id(site, pos) {
                    assert!(found.is_none(), "multiple {method} events");
                    found = Some(id);
                }
            }
        }
        found.unwrap_or_else(|| panic!("no event {method}@{pos:?}"))
    }

    const FIG2: &str = r#"
        fn main(someApi) {
            map = new HashMap();
            map.put("key", someApi.getFile());
            name = map.get("key").getName();
        }
    "#;

    #[test]
    fn fig2_event_graph_structure() {
        let (_, _, g) = graph_of(FIG2);
        // The six abstract objects of Fig. 2 produce the events of Fig. 3.
        let new_map = ev(&g, "<new>", Pos::Ret);
        let put_recv = ev(&g, "put", Pos::Recv);
        let get_recv = ev(&g, "get", Pos::Recv);
        let put_arg2 = ev(&g, "put", Pos::Arg(2));
        let get_file_ret = ev(&g, "getFile", Pos::Ret);
        let get_ret = ev(&g, "get", Pos::Ret);
        let get_name_recv = ev(&g, "getName", Pos::Recv);

        // map: ⟨newMap,ret⟩ → ⟨put,0⟩ → ⟨get,0⟩.
        assert!(g.has_edge(new_map, put_recv));
        assert!(g.has_edge(new_map, get_recv));
        assert!(g.has_edge(put_recv, get_recv));
        // o1: ⟨getFile,ret⟩ → ⟨put,2⟩.
        assert!(g.has_edge(get_file_ret, put_arg2));
        // o2: ⟨get,ret⟩ → ⟨getName,0⟩.
        assert!(g.has_edge(get_ret, get_name_recv));
        // API-unaware: o1 and o2 are distinct, so no edge ⟨put,2⟩ → ⟨get,ret⟩.
        assert!(!g.has_edge(put_arg2, get_ret));
        assert!(!g.has_edge(get_file_ret, get_name_recv));
    }

    #[test]
    fn alloc_sets_match_paper_example() {
        let (_, _, g) = graph_of(FIG2);
        let get_ret = ev(&g, "get", Pos::Ret);
        let get_name_recv = ev(&g, "getName", Pos::Recv);
        // allocG(e1) = {⟨get,ret⟩} = allocG(⟨get,ret⟩) (§3.3).
        assert_eq!(g.alloc_set(get_name_recv), vec![get_ret]);
        assert_eq!(g.alloc_set(get_ret), vec![get_ret]);
        assert!(g.may_alias(get_name_recv, get_ret));
    }

    #[test]
    fn vals_follow_section_5_1() {
        let (_, _, g) = graph_of(FIG2);
        let put_arg1 = ev(&g, "put", Pos::Arg(1));
        let get_ret = ev(&g, "get", Pos::Ret);
        assert_eq!(g.vals(put_arg1).len(), 1, "literal value \"key\"");
        assert!(g.vals(get_ret).is_empty(), "valG(⟨m,ret⟩) = ∅ for API m");
        let get_arg1 = ev(&g, "get", Pos::Arg(1));
        assert!(
            g.equal_args(
                g.event(put_arg1).site,
                Pos::Arg(1),
                g.event(get_arg1).site,
                Pos::Arg(1)
            ),
            "both keys are \"key\""
        );
    }

    #[test]
    fn same_receiver_detected() {
        let (_, _, g) = graph_of(FIG2);
        let put = ev(&g, "put", Pos::Recv);
        let get = ev(&g, "get", Pos::Recv);
        assert!(g.same_receiver(g.event(put).site, g.event(get).site));
    }

    #[test]
    fn different_receivers_rejected() {
        let (_, _, g) = graph_of(
            r#"
            fn main() {
                m1 = new HashMap();
                m2 = new HashMap();
                m1.put("k", 1);
                x = m2.get("k");
            }
            "#,
        );
        let put = ev(&g, "put", Pos::Recv);
        let get = ev(&g, "get", Pos::Recv);
        assert!(!g.same_receiver(g.event(put).site, g.event(get).site));
    }

    #[test]
    fn branches_union_histories() {
        let (_, _, g) = graph_of(
            r#"
            fn main(c, db) {
                f = db.getFile("a");
                if (c) { f.touch(); }
                n = f.getName();
            }
            "#,
        );
        let ret = ev(&g, "getFile", Pos::Ret);
        let touch = ev(&g, "touch", Pos::Recv);
        let name = ev(&g, "getName", Pos::Recv);
        assert!(g.has_edge(ret, touch));
        assert!(g.has_edge(ret, name));
        assert!(g.has_edge(touch, name), "consistent order on taken path");
    }

    #[test]
    fn loops_do_not_self_edge() {
        let (_, _, g) = graph_of(
            r#"
            fn main(c, db) {
                f = db.getFile("a");
                while (c) { f.touch(); }
            }
            "#,
        );
        let touch = ev(&g, "touch", Pos::Recv);
        assert!(!g.has_edge(touch, touch));
    }

    #[test]
    fn edge_distance_counts_history_steps() {
        let (_, _, g) = graph_of(
            r#"
            fn main(db) {
                f = db.getFile("a");
                f.a();
                f.b();
                f.c();
            }
            "#,
        );
        let ret = ev(&g, "getFile", Pos::Ret);
        let a = ev(&g, "a", Pos::Recv);
        let c = ev(&g, "c", Pos::Recv);
        assert_eq!(g.edge_distance(ret, a), Some(1));
        assert_eq!(g.edge_distance(ret, c), Some(3));
        assert_eq!(g.edge_distance(a, c), Some(2));
    }

    #[test]
    fn transitive_closure_property() {
        let (_, _, g) = graph_of(
            r#"
            fn main(db) {
                f = db.getFile("a");
                f.a();
                f.b();
            }
            "#,
        );
        // For every pair of edges (x,y),(y,z) the edge (x,z) exists.
        for (x, y, _) in g.edges().collect::<Vec<_>>() {
            for &z in g.children(y) {
                assert!(g.has_edge(x, z), "closure violated: {x:?}->{y:?}->{z:?}");
            }
        }
    }

    #[test]
    fn guards_propagate_to_site_info() {
        let (_, _, g) = graph_of(
            r#"
            fn main(c, db) {
                if (c) { f = db.getFile("a"); }
            }
            "#,
        );
        let (site, info) = g
            .api_sites()
            .find(|(_, i)| i.method.method.as_str() == "getFile")
            .unwrap();
        assert_eq!(info.guards.len(), 1);
        assert!(g.event_id(site, Pos::Ret).is_some());
    }

    #[test]
    fn type_tokens_capture_receiver_and_args() {
        let (_, _, g) = graph_of(FIG2);
        let (_, info) = g
            .api_sites()
            .find(|(_, i)| i.method.method.as_str() == "put")
            .unwrap();
        assert_eq!(info.type_tokens.len(), 3);
        assert_eq!(info.type_tokens[0].as_str(), "HashMap");
        assert_eq!(info.type_tokens[1].as_str(), "str");
    }
}

#[cfg(test)]
mod equal_args_tests {
    use super::*;
    use crate::event::Pos;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{PtaOptions, SpecDb};

    #[test]
    fn object_arguments_compare_equal_via_points_to() {
        // ANTLR idiom: addChild(root, ch) then rulePostProcessing(root) —
        // root is an API return (no value), but the same abstract object.
        let src = r#"
            fn main() {
                ad = new Adaptor();
                root = ad.nil();
                ch = ad.create("tok");
                ad.addChild(root, ch);
                t = ad.rulePostProcessing(root);
            }
        "#;
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        let g = build_event_graph(&body, &pta, &GraphOptions::default());
        let add = g
            .api_sites()
            .find(|(_, i)| i.method.method.as_str() == "addChild")
            .map(|(s, _)| s)
            .unwrap();
        let rule = g
            .api_sites()
            .find(|(_, i)| i.method.method.as_str() == "rulePostProcessing")
            .map(|(s, _)| s)
            .unwrap();
        assert!(
            g.equal_args(rule, Pos::Arg(1), add, Pos::Arg(1)),
            "same root object"
        );
        assert!(
            !g.equal_args(rule, Pos::Arg(1), add, Pos::Arg(2)),
            "root != child"
        );
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::event::Pos;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{PtaOptions, SpecDb};

    fn graph_with(src: &str, opts: &GraphOptions) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, opts)
    }

    fn ev(g: &EventGraph, method: &str, pos: Pos) -> EventId {
        g.sites()
            .find(|(_, i)| i.method.method.as_str() == method)
            .and_then(|(s, _)| g.event_id(s, pos))
            .unwrap_or_else(|| panic!("no event {method}@{pos:?}"))
    }

    #[test]
    fn cyclic_loop_orders_drop_conflicting_edges() {
        // Inside a loop the unrolled history is a,b,a,b: the events occur
        // in *both* orders within the same history, so per §3.3 ("for all
        // histories of o ... e1 occurs before e2") neither direction is a
        // valid edge.
        let g = graph_with(
            r#"
            fn main(db, c) {
                f = db.getFile("x");
                while (c) { f.a(); f.b(); }
            }
            "#,
            &GraphOptions::default(),
        );
        let a = ev(&g, "a", Pos::Recv);
        let b = ev(&g, "b", Pos::Recv);
        assert!(!g.has_edge(a, b), "cyclically ordered pair dropped");
        assert!(!g.has_edge(b, a), "cyclically ordered pair dropped");
        // Both are still ordered after the allocation.
        let ret = ev(&g, "getFile", Pos::Ret);
        assert!(g.has_edge(ret, a));
        assert!(g.has_edge(ret, b));
    }

    #[test]
    fn distinct_branch_sites_keep_their_local_orders() {
        // Two branches with opposite call orders contain *different* call
        // sites (different syntactic statements), so each branch's order is
        // consistent for its own events — no conflict arises.
        let g = graph_with(
            r#"
            fn main(db, c) {
                f = db.getFile("x");
                if (c) { f.a(); f.b(); } else { f.b(); f.a(); }
            }
            "#,
            &GraphOptions::default(),
        );
        let a_sites = g
            .api_sites()
            .filter(|(_, i)| i.method.method.as_str() == "a")
            .count();
        assert_eq!(a_sites, 2, "one `a` site per branch");
    }

    #[test]
    fn history_count_cap_sets_truncated_flag() {
        // 2^6 = 64 histories from six sequential branches exceeds the cap.
        let mut src = String::from("fn main(db, c) {\n f = db.getFile(\"x\");\n");
        for i in 0..6 {
            src.push_str(&format!("if (c) {{ f.m{i}(); }}\n"));
        }
        src.push('}');
        let tight = GraphOptions {
            max_histories: 4,
            ..GraphOptions::default()
        };
        let g = graph_with(&src, &tight);
        assert!(g.is_truncated());
        let loose = GraphOptions {
            max_histories: 128,
            ..GraphOptions::default()
        };
        let g2 = graph_with(&src, &loose);
        assert!(!g2.is_truncated());
    }

    #[test]
    fn history_length_cap_freezes_histories() {
        let mut src = String::from("fn main(db) {\n f = db.getFile(\"x\");\n");
        for i in 0..20 {
            src.push_str(&format!("f.m{i}();\n"));
        }
        src.push('}');
        let tight = GraphOptions {
            max_history_len: 5,
            ..GraphOptions::default()
        };
        let g = graph_with(&src, &tight);
        assert!(g.is_truncated());
        // Early orderings survive; late ones are frozen out.
        let ret = ev(&g, "getFile", Pos::Ret);
        let m0 = ev(&g, "m0", Pos::Recv);
        assert!(g.has_edge(ret, m0));
    }

    #[test]
    fn unreachable_code_contributes_no_events() {
        let g = graph_with(
            r#"
            fn main(db) {
                return;
                f = db.getFile("x");
            }
            "#,
            &GraphOptions::default(),
        );
        assert!(
            g.sites()
                .all(|(_, i)| i.method.method.as_str() != "getFile"),
            "dead code must not produce events"
        );
    }

    #[test]
    fn unrolled_loop_copies_merge_into_one_site() {
        let g = graph_with(
            r#"
            fn main(db, c) {
                while (c) {
                    f = db.getFile("x");
                    f.use1();
                }
            }
            "#,
            &GraphOptions::default(),
        );
        // Exactly one getFile site despite two unrolled copies.
        let n = g
            .api_sites()
            .filter(|(_, i)| i.method.method.as_str() == "getFile")
            .count();
        assert_eq!(n, 1);
    }

    #[test]
    fn interprocedural_contexts_make_distinct_sites() {
        let g = graph_with(
            r#"
            fn fetch(db) { return db.getFile("z"); }
            fn main(db) {
                a = fetch(db);
                a.use1();
                b = fetch(db);
                b.use2();
            }
            "#,
            &GraphOptions::default(),
        );
        let sites: Vec<_> = g
            .api_sites()
            .filter(|(_, i)| i.method.method.as_str() == "getFile")
            .collect();
        assert_eq!(sites.len(), 2, "two calling contexts = two call sites");
        // Their returns do not alias (different fresh objects).
        let e1 = g.event_id(sites[0].0, Pos::Ret).unwrap();
        let e2 = g.event_id(sites[1].0, Pos::Ret).unwrap();
        assert!(!g.may_alias(e1, e2));
    }
}
