//! # uspec-graph
//!
//! Events, abstract histories and event graphs — §3 of the paper.
//!
//! An *event* `⟨m, x⟩` records that an object was used at position `x`
//! (receiver, argument, or return) of call site `m`. The *abstract history*
//! of an abstract object is the set of its event sequences; the *event
//! graph* connects events that are consistently ordered within an object's
//! histories, forming a transitively-closed DAG whose parent-less `ret`
//! events are allocation events. Event graphs are the language-independent
//! representation everything downstream (the probabilistic model, candidate
//! extraction, scoring) operates on.
//!
//! Construction consumes the instruction records of a converged
//! [`uspec_pta::Pta`] run, so the graph reflects exactly the points-to
//! assumptions of that run: the API-unaware baseline yields the graphs used
//! for learning, a spec-augmented run yields graphs with merged histories
//! (dashed edges of Fig. 3).

#![warn(missing_docs)]

pub mod build;
pub mod event;
pub mod graph;

pub use build::{build_event_graph, GraphOptions};
pub use event::{alloc_method, lit_method, Event, EventId, Pos, SiteInfo, SiteKind};
pub use graph::EventGraph;
