//! The event graph `G_P = (V, E)` (§3.3).

use std::collections::{BTreeMap, HashMap};
use uspec_lang::mir::CallSite;
use uspec_pta::{ObjId, Value};

use crate::event::{Event, EventId, Pos, SiteInfo, SiteKind};

/// The event graph of one program: nodes are events, edges encode the
/// consistent ordering of events within abstract-object histories. By
/// construction (all ordered pairs of every history are added) the edge set
/// is transitively closed, as required by §3.3.
#[derive(Clone, Debug, Default)]
pub struct EventGraph {
    pub(crate) events: Vec<Event>,
    pub(crate) index: HashMap<Event, EventId>,
    // BTreeMap, not HashMap: extraction iterates sites, and Γ_S list order
    // must be reproducible run-to-run and across shard layouts.
    pub(crate) sites: BTreeMap<CallSite, SiteInfo>,
    pub(crate) succs: Vec<Vec<EventId>>,
    pub(crate) preds: Vec<Vec<EventId>>,
    pub(crate) dist: HashMap<(EventId, EventId), u32>,
    /// `val_G(e)` per event (§5.1).
    pub(crate) vals: Vec<Vec<Value>>,
    /// Observed points-to set per event.
    pub(crate) pts: Vec<Vec<ObjId>>,
    /// Whether history caps were hit during construction.
    pub(crate) truncated: bool,
}

impl EventGraph {
    /// Number of events (nodes).
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of (directed, transitively-closed) edges.
    pub fn num_edges(&self) -> usize {
        self.dist.len()
    }

    /// Whether history caps were hit during construction (the graph may
    /// then be missing some orderings).
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// The event data for an id.
    pub fn event(&self, id: EventId) -> Event {
        self.events[id.0 as usize]
    }

    /// Looks up the id of `⟨site, pos⟩` if the event exists.
    pub fn event_id(&self, site: CallSite, pos: Pos) -> Option<EventId> {
        self.index.get(&Event { site, pos }).copied()
    }

    /// Iterates over all event ids.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> {
        (0..self.events.len() as u32).map(EventId)
    }

    /// Static info of a call site.
    pub fn site_info(&self, site: CallSite) -> Option<&SiteInfo> {
        self.sites.get(&site)
    }

    /// Iterates over all call sites with their info.
    pub fn sites(&self) -> impl Iterator<Item = (CallSite, &SiteInfo)> {
        self.sites.iter().map(|(s, i)| (*s, i))
    }

    /// Iterates over API call sites only (excluding allocation and literal
    /// pseudo-sites).
    pub fn api_sites(&self) -> impl Iterator<Item = (CallSite, &SiteInfo)> {
        self.sites().filter(|(_, i)| i.kind == SiteKind::ApiCall)
    }

    /// Whether the edge `(a, b)` is present.
    pub fn has_edge(&self, a: EventId, b: EventId) -> bool {
        self.dist.contains_key(&(a, b))
    }

    /// Minimum number of history steps between two events connected by an
    /// edge.
    pub fn edge_distance(&self, a: EventId, b: EventId) -> Option<u32> {
        self.dist.get(&(a, b)).copied()
    }

    /// Direct successors (because `E` is transitively closed these are all
    /// events after `e` on some object).
    pub fn children(&self, e: EventId) -> &[EventId] {
        &self.succs[e.0 as usize]
    }

    /// Direct predecessors; `parents_G(e)` of the paper.
    pub fn parents(&self, e: EventId) -> &[EventId] {
        &self.preds[e.0 as usize]
    }

    /// `alloc_G(e)` (§3.3): the allocation events of the object used at `e`
    /// — parent-less `⟨m, ret⟩` events among `parents(e) ∪ {e}`.
    pub fn alloc_set(&self, e: EventId) -> Vec<EventId> {
        let mut out = Vec::new();
        let is_alloc = |id: EventId| {
            self.events[id.0 as usize].pos == Pos::Ret && self.preds[id.0 as usize].is_empty()
        };
        for &p in &self.preds[e.0 as usize] {
            if is_alloc(p) {
                out.push(p);
            }
        }
        if is_alloc(e) {
            out.push(e);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Graph-level may-alias (§3.3): `alloc_G(e1) ∩ alloc_G(e2) ≠ ∅`.
    pub fn may_alias(&self, e1: EventId, e2: EventId) -> bool {
        let a = self.alloc_set(e1);
        let b = self.alloc_set(e2);
        a.iter().any(|x| b.binary_search(x).is_ok())
    }

    /// `val_G(e)` (§5.1).
    pub fn vals(&self, e: EventId) -> &[Value] {
        &self.vals[e.0 as usize]
    }

    /// The abstract objects observed at the event.
    pub fn pts(&self, e: EventId) -> &[ObjId] {
        &self.pts[e.0 as usize]
    }

    /// `equal_G(m1, x1, m2, x2)` (§5.1): the argument value sets intersect.
    ///
    /// We additionally treat arguments as equal when their observed
    /// points-to sets intersect: the same abstract object is trivially "the
    /// same object or literal value" even when it carries no known value
    /// (e.g. an API-returned object passed to both calls, as in the ANTLR
    /// `addChild`/`rulePostProcessing` idiom of Tab. 3).
    pub fn equal_args(&self, m1: CallSite, x1: Pos, m2: CallSite, x2: Pos) -> bool {
        let (Some(e1), Some(e2)) = (self.event_id(m1, x1), self.event_id(m2, x2)) else {
            return false;
        };
        let v1 = self.vals(e1);
        let v2 = self.vals(e2);
        if v1.iter().any(|v| v2.contains(v)) {
            return true;
        }
        let p1 = self.pts(e1);
        let p2 = self.pts(e2);
        p1.iter().any(|o| p2.binary_search(o).is_ok())
    }

    /// Same-receiver check, condition (C2) of §5.1: the receiver events'
    /// observed points-to sets are equal and non-empty.
    pub fn same_receiver(&self, m1: CallSite, m2: CallSite) -> bool {
        let (Some(e1), Some(e2)) = (self.event_id(m1, Pos::Recv), self.event_id(m2, Pos::Recv))
        else {
            return false;
        };
        let p1 = self.pts(e1);
        !p1.is_empty() && p1 == self.pts(e2)
    }

    /// All edges as `(from, to, distance)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (EventId, EventId, u32)> + '_ {
        self.dist.iter().map(|(&(a, b), &d)| (a, b, d))
    }

    /// Fills [`SiteInfo::line`] from a `NodeId → 1-based line` table built
    /// against the file's source. The builder works on lowered MIR and has
    /// no source text, so line annotation is a separate post-pass; sites
    /// whose node is absent from the table keep `line = 0` (unknown).
    pub fn annotate_lines(&mut self, lines: &HashMap<uspec_lang::ast::NodeId, u32>) {
        for (site, info) in self.sites.iter_mut() {
            if let Some(&line) = lines.get(&site.node) {
                info.line = line;
            }
        }
    }
}

impl EventGraph {
    /// Renders the event graph in Graphviz DOT format: one box per call
    /// site containing its events (as in Fig. 3 of the paper), solid edges
    /// for history orderings.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "digraph event_graph {\n  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n",
        );
        // Group events by call site into clusters.
        let mut sites: Vec<CallSite> = self.sites.keys().copied().collect();
        sites.sort_by_key(|s| (s.node, s.ctx));
        for (i, site) in sites.iter().enumerate() {
            let info = &self.sites[site];
            let _ = writeln!(out, "  subgraph cluster_{i} {{");
            let _ = writeln!(out, "    label=\"{}\"; style=rounded;", info.method);
            for e in self.event_ids() {
                let ev = self.event(e);
                if ev.site == *site {
                    let _ = writeln!(
                        out,
                        "    e{} [label=\"⟨{},{}⟩\"];",
                        e.0, info.method.method, ev.pos
                    );
                }
            }
            let _ = writeln!(out, "  }}");
        }
        let mut edges: Vec<(EventId, EventId, u32)> = self.edges().collect();
        edges.sort();
        for (a, b, d) in edges {
            let style = if d == 1 { "solid" } else { "dashed" };
            let _ = writeln!(out, "  e{} -> e{} [style={style}];", a.0, b.0);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use crate::build::{build_event_graph, GraphOptions};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    #[test]
    fn dot_output_is_well_formed() {
        let program = parse("fn main(db) { f = db.getFile(\"a\"); n = f.getName(); }").unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        let g = build_event_graph(&body, &pta, &GraphOptions::default());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph event_graph {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("getFile"));
        assert!(dot.matches(" -> ").count() >= g.num_edges());
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}

impl EventGraph {
    /// The paper's `ctx_{G,k}(e)` (§4.1): all paths of length at most `k`
    /// that contain `e`, as explicit event sequences. The length-1 path
    /// `(e)` is always included. Because `E` is transitively closed the set
    /// can be large; enumeration stops after `cap` paths.
    pub fn context_paths(&self, e: EventId, k: usize, cap: usize) -> Vec<Vec<EventId>> {
        let mut out = vec![vec![e]];
        if k < 2 {
            return out;
        }
        // A path containing e = (backward extension) ++ [e] ++ (forward
        // extension) with total length ≤ k. Enumerate backward prefixes and
        // forward suffixes up to the length budget.
        let mut prefixes: Vec<Vec<EventId>> = vec![vec![]];
        let mut frontier = vec![vec![]];
        for _ in 1..k {
            let mut next = Vec::new();
            for path in &frontier {
                let head = path.first().copied().unwrap_or(e);
                for &p in self.parents(head) {
                    let mut np = vec![p];
                    np.extend_from_slice(path);
                    next.push(np);
                }
            }
            prefixes.extend(next.iter().cloned());
            frontier = next;
            if prefixes.len() > cap {
                break;
            }
        }
        let mut suffixes: Vec<Vec<EventId>> = vec![vec![]];
        let mut frontier = vec![vec![]];
        for _ in 1..k {
            let mut next = Vec::new();
            for path in &frontier {
                let tail = path.last().copied().unwrap_or(e);
                for &c in self.children(tail) {
                    let mut np = path.clone();
                    np.push(c);
                    next.push(np);
                }
            }
            suffixes.extend(next.iter().cloned());
            frontier = next;
            if suffixes.len() > cap {
                break;
            }
        }
        for pre in &prefixes {
            for suf in &suffixes {
                if pre.is_empty() && suf.is_empty() {
                    continue; // already added as the length-1 path
                }
                if pre.len() + 1 + suf.len() > k {
                    continue;
                }
                let mut path = pre.clone();
                path.push(e);
                path.extend_from_slice(suf);
                out.push(path);
                if out.len() >= cap {
                    return out;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod ctx_tests {
    use crate::build::{build_event_graph, GraphOptions};
    use crate::event::Pos;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph() -> super::EventGraph {
        let program = parse(
            r#"
            fn main(db) {
                f = db.getFile("a");
                f.a();
                f.b();
            }
            "#,
        )
        .unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    #[test]
    fn paper_example_ctx2_of_get_name_style_event() {
        // For the last event in a chain, ctx_{G,2} contains the length-1
        // path plus one (parent, e) path per parent.
        let g = graph();
        let b = g
            .sites()
            .find(|(_, i)| i.method.method.as_str() == "b")
            .and_then(|(s, _)| g.event_id(s, Pos::Recv))
            .unwrap();
        let paths = g.context_paths(b, 2, 100);
        assert!(paths.contains(&vec![b]), "length-1 path present");
        for p in &paths {
            assert!(p.len() <= 2);
            assert!(p.contains(&b), "every path contains the anchor");
            if p.len() == 2 {
                assert!(g.has_edge(p[0], p[1]), "paths follow edges");
            }
        }
        // parents(b) = {getFile-ret, a-recv} → 2 incoming paths + (b).
        assert_eq!(paths.len(), 1 + g.parents(b).len());
    }

    #[test]
    fn ctx3_contains_longer_paths() {
        let g = graph();
        let ret = g
            .sites()
            .find(|(_, i)| i.method.method.as_str() == "getFile")
            .and_then(|(s, _)| g.event_id(s, Pos::Ret))
            .unwrap();
        let k2 = g.context_paths(ret, 2, 100).len();
        let k3 = g.context_paths(ret, 3, 100).len();
        assert!(k3 > k2, "k=3 adds paths: {k2} vs {k3}");
        for p in g.context_paths(ret, 3, 100) {
            assert!(p.len() <= 3);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn cap_bounds_enumeration() {
        let g = graph();
        let ret = g
            .sites()
            .find(|(_, i)| i.method.method.as_str() == "getFile")
            .and_then(|(s, _)| g.event_id(s, Pos::Ret))
            .unwrap();
        assert!(g.context_paths(ret, 4, 3).len() <= 3);
    }
}
