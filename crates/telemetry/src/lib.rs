//! Run-wide telemetry: spans, a metrics registry, a leveled logger, and
//! machine-readable run reports.
//!
//! The design goal is that telemetry stays **on by default**: every hot-path
//! primitive is a relaxed atomic behind a single branch on [`enabled`], the
//! registry mutex is touched only at registration and snapshot time (call
//! sites cache `&'static` metric handles in a local `OnceLock`), and benches
//! assert end-to-end overhead under 3%.
//!
//! Three layers:
//!
//! * [`span!`] — RAII wall-clock timing with nesting and thread-safe
//!   aggregation per span name. At `debug` log level, span entry/exit is
//!   echoed as indented trace lines.
//! * [`metrics`] — counters, gauges, and histograms registered by name in a
//!   process-global registry, snapshotted into a [`metrics::MetricsSnapshot`].
//! * [`report`] — the versioned [`report::RunReport`] schema serialized by
//!   `--metrics-out`, split into deterministic `counters` (byte-identical
//!   across shard sizes for the same seed) and machine-local `timings`.
//!
//! A fourth, opt-in layer: [`trace`] buffers completed spans as Chrome
//! `trace_events` when armed by the CLI's `--trace-out`, for timeline
//! visualization in Perfetto.
//!
//! Two kill switches: [`set_enabled`] flips a runtime `AtomicBool` (used by
//! the overhead bench), and the `off` cargo feature makes [`enabled`] a
//! compile-time `false` so the optimizer erases every telemetry branch. The
//! leveled [`log`] layer is user-facing output and ignores both switches.

pub mod attribution;
pub mod ledger;
pub mod log;
pub mod metrics;
pub mod perf;
pub mod report;
pub mod span;
pub mod trace;
pub mod window;

pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use report::{
    AttributedJob, AttributionSection, CacheSection, CandidateCounters, CorpusCounters,
    DiagnosticsSection, InvariantSections, JobKindStats, JobsSection, KindAttribution,
    ModelCounters, ProvenanceSection, PtaCounters, ReportCounters, RunReport, ServeSection,
    SloSection, TimingsSection, REPORT_SCHEMA_VERSION,
};
pub use span::{SpanAgg, SpanGuard, SpanStat};
pub use window::{SlidingWindow, SlowLog, SlowQuery, WindowSnapshot};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether metric and span recording is active. Constant `false` when the
/// crate is built with the `off` feature; otherwise a relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    !cfg!(feature = "off") && ENABLED.load(Ordering::Relaxed)
}

/// Runtime kill switch for metric and span recording. Logging is
/// unaffected. No-op (stuck `false`) under the `off` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zeroes every registered metric and span aggregate, and clears (and
/// disarms) the span timeline buffer. Handles stay valid.
///
/// The registry is process-global, so callers that need per-run numbers
/// (tests, benches timing several configurations) reset between runs.
pub fn reset() {
    metrics::global().reset();
    span::reset();
    trace::reset();
    attribution::reset();
    window::reset_global();
}
