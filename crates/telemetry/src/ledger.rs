//! The run ledger: one compact, schema-versioned record per instrumented
//! run, designed to be appended to `<cache-dir>/ledger/` and compared
//! across history.
//!
//! A [`LedgerEntry`] is a projection of the [`RunReport`] along the same
//! determinism boundary the report itself pins:
//!
//! * `invariant` — command, engine, the deterministic counter sections,
//!   and a content digest of the full serialized
//!   [`RunReport::invariant`] sections. Two runs over the same corpus,
//!   seed, and options must produce byte-identical `invariant` sections
//!   regardless of shard size or cache state; `uspec perf diff` compares
//!   these exactly.
//! * `timings` — wall-clock totals plus the cache, jobs, and attribution
//!   sections. Machine-local; `uspec perf diff` compares these with a
//!   noise floor, and `uspec perf check` enforces budgets over them.
//! * `envelope` — where the run happened: `git describe` of the working
//!   tree, host name, wall-clock timestamp, and the corpus content
//!   fingerprint, so ledger entries and `BENCH_*.json` history are
//!   joinable.
//!
//! Persistence lives in `uspec-store` (`LedgerDir`); this module only
//! defines the record and its derivation so that tests and tools can
//! build entries without a store.

use serde::{Deserialize, Serialize};

use crate::report::{
    AttributionSection, CacheSection, JobsSection, ReportCounters, RunReport, ServeSection,
};

/// Version of the ledger record layout. Bump on any breaking change;
/// `tools/check_ledger.rs` pins the full key set against drift.
///
/// History: 1 — initial schema (report schema 5 sections); 2 — `timings`
/// gained the `serve` section (report schema 7: daemon traffic, latency
/// windows, slow queries, SLO accounting), so `uspec perf check` can
/// enforce serve budgets from the ledger alone.
pub const LEDGER_SCHEMA_VERSION: u32 = 2;

/// One ledger record: a run's identity, deterministic outcome, and cost.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct LedgerEntry {
    /// Ledger schema version ([`LEDGER_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Where and when the run happened.
    pub envelope: LedgerEnvelope,
    /// Deterministic outcome; byte-identical across shard sizes and cache
    /// states for one corpus + seed + options.
    pub invariant: LedgerInvariant,
    /// Machine-local cost of this particular run.
    pub timings: LedgerTimings,
}

/// Provenance of a ledger entry: enough to join it against git history,
/// bench snapshots, and other hosts' ledgers.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct LedgerEnvelope {
    /// `git describe --always --dirty` of the tree that ran, or
    /// `"unknown"` outside a git checkout.
    pub git_rev: String,
    /// Host name (`"unknown"` when undeterminable).
    pub host: String,
    /// Milliseconds since the Unix epoch at entry creation.
    pub timestamp_ms: u64,
    /// Hex content fingerprint of the analyzed corpus.
    pub corpus_fp: String,
}

/// The deterministic sections of a run, plus a digest over the *complete*
/// invariant serialization so drift in fields not broken out here (e.g.
/// diagnostics text) is still detected.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct LedgerInvariant {
    /// CLI command (`learn`, `eval`, `analyze`).
    pub command: String,
    /// Points-to engine used.
    pub engine: String,
    /// Hex digest of the serialized [`RunReport::invariant`] sections.
    pub digest: String,
    /// Deterministic counter sections, verbatim from the report.
    pub counters: ReportCounters,
    /// Total problems observed (from the diagnostics section).
    pub total_problems: u64,
    /// Specs with recorded evidence (from the provenance section).
    pub specs: u64,
    /// Scored evidence rows across all specs.
    pub evidence_total: u64,
}

/// Machine-local cost sections, verbatim from the report.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct LedgerTimings {
    /// End-to-end command wall time in seconds.
    pub total_seconds: f64,
    /// Artifact-store activity.
    pub cache: CacheSection,
    /// Job-engine activity.
    pub jobs: JobsSection,
    /// Per-job cost attribution.
    pub attribution: AttributionSection,
    /// Spec-query daemon activity (all zeros for batch commands).
    pub serve: ServeSection,
}

impl LedgerEntry {
    /// Projects a [`RunReport`] into a ledger entry under `envelope`.
    pub fn from_report(report: &RunReport, envelope: LedgerEnvelope) -> LedgerEntry {
        LedgerEntry {
            schema: LEDGER_SCHEMA_VERSION,
            envelope,
            invariant: LedgerInvariant {
                command: report.command.clone(),
                engine: report.engine.clone(),
                digest: invariant_digest(report),
                counters: report.counters.clone(),
                total_problems: report.diagnostics.total_problems,
                specs: report.provenance.specs,
                evidence_total: report.provenance.evidence_total,
            },
            timings: LedgerTimings {
                total_seconds: report.timings.total_seconds,
                cache: report.timings.cache.clone(),
                jobs: report.timings.jobs.clone(),
                attribution: report.timings.attribution.clone(),
                serve: report.timings.serve.clone(),
            },
        }
    }
}

/// Hex digest (32 chars) of the serialized invariant sections of
/// `report`. Equal digests ⇒ byte-identical deterministic outcome.
pub fn invariant_digest(report: &RunReport) -> String {
    let json =
        serde_json::to_string(&report.invariant()).expect("invariant sections always serialize");
    digest_hex(json.as_bytes())
}

/// 128-bit content digest as 32 hex chars: two FNV-1a lanes over the bytes
/// with distinct offset bases. Not cryptographic — a drift tripwire, like
/// the store's fingerprints (which this crate sits below and so cannot
/// reuse).
fn digest_hex(bytes: &[u8]) -> String {
    const PRIME: u64 = 0x100000001b3;
    let mut lo: u64 = 0xcbf29ce484222325;
    let mut hi: u64 = 0x6c62272e07bb0142;
    for &b in bytes {
        lo = (lo ^ b as u64).wrapping_mul(PRIME);
        hi = (hi ^ (b as u64).rotate_left(17)).wrapping_mul(PRIME);
    }
    format!("{lo:016x}{hi:016x}")
}

/// `git describe --always --dirty` of the current working tree, or
/// `"unknown"` when git or the checkout is unavailable.
pub fn git_rev() -> String {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output();
    match out {
        Ok(out) if out.status.success() => {
            let rev = String::from_utf8_lossy(&out.stdout).trim().to_owned();
            if rev.is_empty() {
                "unknown".to_owned()
            } else {
                rev
            }
        }
        _ => "unknown".to_owned(),
    }
}

/// Best-effort host name: the kernel's hostname file, then the `HOSTNAME`
/// environment variable, then `"unknown"`.
pub fn host_name() -> String {
    if let Ok(name) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let name = name.trim();
        if !name.is_empty() {
            return name.to_owned();
        }
    }
    match std::env::var("HOSTNAME") {
        Ok(name) if !name.trim().is_empty() => name.trim().to_owned(),
        _ => "unknown".to_owned(),
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
pub fn timestamp_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Builds an envelope for the current process: live git revision, host,
/// and timestamp around the caller-supplied corpus fingerprint.
pub fn envelope(corpus_fp: &str) -> LedgerEnvelope {
    LedgerEnvelope {
        git_rev: git_rev(),
        host: host_name(),
        timestamp_ms: timestamp_ms(),
        corpus_fp: corpus_fp.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_envelope() -> LedgerEnvelope {
        LedgerEnvelope {
            git_rev: "test".to_owned(),
            host: "test".to_owned(),
            timestamp_ms: 1,
            corpus_fp: "00".repeat(16),
        }
    }

    #[test]
    fn entry_round_trips_and_projects_report() {
        let mut report = RunReport::new("eval", "worklist");
        report.counters.corpus.files = 120;
        report.diagnostics.total_problems = 3;
        report.provenance.specs = 2;
        report.provenance.evidence_total = 40;
        report.timings.total_seconds = 0.5;
        report.timings.serve.requests = 7;
        report.timings.serve.slo.breaches = 1;
        report.timings.serve.slo.p99_breaches = 1;
        let entry = LedgerEntry::from_report(&report, test_envelope());
        assert_eq!(entry.schema, LEDGER_SCHEMA_VERSION);
        assert_eq!(entry.timings.serve.requests, 7);
        assert_eq!(entry.timings.serve.slo.breaches, 1);
        assert_eq!(entry.invariant.command, "eval");
        assert_eq!(entry.invariant.counters.corpus.files, 120);
        assert_eq!(entry.invariant.total_problems, 3);
        assert_eq!(entry.invariant.specs, 2);
        assert_eq!(entry.invariant.evidence_total, 40);
        assert_eq!(entry.timings.total_seconds, 0.5);
        let json = serde_json::to_string_pretty(&entry).unwrap();
        let back: LedgerEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn digest_tracks_invariant_sections_only() {
        let mut report = RunReport::new("eval", "worklist");
        report.counters.corpus.files = 120;
        let a = invariant_digest(&report);
        assert_eq!(a.len(), 32);
        assert!(a.bytes().all(|b| b.is_ascii_hexdigit()));
        // Timings do not move the digest.
        report.timings.total_seconds = 42.0;
        assert_eq!(invariant_digest(&report), a);
        // Counters do.
        report.counters.corpus.files = 121;
        assert_ne!(invariant_digest(&report), a);
    }

    #[test]
    fn envelope_helpers_never_panic() {
        let env = envelope("deadbeef");
        assert!(!env.git_rev.is_empty());
        assert!(!env.host.is_empty());
        assert_eq!(env.corpus_fp, "deadbeef");
    }
}
