//! Counters, gauges, and histograms in a process-global registry.
//!
//! Hot-path updates are relaxed atomics guarded by one branch on
//! [`crate::enabled`]; the registry's mutex is taken only when a metric is
//! first registered or when a snapshot/reset walks the registry. Call
//! sites cache the returned `&'static` handle in a local `OnceLock` via
//! the [`counter!`] / [`gauge!`] / [`histogram!`] macros, so steady-state
//! cost is one load, one branch, and one `fetch_add`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter. No-op when telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one. No-op when telemetry is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write or high-water value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge. No-op when telemetry is disabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger (high-water tracking). No-op when
    /// telemetry is disabled.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if crate::enabled() {
            self.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two histogram buckets: bucket 0 holds zeros and
/// bucket `i` holds values in `[2^(i-1), 2^i)`, so 65 covers all of `u64`.
pub(crate) const BUCKETS: usize = 65;

/// Power-of-two bucketed distribution of `u64` samples.
///
/// The per-bucket increment sits behind the same [`crate::enabled`] branch
/// as every other metric, keeping histograms cheap enough to leave
/// registered on hot paths.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index for `v`: 0 for zero, otherwise `64 - leading_zeros`, i.e.
/// one plus the position of the highest set bit.
pub(crate) fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`0` for the zero bucket).
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample. No-op when telemetry is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies the current distribution out. Only non-empty buckets are
    /// kept, each as `(inclusive_upper_bound, count)`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let raw: [u64; BUCKETS] = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        snapshot_from_raw(
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            &raw,
        )
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Builds a [`HistogramSnapshot`] (with percentiles) from a raw bucket
/// array — shared with the sliding windows, which merge several slots'
/// buckets before taking quantiles.
pub(crate) fn snapshot_from_raw(count: u64, sum: u64, raw: &[u64; BUCKETS]) -> HistogramSnapshot {
    let mut buckets = Vec::new();
    for (i, &n) in raw.iter().enumerate() {
        if n > 0 {
            buckets.push((bucket_bound(i), n));
        }
    }
    let mut snap = HistogramSnapshot {
        count,
        sum,
        buckets,
        p50: 0,
        p95: 0,
        p99: 0,
    };
    snap.p50 = snap.quantile(0.50);
    snap.p95 = snap.quantile(0.95);
    snap.p99 = snap.quantile(0.99);
    snap
}

/// Serializable copy of a [`Histogram`]: sample count, sample sum, the
/// non-empty power-of-two buckets as `(inclusive_upper_bound, count)`, and
/// bucket-resolution percentiles.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Non-empty buckets, `(inclusive_upper_bound, count)`, bound-sorted.
    pub buckets: Vec<(u64, u64)>,
    /// Median, as the upper bound of the bucket holding the p50 sample.
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (nearest-rank over the bucketed distribution; 0 when empty). The
    /// result over-estimates the true quantile by at most the bucket
    /// width — the price of constant-size histograms.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound;
            }
        }
        self.buckets.last().map(|&(bound, _)| bound).unwrap_or(0)
    }
}

/// Point-in-time copy of every registered metric.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram name → distribution.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Name-keyed registry of metrics. Handles are `&'static` (leaked once at
/// registration) so hot paths never re-lock.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

impl Registry {
    /// Returns the counter registered under `name`, creating it on first
    /// use. Takes the registry lock — cache the handle (see [`counter!`]).
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::default())))
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Gauge::default())))
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::default())))
    }

    /// Copies every registered metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every registered metric; handles stay valid.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Returns the `&'static Counter` for a literal name, registering on first
/// execution of the call site and caching the handle thereafter.
///
/// ```
/// uspec_telemetry::counter!("doc.items").add(3);
/// assert!(uspec_telemetry::counter!("doc.items").get() >= 3);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::global().counter($name))
    }};
}

/// Returns the `&'static Gauge` for a literal name (cached per call site).
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::global().gauge($name))
    }};
}

/// Returns the `&'static Histogram` for a literal name (cached per call
/// site).
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-global registry with every other test in
    // this binary, so each uses names unique to itself and never calls
    // `reset` on the global registry.

    #[test]
    fn counter_accumulates() {
        let c = counter!("test.metrics.counter_accumulates");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same handle through the registry.
        assert_eq!(
            global().counter("test.metrics.counter_accumulates").get(),
            5
        );
    }

    #[test]
    fn gauge_set_and_max() {
        let g = gauge!("test.metrics.gauge_set_and_max");
        g.set(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);
        g.record_max(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_buckets_power_of_two() {
        let h = histogram!("test.metrics.histogram_buckets");
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1010);
        // 0 → bound 0; 1 → bound 1; 2,3 → bound 3; 4 → bound 7; 1000 → bound 1023.
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]
        );
        // Nearest-rank over 6 samples: p50 is the 3rd sample (bucket bound
        // 3), p95 and p99 are the 6th (bucket bound 1023).
        assert_eq!(snap.p50, 3);
        assert_eq!(snap.p95, 1023);
        assert_eq!(snap.p99, 1023);
    }

    #[test]
    fn quantile_nearest_rank() {
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.99), 0);
        let snap = HistogramSnapshot {
            count: 100,
            sum: 0,
            buckets: vec![(1, 90), (1023, 10)],
            p50: 0,
            p95: 0,
            p99: 0,
        };
        assert_eq!(snap.quantile(0.50), 1);
        assert_eq!(snap.quantile(0.90), 1);
        assert_eq!(snap.quantile(0.95), 1023);
    }

    #[test]
    fn snapshot_includes_registered_names() {
        counter!("test.metrics.snapshot_presence").add(2);
        let snap = global().snapshot();
        assert_eq!(snap.counters["test.metrics.snapshot_presence"], 2);
    }
}
