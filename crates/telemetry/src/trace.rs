//! Span timeline export in Chrome `trace_events` format.
//!
//! When armed (the CLI's `--trace-out FILE.json`), every completed
//! [`span!`](crate::span!) additionally appends one *complete* (`ph: "X"`)
//! event — name, start timestamp relative to the arming instant, and
//! duration, both in microseconds — to a process-global buffer.
//! [`export_json`] renders the buffer as a `{"traceEvents": [...]}`
//! document loadable in Perfetto / `chrome://tracing`.
//!
//! Recording is gated on a single relaxed [`AtomicBool`] checked in the
//! span-drop path, so the default (disarmed) cost is one predictable
//! branch — the telemetry overhead budget is unaffected unless a timeline
//! was explicitly requested. Timestamps are wall-clock and the buffer is
//! append-ordered by completion, so the export is machine-local by nature
//! (like the report's `timings` section) and never crosses the
//! determinism boundary.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ARMED: AtomicBool = AtomicBool::new(false);

/// One complete-duration (`ph: "X"`) Chrome trace event.
#[derive(Clone, Debug)]
struct TraceEvent {
    name: String,
    ts: u64,
    dur: u64,
    tid: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn buffer() -> &'static Mutex<Vec<TraceEvent>> {
    static BUF: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    BUF.get_or_init(Mutex::default)
}

thread_local! {
    static TID: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// Starts timeline recording. Idempotent; pins the trace epoch on first
/// call so all timestamps share one origin.
pub fn arm() {
    epoch();
    ARMED.store(true, Ordering::Relaxed);
}

/// Whether spans are currently recorded into the timeline.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Appends one completed span. `start` may predate the arming instant
/// (a span armed mid-flight); its timestamp saturates to the epoch.
pub(crate) fn record(name: &str, start: Instant, dur_ns: u64) {
    let ts = start
        .checked_duration_since(epoch())
        .map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64);
    let ev = TraceEvent {
        name: name.to_owned(),
        ts,
        dur: dur_ns / 1_000,
        tid: TID.with(|t| *t),
    };
    buffer().lock().unwrap().push(ev);
}

/// JSON string escaping for event names (span names are code literals, but
/// the format must stay well-formed for any input).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the buffered timeline as a Chrome `trace_events` JSON document
/// (`{"traceEvents": [...]}`), events sorted by start timestamp (ties by
/// thread id, then name) so consumers see a monotonic timeline.
pub fn export_json() -> String {
    let mut events = buffer().lock().unwrap().clone();
    events.sort_by(|a, b| {
        a.ts.cmp(&b.ts)
            .then_with(|| a.tid.cmp(&b.tid))
            .then_with(|| a.name.cmp(&b.name))
    });
    let mut out = String::from("{\"traceEvents\": [");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
            escape(&ev.name),
            ev.ts,
            ev.dur,
            ev.tid
        ));
    }
    if !events.is_empty() {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Number of buffered events (test hook).
pub fn len() -> usize {
    buffer().lock().unwrap().len()
}

/// Clears the buffered timeline and disarms recording.
pub fn reset() {
    ARMED.store(false, Ordering::Relaxed);
    buffer().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // The buffer and armed flag are process-global; this single test owns
    // the whole lifecycle to avoid cross-test interference.
    #[test]
    fn armed_spans_export_sorted_complete_events() {
        reset();
        {
            let _s = crate::span!("trace.test.disarmed");
        }
        assert_eq!(len(), 0, "disarmed spans record nothing");

        arm();
        assert!(armed());
        {
            let _outer = crate::span!("trace.test.outer");
            let _inner = crate::span!("trace.test.inner");
        }
        assert_eq!(len(), 2);
        let json = export_json();
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("trace.test.outer"));
        assert!(json.contains("trace.test.inner"));

        reset();
        assert!(!armed());
        assert_eq!(len(), 0);
    }
}
