//! Comparing ledger entries and enforcing performance budgets.
//!
//! Two consumers sit on top of the run ledger:
//!
//! * [`diff`] — compares two [`LedgerEntry`] records along the same
//!   determinism boundary the ledger stores: invariant counters are
//!   compared *exactly* (any drift is a correctness signal, not noise),
//!   while timings are compared under a noise floor
//!   ([`NOISE_FLOOR_RATIO`] / [`NOISE_FLOOR_SECONDS`]) so machine jitter
//!   does not read as regression.
//! * [`check`] — evaluates declarative budgets from `perf-budgets.toml`
//!   ([`Budgets::parse`], a deliberately tiny TOML subset: tables,
//!   `key = value` with numbers/strings/comments) against ledger history
//!   and bench snapshots, returning per-budget outcomes the CLI turns
//!   into an exit code.
//!
//! Budget semantics are chosen to be robust in CI: a budget whose
//! precondition is absent (no warm run yet, no bench snapshot on disk)
//! reports [`BudgetStatus::Skip`] rather than failing the build.

use std::path::Path;

use crate::ledger::LedgerEntry;

/// Relative noise floor for timing comparisons: deltas under 10% are
/// reported as within noise.
pub const NOISE_FLOOR_RATIO: f64 = 0.10;

/// Absolute noise floor for timing comparisons, in seconds: deltas under
/// 5ms are within noise regardless of ratio.
pub const NOISE_FLOOR_SECONDS: f64 = 0.005;

/// One drifted invariant counter.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterDelta {
    /// Dotted counter path, e.g. `counters.corpus.files`.
    pub name: String,
    /// Value in the older entry.
    pub before: f64,
    /// Value in the newer entry.
    pub after: f64,
}

/// One timing that moved beyond the noise floor.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingDelta {
    /// Timing name, e.g. `total_seconds`.
    pub name: String,
    /// Seconds in the older entry.
    pub before: f64,
    /// Seconds in the newer entry.
    pub after: f64,
}

/// Result of comparing two ledger entries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LedgerDiff {
    /// Whether the invariant digests match (byte-identical deterministic
    /// outcome).
    pub digest_equal: bool,
    /// Exact counter drift, in path order. Empty ⇒ no drift.
    pub counter_drift: Vec<CounterDelta>,
    /// Timing deltas beyond the noise floor.
    pub timing_deltas: Vec<TimingDelta>,
}

/// Numeric leaves of an entry's deterministic sections (counters plus the
/// broken-out diagnostics/provenance totals), as sorted dotted paths. The
/// flattening is explicit field-by-field: the counter structs are part of
/// the pinned report schema, so additions land here alongside the schema
/// bump (and `check_report`'s key-set scan catches anything missed).
fn invariant_numbers(entry: &LedgerEntry) -> Vec<(String, f64)> {
    let c = &entry.invariant.counters;
    let mut rows: Vec<(String, f64)> = vec![
        ("counters.corpus.files".into(), c.corpus.files as f64),
        ("counters.corpus.failures".into(), c.corpus.failures as f64),
        (
            "counters.corpus.duplicates".into(),
            c.corpus.duplicates as f64,
        ),
        ("counters.corpus.graphs".into(), c.corpus.graphs as f64),
        ("counters.corpus.events".into(), c.corpus.events as f64),
        ("counters.corpus.edges".into(), c.corpus.edges as f64),
        ("counters.pta.bodies".into(), c.pta.bodies as f64),
        ("counters.pta.passes".into(), c.pta.passes as f64),
        (
            "counters.pta.propagations".into(),
            c.pta.propagations as f64,
        ),
        ("counters.pta.constraints".into(), c.pta.constraints as f64),
        (
            "counters.pta.non_converged".into(),
            c.pta.non_converged as f64,
        ),
        (
            "counters.model.samples_pos".into(),
            c.model.samples_pos as f64,
        ),
        (
            "counters.model.samples_neg".into(),
            c.model.samples_neg as f64,
        ),
        ("counters.model.models".into(), c.model.models as f64),
        ("counters.model.epochs".into(), c.model.epochs as f64),
        ("counters.model.final_loss".into(), c.model.final_loss),
        (
            "counters.model.train_accuracy".into(),
            c.model.train_accuracy,
        ),
        (
            "counters.candidates.extracted".into(),
            c.candidates.extracted as f64,
        ),
        (
            "counters.candidates.selected".into(),
            c.candidates.selected as f64,
        ),
        ("counters.candidates.tau".into(), c.candidates.tau),
        (
            "total_problems".into(),
            entry.invariant.total_problems as f64,
        ),
        ("specs".into(), entry.invariant.specs as f64),
        (
            "evidence_total".into(),
            entry.invariant.evidence_total as f64,
        ),
    ];
    for (passes, bodies) in &c.pta.pass_histogram {
        rows.push((
            format!("counters.pta.pass_histogram[{passes}]"),
            *bodies as f64,
        ));
    }
    for (i, loss) in c.model.epoch_loss.iter().enumerate() {
        rows.push((format!("counters.model.epoch_loss[{i}]"), *loss));
    }
    for (name, value) in &c.metrics {
        rows.push((format!("counters.metrics.{name}"), *value as f64));
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Extracts the number following `"key":` in flat JSON text. The bench
/// snapshots are flat objects with unique keys, so a scan is sufficient
/// and avoids requiring an untyped JSON tree from the serializer.
fn scan_json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Whether a `before → after` seconds pair clears the noise floor.
fn beyond_noise(before: f64, after: f64) -> bool {
    let abs = (after - before).abs();
    let base = before.abs().max(after.abs());
    abs >= NOISE_FLOOR_SECONDS && base > 0.0 && abs / base >= NOISE_FLOOR_RATIO
}

/// Compares two ledger entries, oldest first. Counters diff exactly;
/// timings diff under the noise floor.
pub fn diff(before: &LedgerEntry, after: &LedgerEntry) -> LedgerDiff {
    let mut counter_drift = Vec::new();
    let a = invariant_numbers(before);
    let b = invariant_numbers(after);
    let mut ai = a.iter().peekable();
    let mut bi = b.iter().peekable();
    // Sorted merge so counters present on only one side still surface.
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(&&(ref an, av)), Some(&&(ref bn, bv))) => {
                if an == bn {
                    if av != bv {
                        counter_drift.push(CounterDelta {
                            name: an.clone(),
                            before: av,
                            after: bv,
                        });
                    }
                    ai.next();
                    bi.next();
                } else if an < bn {
                    counter_drift.push(CounterDelta {
                        name: an.clone(),
                        before: av,
                        after: 0.0,
                    });
                    ai.next();
                } else {
                    counter_drift.push(CounterDelta {
                        name: bn.clone(),
                        before: 0.0,
                        after: bv,
                    });
                    bi.next();
                }
            }
            (Some(&&(ref an, av)), None) => {
                counter_drift.push(CounterDelta {
                    name: an.clone(),
                    before: av,
                    after: 0.0,
                });
                ai.next();
            }
            (None, Some(&&(ref bn, bv))) => {
                counter_drift.push(CounterDelta {
                    name: bn.clone(),
                    before: 0.0,
                    after: bv,
                });
                bi.next();
            }
            (None, None) => break,
        }
    }

    let mut timing_deltas = Vec::new();
    let pairs = [(
        "total_seconds",
        before.timings.total_seconds,
        after.timings.total_seconds,
    )];
    for (name, tb, ta) in pairs {
        if beyond_noise(tb, ta) {
            timing_deltas.push(TimingDelta {
                name: name.to_owned(),
                before: tb,
                after: ta,
            });
        }
    }
    for (kind, row) in &after.timings.attribution.kinds {
        let before_ns = before
            .timings
            .attribution
            .kinds
            .iter()
            .find(|(k, _)| k == kind)
            .map(|(_, r)| r.exec_ns)
            .unwrap_or(0);
        let tb = before_ns as f64 / 1e9;
        let ta = row.exec_ns as f64 / 1e9;
        if beyond_noise(tb, ta) {
            timing_deltas.push(TimingDelta {
                name: format!("attribution.{kind}.exec_seconds"),
                before: tb,
                after: ta,
            });
        }
    }

    LedgerDiff {
        digest_equal: before.invariant.digest == after.invariant.digest,
        counter_drift,
        timing_deltas,
    }
}

/// Declarative performance budgets, parsed from `perf-budgets.toml`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Budgets {
    /// `[warm_speedup] min` — latest run over the oldest comparable run
    /// (same command + invariant digest) must be at least this many times
    /// faster.
    pub warm_speedup_min: Option<f64>,
    /// `[cache_hit_rate] min` — hits/lookups floor for the latest entry
    /// that attempted lookups.
    pub cache_hit_rate_min: Option<f64>,
    /// `[invariant_drift] max_counters` — drifted-counter ceiling between
    /// the two latest same-command entries (normally 0).
    pub invariant_drift_max_counters: Option<u64>,
    /// `[telemetry_overhead] max` — `overhead_ratio - 1` ceiling read from
    /// the telemetry bench snapshot.
    pub telemetry_overhead_max: Option<f64>,
    /// `[telemetry_overhead] bench` — snapshot file name (default
    /// `BENCH_telemetry.json`).
    pub telemetry_bench: Option<String>,
    /// `[serve] p99_ms_max` — ceiling on the latest traffic-carrying serve
    /// entry's lifetime p99 latency (the `all` window row), milliseconds.
    pub serve_p99_ms_max: Option<f64>,
    /// `[serve] error_rate_max` — ceiling on `errors / requests` of the
    /// latest traffic-carrying serve entry.
    pub serve_error_rate_max: Option<f64>,
    /// `[serve] staleness_ms_max` — ceiling on the staleness high-water the
    /// daemon's sentinel observed (`slo.max_staleness_ms`).
    pub serve_staleness_ms_max: Option<f64>,
}

/// Strips a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

impl Budgets {
    /// Parses the supported TOML subset: `[table]` headers, `key = value`
    /// with floats, integers, or double-quoted strings, and `#` comments.
    /// Unknown tables or keys are errors — a typoed budget must not
    /// silently pass.
    pub fn parse(text: &str) -> Result<Budgets, String> {
        let mut budgets = Budgets::default();
        let mut table = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                table = name.trim().to_owned();
                match table.as_str() {
                    "warm_speedup" | "cache_hit_rate" | "invariant_drift"
                    | "telemetry_overhead" | "serve" => {}
                    other => return Err(format!("line {}: unknown table [{other}]", lineno + 1)),
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            let key = key.trim();
            let value = value.trim();
            let num = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("line {}: expected a number, got {value}", lineno + 1))
            };
            match (table.as_str(), key) {
                ("warm_speedup", "min") => budgets.warm_speedup_min = Some(num()?),
                ("cache_hit_rate", "min") => budgets.cache_hit_rate_min = Some(num()?),
                ("invariant_drift", "max_counters") => {
                    budgets.invariant_drift_max_counters = Some(num()? as u64)
                }
                ("telemetry_overhead", "max") => budgets.telemetry_overhead_max = Some(num()?),
                ("telemetry_overhead", "bench") => {
                    let s = value
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| format!("line {}: expected a quoted string", lineno + 1))?;
                    budgets.telemetry_bench = Some(s.to_owned());
                }
                ("serve", "p99_ms_max") => budgets.serve_p99_ms_max = Some(num()?),
                ("serve", "error_rate_max") => budgets.serve_error_rate_max = Some(num()?),
                ("serve", "staleness_ms_max") => budgets.serve_staleness_ms_max = Some(num()?),
                (t, k) => {
                    return Err(format!(
                        "line {}: unknown key {k} in table [{t}]",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(budgets)
    }
}

/// Outcome status of one budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetStatus {
    /// Budget held.
    Pass,
    /// Budget violated — the caller should fail the build.
    Fail,
    /// Precondition absent (no comparable history, no snapshot on disk).
    Skip,
}

impl BudgetStatus {
    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetStatus::Pass => "pass",
            BudgetStatus::Fail => "FAIL",
            BudgetStatus::Skip => "skip",
        }
    }
}

/// One evaluated budget with a human-readable explanation.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetOutcome {
    /// Budget name (the TOML table).
    pub budget: String,
    /// Pass / fail / skip.
    pub status: BudgetStatus,
    /// What was measured against what.
    pub detail: String,
}

fn outcome(budget: &str, status: BudgetStatus, detail: String) -> BudgetOutcome {
    BudgetOutcome {
        budget: budget.to_owned(),
        status,
        detail,
    }
}

/// Evaluates `budgets` against ledger `entries` (oldest first) and the
/// bench snapshots in `bench_dir`. Unconfigured budgets produce no
/// outcome; configured budgets with missing preconditions skip.
pub fn check(budgets: &Budgets, entries: &[LedgerEntry], bench_dir: &Path) -> Vec<BudgetOutcome> {
    let mut outcomes = Vec::new();
    let latest = entries.last();

    if let Some(min) = budgets.warm_speedup_min {
        let name = "warm_speedup";
        match latest {
            None => outcomes.push(outcome(name, BudgetStatus::Skip, "ledger is empty".into())),
            Some(last) => {
                let baseline = entries[..entries.len() - 1].iter().find(|e| {
                    e.invariant.command == last.invariant.command
                        && e.invariant.digest == last.invariant.digest
                });
                match baseline {
                    None => outcomes.push(outcome(
                        name,
                        BudgetStatus::Skip,
                        "no earlier comparable run (same command + invariant digest)".into(),
                    )),
                    Some(_) if last.timings.total_seconds <= 0.0 => outcomes.push(outcome(
                        name,
                        BudgetStatus::Skip,
                        format!(
                            "latest run has no usable wall time ({}s)",
                            last.timings.total_seconds
                        ),
                    )),
                    Some(base) => {
                        let speedup = base.timings.total_seconds / last.timings.total_seconds;
                        let status = if speedup >= min {
                            BudgetStatus::Pass
                        } else {
                            BudgetStatus::Fail
                        };
                        outcomes.push(outcome(
                            name,
                            status,
                            format!(
                                "{:.3}s -> {:.3}s = {:.1}x (min {:.1}x)",
                                base.timings.total_seconds,
                                last.timings.total_seconds,
                                speedup,
                                min
                            ),
                        ));
                    }
                }
            }
        }
    }

    if let Some(min) = budgets.cache_hit_rate_min {
        let name = "cache_hit_rate";
        let measured = entries
            .iter()
            .rev()
            .find(|e| e.timings.cache.lookups > 0)
            .map(|e| &e.timings.cache);
        match measured {
            None => outcomes.push(outcome(
                name,
                BudgetStatus::Skip,
                "no entry attempted store lookups".into(),
            )),
            Some(cache) => {
                let rate = cache.hits as f64 / cache.lookups as f64;
                let status = if rate >= min {
                    BudgetStatus::Pass
                } else {
                    BudgetStatus::Fail
                };
                outcomes.push(outcome(
                    name,
                    status,
                    format!(
                        "{}/{} hits = {:.2} (min {:.2})",
                        cache.hits, cache.lookups, rate, min
                    ),
                ));
            }
        }
    }

    if let Some(max) = budgets.invariant_drift_max_counters {
        let name = "invariant_drift";
        let pair: Option<(&LedgerEntry, &LedgerEntry)> = latest.and_then(|last| {
            entries[..entries.len() - 1]
                .iter()
                .rev()
                .find(|e| e.invariant.command == last.invariant.command)
                .map(|prev| (prev, last))
        });
        match pair {
            None => outcomes.push(outcome(
                name,
                BudgetStatus::Skip,
                "fewer than two same-command entries".into(),
            )),
            Some((prev, last)) => {
                let drift = diff(prev, last).counter_drift;
                let status = if drift.len() as u64 <= max {
                    BudgetStatus::Pass
                } else {
                    BudgetStatus::Fail
                };
                let worst = drift
                    .first()
                    .map(|d| format!("; first: {} {} -> {}", d.name, d.before, d.after))
                    .unwrap_or_default();
                outcomes.push(outcome(
                    name,
                    status,
                    format!("{} counters drifted (max {max}){worst}", drift.len()),
                ));
            }
        }
    }

    if let Some(max) = budgets.telemetry_overhead_max {
        let name = "telemetry_overhead";
        let file = budgets
            .telemetry_bench
            .clone()
            .unwrap_or_else(|| "BENCH_telemetry.json".to_owned());
        let path = bench_dir.join(&file);
        let ratio = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| scan_json_number(&text, "overhead_ratio"));
        match ratio {
            None => outcomes.push(outcome(
                name,
                BudgetStatus::Skip,
                format!("no overhead_ratio in {}", path.display()),
            )),
            Some(ratio) => {
                let overhead = ratio - 1.0;
                let status = if overhead <= max {
                    BudgetStatus::Pass
                } else {
                    BudgetStatus::Fail
                };
                outcomes.push(outcome(
                    name,
                    status,
                    format!(
                        "overhead {:.2}% (max {:.2}%)",
                        overhead * 100.0,
                        max * 100.0
                    ),
                ));
            }
        }
    }

    let serve_configured = budgets.serve_p99_ms_max.is_some()
        || budgets.serve_error_rate_max.is_some()
        || budgets.serve_staleness_ms_max.is_some();
    if serve_configured {
        // Serve budgets read the latest entry with actual traffic: the
        // daemon appends one final entry at shutdown with the whole run's
        // windows, while per-generation learn entries may carry none.
        let measured = entries
            .iter()
            .rev()
            .find(|e| e.timings.serve.requests > 0)
            .map(|e| &e.timings.serve);
        match measured {
            None => {
                if budgets.serve_p99_ms_max.is_some() {
                    outcomes.push(outcome(
                        "serve_p99",
                        BudgetStatus::Skip,
                        "no entry carries serve traffic".into(),
                    ));
                }
                if budgets.serve_error_rate_max.is_some() {
                    outcomes.push(outcome(
                        "serve_error_rate",
                        BudgetStatus::Skip,
                        "no entry carries serve traffic".into(),
                    ));
                }
                if budgets.serve_staleness_ms_max.is_some() {
                    outcomes.push(outcome(
                        "serve_staleness",
                        BudgetStatus::Skip,
                        "no entry carries serve traffic".into(),
                    ));
                }
            }
            Some(serve) => {
                if let Some(max) = budgets.serve_p99_ms_max {
                    let p99_ns = serve
                        .windows
                        .iter()
                        .find(|(name, _)| name == "all")
                        .map(|(_, w)| w.total_p99_ns);
                    match p99_ns {
                        None => outcomes.push(outcome(
                            "serve_p99",
                            BudgetStatus::Skip,
                            "serve entry has no `all` latency window".into(),
                        )),
                        Some(p99_ns) => {
                            let p99_ms = p99_ns as f64 / 1e6;
                            let status = if p99_ms <= max {
                                BudgetStatus::Pass
                            } else {
                                BudgetStatus::Fail
                            };
                            outcomes.push(outcome(
                                "serve_p99",
                                status,
                                format!("p99 {p99_ms:.3}ms (max {max:.3}ms)"),
                            ));
                        }
                    }
                }
                if let Some(max) = budgets.serve_error_rate_max {
                    let rate = serve.errors as f64 / serve.requests as f64;
                    let status = if rate <= max {
                        BudgetStatus::Pass
                    } else {
                        BudgetStatus::Fail
                    };
                    outcomes.push(outcome(
                        "serve_error_rate",
                        status,
                        format!(
                            "{}/{} errors = {:.3} (max {:.3})",
                            serve.errors, serve.requests, rate, max
                        ),
                    ));
                }
                if let Some(max) = budgets.serve_staleness_ms_max {
                    let staleness = serve.slo.max_staleness_ms as f64;
                    let status = if staleness <= max {
                        BudgetStatus::Pass
                    } else {
                        BudgetStatus::Fail
                    };
                    outcomes.push(outcome(
                        "serve_staleness",
                        status,
                        format!("max staleness {staleness:.0}ms (max {max:.0}ms)"),
                    ));
                }
            }
        }
    }

    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{LedgerEntry, LedgerEnvelope};
    use crate::report::RunReport;

    fn entry(command: &str, files: u64, seconds: f64) -> LedgerEntry {
        let mut report = RunReport::new(command, "worklist");
        report.counters.corpus.files = files;
        report.timings.total_seconds = seconds;
        report.timings.cache.lookups = 10;
        report.timings.cache.hits = 8;
        report.timings.cache.misses = 2;
        LedgerEntry::from_report(
            &report,
            LedgerEnvelope {
                git_rev: "test".to_owned(),
                host: "test".to_owned(),
                timestamp_ms: 1,
                corpus_fp: "aa".to_owned(),
            },
        )
    }

    #[test]
    fn diff_identical_runs_is_clean() {
        let d = diff(&entry("eval", 120, 2.0), &entry("eval", 120, 2.01));
        assert!(d.digest_equal);
        assert!(d.counter_drift.is_empty());
        assert!(d.timing_deltas.is_empty(), "1% is under the noise floor");
    }

    #[test]
    fn diff_reports_exact_counter_drift_and_big_timing_moves() {
        let d = diff(&entry("eval", 120, 2.0), &entry("eval", 121, 0.2));
        assert!(!d.digest_equal);
        assert!(d
            .counter_drift
            .iter()
            .any(|c| c.name == "counters.corpus.files" && c.before == 120.0 && c.after == 121.0));
        assert_eq!(d.timing_deltas.len(), 1);
        assert_eq!(d.timing_deltas[0].name, "total_seconds");
    }

    #[test]
    fn parse_budgets_subset() {
        let b = Budgets::parse(
            "# repo budgets\n\
             [warm_speedup]\n\
             min = 1.5  # cold/warm\n\
             [cache_hit_rate]\n\
             min = 0.5\n\
             [invariant_drift]\n\
             max_counters = 0\n\
             [telemetry_overhead]\n\
             max = 0.03\n\
             bench = \"BENCH_telemetry.json\"\n",
        )
        .unwrap();
        assert_eq!(b.warm_speedup_min, Some(1.5));
        assert_eq!(b.cache_hit_rate_min, Some(0.5));
        assert_eq!(b.invariant_drift_max_counters, Some(0));
        assert_eq!(b.telemetry_overhead_max, Some(0.03));
        assert_eq!(b.telemetry_bench.as_deref(), Some("BENCH_telemetry.json"));
        assert!(Budgets::parse("[nope]\n").is_err());
        assert!(Budgets::parse("[warm_speedup]\nmax = 2\n").is_err());

        let b = Budgets::parse(
            "[serve]\np99_ms_max = 50\nerror_rate_max = 0.05\nstaleness_ms_max = 30000\n",
        )
        .unwrap();
        assert_eq!(b.serve_p99_ms_max, Some(50.0));
        assert_eq!(b.serve_error_rate_max, Some(0.05));
        assert_eq!(b.serve_staleness_ms_max, Some(30000.0));
        assert!(Budgets::parse("[serve]\np99 = 50\n").is_err());
    }

    #[test]
    fn check_enforces_serve_budgets_from_the_latest_traffic_entry() {
        use crate::window::WindowSnapshot;
        let budgets = Budgets::parse(
            "[serve]\np99_ms_max = 50\nerror_rate_max = 0.25\nstaleness_ms_max = 30000\n",
        )
        .unwrap();

        // No traffic anywhere: every serve budget skips.
        let outcomes = check(&budgets, &[entry("eval", 120, 2.0)], Path::new("."));
        assert!(outcomes
            .iter()
            .all(|o| o.budget.starts_with("serve_") && o.status == BudgetStatus::Skip));

        let serve_entry = |p99_ns: u64, errors: u64, staleness: u64| {
            let mut report = RunReport::new("serve", "worklist");
            report.timings.serve.requests = 100;
            report.timings.serve.errors = errors;
            report.timings.serve.slo.max_staleness_ms = staleness;
            report.timings.serve.windows = vec![(
                "all".to_owned(),
                WindowSnapshot {
                    total_p99_ns: p99_ns,
                    total_requests: 100,
                    ..WindowSnapshot::default()
                },
            )];
            LedgerEntry::from_report(
                &report,
                LedgerEnvelope {
                    git_rev: "test".to_owned(),
                    host: "test".to_owned(),
                    timestamp_ms: 1,
                    corpus_fp: "aa".to_owned(),
                },
            )
        };

        // Healthy daemon: everything passes.
        let ok = serve_entry(2_000_000, 3, 500);
        let outcomes = check(&budgets, std::slice::from_ref(&ok), Path::new("."));
        assert!(
            outcomes.iter().all(|o| o.status == BudgetStatus::Pass),
            "{outcomes:?}"
        );

        // Seeded p99 breach: 9s ≫ 50ms must fail exactly serve_p99.
        let slow = serve_entry(9_000_000_000, 3, 500);
        let outcomes = check(&budgets, &[ok, slow], Path::new("."));
        assert!(outcomes
            .iter()
            .any(|o| o.budget == "serve_p99" && o.status == BudgetStatus::Fail));
        assert!(outcomes
            .iter()
            .any(|o| o.budget == "serve_error_rate" && o.status == BudgetStatus::Pass));

        // Error-rate and staleness breaches trip their own budgets.
        let flaky = serve_entry(2_000_000, 90, 99_000);
        let outcomes = check(&budgets, &[flaky], Path::new("."));
        assert!(outcomes
            .iter()
            .any(|o| o.budget == "serve_error_rate" && o.status == BudgetStatus::Fail));
        assert!(outcomes
            .iter()
            .any(|o| o.budget == "serve_staleness" && o.status == BudgetStatus::Fail));
    }

    #[test]
    fn check_passes_warm_and_fails_seeded_regression() {
        let budgets =
            Budgets::parse("[warm_speedup]\nmin = 1.5\n[invariant_drift]\nmax_counters = 0\n")
                .unwrap();
        let cold = entry("eval", 120, 2.0);
        let warm = entry("eval", 120, 0.2);
        let outcomes = check(&budgets, &[cold.clone(), warm.clone()], Path::new("."));
        assert!(
            outcomes.iter().all(|o| o.status != BudgetStatus::Fail),
            "{outcomes:?}"
        );
        // Seed a regression: the warm run got 10x slower than baseline.
        let slow = entry("eval", 120, 9999.0);
        let outcomes = check(&budgets, &[cold, warm, slow], Path::new("."));
        assert!(outcomes
            .iter()
            .any(|o| o.budget == "warm_speedup" && o.status == BudgetStatus::Fail));
    }

    #[test]
    fn check_skips_when_history_is_missing() {
        let budgets = Budgets::parse(
            "[warm_speedup]\nmin = 1.5\n[cache_hit_rate]\nmin = 0.5\n[telemetry_overhead]\nmax = 0.03\nbench = \"no-such-bench.json\"\n",
        )
        .unwrap();
        let outcomes = check(&budgets, &[entry("eval", 120, 2.0)], Path::new("."));
        assert!(outcomes
            .iter()
            .any(|o| o.budget == "warm_speedup" && o.status == BudgetStatus::Skip));
        assert!(outcomes
            .iter()
            .any(|o| o.budget == "cache_hit_rate" && o.status == BudgetStatus::Pass));
        assert!(outcomes
            .iter()
            .any(|o| o.budget == "telemetry_overhead" && o.status == BudgetStatus::Skip));
    }
}
