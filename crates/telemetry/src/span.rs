//! RAII timing spans with per-name thread-safe aggregation.
//!
//! `span!("stage.analyze")` returns a guard; when it drops, the elapsed
//! wall time folds into the [`SpanAgg`] registered under that name (count,
//! total, max — all relaxed atomics). Aggregates are keyed by name only,
//! so concurrent spans from rayon workers fold into the same row.
//!
//! When the log level is at least `debug`, guards additionally echo entry
//! and exit as indented trace lines; a thread-local depth counter drives
//! the indentation. The optional field-formatting closure in
//! `span!("name", "file={}", path)` runs *only* in that echo path, so
//! formatting costs nothing at default levels.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::log::{self, Level};

/// Thread-safe aggregate for one span name.
#[derive(Debug, Default)]
pub struct SpanAgg {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanAgg {
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Current aggregate values.
    pub fn stat(&self) -> SpanStat {
        SpanStat {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// Serializable aggregate of all completed spans sharing one name.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed span count.
    pub count: u64,
    /// Summed wall time in nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Total wall time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

fn table() -> &'static Mutex<BTreeMap<&'static str, &'static SpanAgg>> {
    static TABLE: OnceLock<Mutex<BTreeMap<&'static str, &'static SpanAgg>>> = OnceLock::new();
    TABLE.get_or_init(Mutex::default)
}

/// Returns the aggregate registered under `name`, creating it on first
/// use. Takes the table lock — cache the handle (the [`span!`] macro does).
pub fn register(name: &'static str) -> &'static SpanAgg {
    let mut map = table().lock().unwrap();
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(SpanAgg::default())))
}

/// Copies every span aggregate with at least one completed span.
pub fn snapshot() -> BTreeMap<String, SpanStat> {
    table()
        .lock()
        .unwrap()
        .iter()
        .filter_map(|(&name, agg)| {
            let stat = agg.stat();
            (stat.count > 0).then(|| (name.to_owned(), stat))
        })
        .collect()
}

/// Zeroes every span aggregate; handles stay valid.
pub fn reset() {
    for agg in table().lock().unwrap().values() {
        agg.reset();
    }
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Nesting depth of live echoing spans on this thread (test hook).
pub fn current_depth() -> usize {
    DEPTH.get()
}

/// RAII guard created by [`span!`]; folds elapsed wall time into the
/// span's aggregate on drop. A disabled-telemetry guard is inert.
pub struct SpanGuard {
    live: Option<Live>,
}

struct Live {
    start: Instant,
    agg: &'static SpanAgg,
    name: &'static str,
    echoed: bool,
}

impl SpanGuard {
    /// Starts a span (prefer the [`span!`] macro, which caches `agg`).
    /// `fields` renders extra context and runs only when echoing at
    /// `debug` level or below.
    pub fn enter(
        name: &'static str,
        agg: &'static SpanAgg,
        fields: impl FnOnce() -> String,
    ) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { live: None };
        }
        let echoed = log::enabled_at(Level::Debug);
        if echoed {
            let depth = DEPTH.get();
            DEPTH.set(depth + 1);
            let extra = fields();
            if extra.is_empty() {
                log::span_echo(depth, format_args!("> {name}"));
            } else {
                log::span_echo(depth, format_args!("> {name} {extra}"));
            }
        }
        SpanGuard {
            live: Some(Live {
                start: Instant::now(),
                agg,
                name,
                echoed,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let ns = live.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        live.agg.record(ns);
        if crate::trace::armed() {
            crate::trace::record(live.name, live.start, ns);
        }
        if live.echoed {
            let depth = DEPTH.get().saturating_sub(1);
            DEPTH.set(depth);
            log::span_echo(
                depth,
                format_args!("< {} {:.3}ms", live.name, ns as f64 / 1e6),
            );
        }
    }
}

/// Times the enclosing scope under a literal span name.
///
/// `span!("name")` — bare; `span!("name", "fmt", args...)` — with a lazily
/// formatted field string shown only in the `debug`-level echo.
///
/// ```
/// let _span = uspec_telemetry::span!("doc.work", "items={}", 3);
/// // ... timed work ...
/// drop(_span);
/// assert!(uspec_telemetry::span::snapshot()["doc.work"].count >= 1);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::span::SpanAgg> =
            ::std::sync::OnceLock::new();
        let agg = *HANDLE.get_or_init(|| $crate::span::register($name));
        $crate::span::SpanGuard::enter($name, agg, ::std::string::String::new)
    }};
    ($name:literal, $($fields:tt)+) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::span::SpanAgg> =
            ::std::sync::OnceLock::new();
        let agg = *HANDLE.get_or_init(|| $crate::span::register($name));
        $crate::span::SpanGuard::enter($name, agg, || ::std::format!($($fields)+))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unique span names per test: the table is process-global and tests in
    // this binary run concurrently.

    #[test]
    fn span_aggregates_count_total_max() {
        for _ in 0..3 {
            let _s = span!("test.span.agg");
            std::hint::black_box(0u64);
        }
        let stat = snapshot()["test.span.agg"];
        assert_eq!(stat.count, 3);
        assert!(stat.total_ns >= stat.max_ns);
        assert!(stat.max_ns > 0);
    }

    #[test]
    fn nested_spans_each_recorded() {
        {
            let _outer = span!("test.span.outer");
            {
                let _inner = span!("test.span.inner", "k={}", 1);
                std::hint::black_box(0u64);
            }
            {
                let _inner = span!("test.span.inner");
                std::hint::black_box(0u64);
            }
        }
        let snap = snapshot();
        assert_eq!(snap["test.span.outer"].count, 1);
        assert_eq!(snap["test.span.inner"].count, 2);
        assert!(snap["test.span.outer"].total_ns >= snap["test.span.inner"].max_ns);
        // Depth balances back out regardless of echo state.
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn spans_fold_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = span!("test.span.threads");
                    std::hint::black_box(0u64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(snapshot()["test.span.threads"].count, 4);
    }
}
