//! Sliding-window request aggregates and the slow-query log — the live
//! half of the observability plane.
//!
//! A [`SlidingWindow`] keeps request/error counts and a power-of-two
//! latency histogram over the last [`WINDOW_MILLIS`] of traffic (a ring
//! of [`WINDOW_SLOTS`] slots, each [`SLOT_MILLIS`] wide) *and* matching
//! process-lifetime totals, so a `status` or `metrics.snapshot` answer
//! can show both "the last minute" and "since start". Updates follow the
//! same discipline as [`crate::metrics`]: relaxed atomics behind a single
//! branch on [`crate::enabled`], handles interned once in a global
//! registry and cached per call site via the [`window!`][crate::window!]
//! macro.
//!
//! The API is deliberately **time-pure**: callers pass `now_ms` (any
//! monotone millisecond clock, e.g. process uptime) into
//! [`SlidingWindow::record`] and [`SlidingWindow::snapshot`], so tests
//! drive rotation with a fake clock and snapshots are reproducible.
//!
//! Slot rotation is best-effort under contention: when a slot's epoch
//! goes stale the first writer to notice clears and re-stamps it, and a
//! racing record in the same tick may land in the freshly cleared slot or
//! be cleared with it. The loss is bounded by one slot transition per
//! window — acceptable for telemetry, free of locks on the hot path.
//!
//! The [`SlowLog`] is the other half: a capped, latency-sorted record of
//! the worst requests seen (method, latency, generation, byte sizes).
//! Its hot path is a single relaxed load — the mutex is taken only when
//! a request is actually among the current worst.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::metrics::{self, Histogram, BUCKETS};

/// Number of ring slots in a window.
pub const WINDOW_SLOTS: usize = 6;

/// Width of one slot in milliseconds.
pub const SLOT_MILLIS: u64 = 10_000;

/// Total window span: [`WINDOW_SLOTS`] × [`SLOT_MILLIS`] (~60 s).
pub const WINDOW_MILLIS: u64 = WINDOW_SLOTS as u64 * SLOT_MILLIS;

/// How many worst requests the global [`SlowLog`] retains.
pub const SLOW_LOG_CAPACITY: usize = 8;

/// One ring slot: the aggregates of a single [`SLOT_MILLIS`] interval,
/// tagged with the epoch (interval ordinal) it currently represents.
struct Slot {
    /// `now_ms / SLOT_MILLIS + 1` of the interval this slot holds; 0 means
    /// the slot has never been written.
    epoch: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    sum_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Slot {
    fn default() -> Slot {
        Slot {
            epoch: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Slot {
    fn clear(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Rotating ~60 s aggregates plus process-lifetime totals for one request
/// stream (typically one served method).
pub struct SlidingWindow {
    slots: [Slot; WINDOW_SLOTS],
    total_errors: AtomicU64,
    lifetime: Histogram,
}

impl Default for SlidingWindow {
    fn default() -> SlidingWindow {
        SlidingWindow {
            slots: std::array::from_fn(|_| Slot::default()),
            total_errors: AtomicU64::new(0),
            lifetime: Histogram::default(),
        }
    }
}

/// Epoch ordinal for a millisecond timestamp (1-based so 0 can mean
/// "never written").
fn epoch_of(now_ms: u64) -> u64 {
    now_ms / SLOT_MILLIS + 1
}

impl SlidingWindow {
    /// Records one request at `now_ms` (any monotone millisecond clock,
    /// used consistently per window) with its latency and outcome. No-op
    /// when telemetry is disabled.
    #[inline]
    pub fn record(&self, now_ms: u64, latency_ns: u64, error: bool) {
        if !crate::enabled() {
            return;
        }
        self.lifetime.record(latency_ns);
        if error {
            self.total_errors.fetch_add(1, Ordering::Relaxed);
        }
        let epoch = epoch_of(now_ms);
        let slot = &self.slots[(epoch % WINDOW_SLOTS as u64) as usize];
        if slot.epoch.load(Ordering::Relaxed) != epoch {
            slot.clear();
            slot.epoch.store(epoch, Ordering::Relaxed);
        }
        slot.requests.fetch_add(1, Ordering::Relaxed);
        slot.sum_ns.fetch_add(latency_ns, Ordering::Relaxed);
        if error {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
        slot.buckets[metrics::bucket_index(latency_ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregates the slots whose interval falls within the last
    /// [`WINDOW_MILLIS`] ending at `now_ms`, alongside lifetime totals.
    pub fn snapshot(&self, now_ms: u64) -> WindowSnapshot {
        let current = epoch_of(now_ms);
        let min_epoch = current.saturating_sub(WINDOW_SLOTS as u64 - 1);
        let mut requests = 0u64;
        let mut errors = 0u64;
        let mut sum_ns = 0u64;
        let mut raw = [0u64; BUCKETS];
        for slot in &self.slots {
            let e = slot.epoch.load(Ordering::Relaxed);
            if e >= min_epoch && e <= current {
                requests += slot.requests.load(Ordering::Relaxed);
                errors += slot.errors.load(Ordering::Relaxed);
                sum_ns += slot.sum_ns.load(Ordering::Relaxed);
                for (acc, b) in raw.iter_mut().zip(&slot.buckets) {
                    *acc += b.load(Ordering::Relaxed);
                }
            }
        }
        let window = metrics::snapshot_from_raw(requests, sum_ns, &raw);
        let life = self.lifetime.snapshot();
        WindowSnapshot {
            window_seconds: WINDOW_MILLIS / 1000,
            requests,
            errors,
            mean_ns: sum_ns.checked_div(requests).unwrap_or(0),
            p50_ns: window.p50,
            p95_ns: window.p95,
            p99_ns: window.p99,
            total_requests: life.count,
            total_errors: self.total_errors.load(Ordering::Relaxed),
            total_p50_ns: life.p50,
            total_p95_ns: life.p95,
            total_p99_ns: life.p99,
        }
    }

    /// [`SlidingWindow::snapshot`] taken at the newest recorded interval —
    /// "the window around the last traffic seen", independent of any real
    /// clock. Deterministic for reports built after traffic stops.
    pub fn snapshot_latest(&self) -> WindowSnapshot {
        let latest = self
            .slots
            .iter()
            .map(|s| s.epoch.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        self.snapshot(latest.saturating_sub(1) * SLOT_MILLIS)
    }

    fn reset(&self) {
        for slot in &self.slots {
            slot.clear();
            slot.epoch.store(0, Ordering::Relaxed);
        }
        self.total_errors.store(0, Ordering::Relaxed);
        self.lifetime.reset();
    }
}

/// Serializable point-in-time view of one [`SlidingWindow`]: the rotating
/// window's aggregates plus process-lifetime totals. Latency percentiles
/// are bucket upper bounds (nearest-rank over power-of-two buckets), so
/// they over-estimate the true quantile by at most 2×.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Nominal window span in seconds.
    pub window_seconds: u64,
    /// Requests inside the window.
    pub requests: u64,
    /// Error responses inside the window.
    pub errors: u64,
    /// Mean latency inside the window (ns; 0 when empty).
    pub mean_ns: u64,
    /// Windowed median latency (ns, bucket bound).
    pub p50_ns: u64,
    /// Windowed 95th-percentile latency (ns, bucket bound).
    pub p95_ns: u64,
    /// Windowed 99th-percentile latency (ns, bucket bound).
    pub p99_ns: u64,
    /// Requests since process start (or last reset).
    pub total_requests: u64,
    /// Error responses since process start.
    pub total_errors: u64,
    /// Lifetime median latency (ns, bucket bound).
    pub total_p50_ns: u64,
    /// Lifetime 95th-percentile latency (ns, bucket bound).
    pub total_p95_ns: u64,
    /// Lifetime 99th-percentile latency (ns, bucket bound).
    pub total_p99_ns: u64,
}

/// Name-keyed registry of sliding windows, mirroring
/// [`crate::metrics::Registry`]: handles are `&'static`, the mutex is
/// taken only at registration, snapshot, or reset.
#[derive(Default)]
pub struct WindowRegistry {
    windows: Mutex<BTreeMap<&'static str, &'static SlidingWindow>>,
}

impl WindowRegistry {
    /// Returns the window registered under `name`, creating it on first
    /// use. Cache the handle (see [`window!`][crate::window!]).
    pub fn window(&self, name: &'static str) -> &'static SlidingWindow {
        let mut map = self.windows.lock().unwrap();
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(SlidingWindow::default())))
    }

    /// Snapshots every registered window at its own latest recorded
    /// interval (see [`SlidingWindow::snapshot_latest`]), name-sorted.
    pub fn snapshot_latest(&self) -> Vec<(String, WindowSnapshot)> {
        self.windows
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.snapshot_latest()))
            .collect()
    }

    /// Snapshots every registered window at `now_ms`, name-sorted.
    pub fn snapshot(&self, now_ms: u64) -> Vec<(String, WindowSnapshot)> {
        self.windows
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.snapshot(now_ms)))
            .collect()
    }

    /// Zeroes every registered window; handles stay valid.
    pub fn reset(&self) {
        for w in self.windows.lock().unwrap().values() {
            w.reset();
        }
    }
}

/// The process-global window registry.
pub fn global() -> &'static WindowRegistry {
    static REGISTRY: OnceLock<WindowRegistry> = OnceLock::new();
    REGISTRY.get_or_init(WindowRegistry::default)
}

/// Returns the `&'static SlidingWindow` for a literal name, registering on
/// first execution of the call site and caching the handle thereafter.
#[macro_export]
macro_rules! window {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::window::SlidingWindow> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::window::global().window($name))
    }};
}

/// One entry of the slow-query log.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq, Eq)]
pub struct SlowQuery {
    /// Served method name (or `other` for unroutable frames).
    pub method: String,
    /// End-to-end handling latency in nanoseconds.
    pub latency_ns: u64,
    /// Specification generation the request was answered against.
    pub gen: u64,
    /// Request frame size in bytes.
    pub request_bytes: u64,
    /// Response line size in bytes.
    pub response_bytes: u64,
}

/// Capped log of the worst-latency requests, sorted slowest-first.
///
/// `floor` caches the lowest latency currently in a *full* log, so the
/// common case (a request faster than everything logged) is one relaxed
/// load and no lock. Zero-latency requests are never logged.
pub struct SlowLog {
    capacity: usize,
    floor: AtomicU64,
    entries: Mutex<Vec<SlowQuery>>,
}

impl SlowLog {
    /// A log retaining the `capacity` slowest requests.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity,
            floor: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Offers one request to the log; kept only if among the worst seen.
    /// No-op when telemetry is disabled.
    #[inline]
    pub fn record(&self, q: SlowQuery) {
        if !crate::enabled() || q.latency_ns <= self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        let at = entries
            .iter()
            .position(|e| e.latency_ns < q.latency_ns)
            .unwrap_or(entries.len());
        entries.insert(at, q);
        entries.truncate(self.capacity);
        if entries.len() == self.capacity {
            self.floor.store(
                entries.last().map_or(0, |e| e.latency_ns),
                Ordering::Relaxed,
            );
        }
    }

    /// Copies the current log, slowest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        self.entries.lock().unwrap().clone()
    }

    /// Clears the log.
    pub fn reset(&self) {
        self.entries.lock().unwrap().clear();
        self.floor.store(0, Ordering::Relaxed);
    }
}

/// The process-global slow-query log ([`SLOW_LOG_CAPACITY`] entries).
pub fn slow_log() -> &'static SlowLog {
    static LOG: OnceLock<SlowLog> = OnceLock::new();
    LOG.get_or_init(|| SlowLog::new(SLOW_LOG_CAPACITY))
}

/// Zeroes the global window registry and slow log (for [`crate::reset`]).
pub(crate) fn reset_global() {
    global().reset();
    slow_log().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Like the metrics tests: the registry is process-global, so tests
    // use their own window names and never reset the global state.

    #[test]
    fn window_counts_and_percentiles() {
        let w = SlidingWindow::default();
        for i in 0..100u64 {
            w.record(1_000, 1_000 + i, i % 10 == 0);
        }
        let snap = w.snapshot(1_000);
        assert_eq!(snap.requests, 100);
        assert_eq!(snap.errors, 10);
        assert_eq!(snap.total_requests, 100);
        assert_eq!(snap.total_errors, 10);
        // All samples fall in the [1024, 2047] bucket's neighborhood:
        // 1000..1023 land in bound 1023, the rest in bound 2047.
        assert!(snap.p50_ns == 1023 || snap.p50_ns == 2047);
        assert!(snap.p99_ns >= snap.p95_ns && snap.p95_ns >= snap.p50_ns);
        assert_eq!(snap.mean_ns, (1_000 + 1_099) / 2);
        assert_eq!(snap.p50_ns, snap.total_p50_ns);
    }

    #[test]
    fn window_expires_old_slots_but_keeps_lifetime_totals() {
        let w = SlidingWindow::default();
        w.record(0, 500, false);
        let fresh = w.snapshot(0);
        assert_eq!(fresh.requests, 1);
        // One full window later the sample has aged out of the window but
        // not out of the lifetime totals.
        let later = w.snapshot(WINDOW_MILLIS);
        assert_eq!(later.requests, 0);
        assert_eq!(later.p99_ns, 0);
        assert_eq!(later.total_requests, 1);
        assert_eq!(later.total_p99_ns, 511);
    }

    #[test]
    fn ring_slots_are_reclaimed_on_wraparound() {
        let w = SlidingWindow::default();
        w.record(0, 100, false);
        // Exactly WINDOW_SLOTS epochs later the same slot index recurs;
        // recording must clear the stale aggregate first.
        w.record(WINDOW_MILLIS, 200, false);
        let snap = w.snapshot(WINDOW_MILLIS);
        assert_eq!(snap.requests, 1, "stale slot content must not leak");
        assert_eq!(snap.total_requests, 2);
    }

    #[test]
    fn snapshot_latest_tracks_last_traffic() {
        let w = SlidingWindow::default();
        assert_eq!(w.snapshot_latest().requests, 0);
        w.record(5 * SLOT_MILLIS, 700, false);
        let snap = w.snapshot_latest();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.total_requests, 1);
    }

    #[test]
    fn window_macro_interns_and_registry_snapshots() {
        window!("test.window.macro_interns").record(0, 42, false);
        let rows = global().snapshot_latest();
        let row = rows
            .iter()
            .find(|(name, _)| name == "test.window.macro_interns")
            .expect("registered window appears in registry snapshot");
        assert_eq!(row.1.total_requests, 1);
    }

    #[test]
    fn slow_log_keeps_worst_sorted_and_capped() {
        let log = SlowLog::new(3);
        for latency in [50u64, 10, 90, 20, 70, 60] {
            log.record(SlowQuery {
                method: "m".into(),
                latency_ns: latency,
                gen: 1,
                request_bytes: 1,
                response_bytes: 2,
            });
        }
        let worst: Vec<u64> = log.snapshot().iter().map(|q| q.latency_ns).collect();
        assert_eq!(worst, vec![90, 70, 60]);
        // Below the floor: rejected without entering the log.
        log.record(SlowQuery {
            method: "m".into(),
            latency_ns: 55,
            ..SlowQuery::default()
        });
        assert_eq!(log.snapshot().len(), 3);
        assert_eq!(log.snapshot().last().unwrap().latency_ns, 60);
        log.reset();
        assert!(log.snapshot().is_empty());
    }
}
