//! The machine-readable run report emitted by `--metrics-out`.
//!
//! [`RunReport`] is a stable, versioned schema ([`REPORT_SCHEMA_VERSION`])
//! merging corpus statistics, points-to solver aggregates, model-training
//! statistics, registry counters, diagnostics accounting, and stage
//! timings. The schema is split along a determinism boundary:
//!
//! * everything **outside** `timings` is a pure function of the input
//!   corpus, seed, and options — byte-identical across shard sizes and
//!   machines (the invariance tests serialize [`RunReport::invariant`]);
//! * `timings` holds wall-clock spans, gauges, and size histograms —
//!   machine- and schedule-dependent by nature.
//!
//! Consumers that diff or cache reports should compare the invariant
//! sections; consumers that profile read `timings`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::HistogramSnapshot;
use crate::span::SpanStat;
use crate::window::{SlowQuery, WindowSnapshot};

/// Version of the report layout. Bump on any breaking schema change;
/// `tools/check_report.rs` pins the full key set against drift.
///
/// History: 1 — initial schema; 2 — `timings` gained the `cache` section
/// (artifact-store activity); 3 — invariant `provenance` section (per-spec
/// evidence accounting); 4 — `timings` gained the `jobs` section
/// (demand-driven job-engine activity); 5 — `timings` gained the
/// `attribution` section (per-job cost tree roll-up) and histogram
/// snapshots gained `p50`/`p95`/`p99`; 6 — `timings` gained the `serve`
/// section (spec-query daemon traffic and re-learn accounting); 7 —
/// `timings.serve` gained per-method sliding-window latency `windows`, the
/// `slow` query log, and `slo` breach accounting.
pub const REPORT_SCHEMA_VERSION: u32 = 7;

/// Top-level run report. See the module docs for the determinism split.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Schema version ([`REPORT_SCHEMA_VERSION`]).
    pub schema: u32,
    /// CLI command that produced the report (`learn`, `eval`, `analyze`).
    pub command: String,
    /// Points-to engine used (`naive` or `worklist`).
    pub engine: String,
    /// Deterministic counters: identical across shard sizes for one seed.
    pub counters: ReportCounters,
    /// Diagnostics accounting, including what `max_diagnostics` dropped.
    pub diagnostics: DiagnosticsSection,
    /// Per-spec evidence accounting from the provenance index. Invariant:
    /// evidence ranking and the per-spec cap are deterministic.
    pub provenance: ProvenanceSection,
    /// Wall-clock data; excluded from determinism comparisons.
    pub timings: TimingsSection,
}

/// Deterministic counter sections of a [`RunReport`].
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct ReportCounters {
    /// Corpus ingestion totals (from `CorpusStats`).
    pub corpus: CorpusCounters,
    /// Points-to solver aggregates over every analyzed body.
    pub pta: PtaCounters,
    /// Model-training statistics.
    pub model: ModelCounters,
    /// Candidate extraction and selection.
    pub candidates: CandidateCounters,
    /// Raw registry counters (name → value) for everything not broken out
    /// above; deterministic because counters count work items, not time.
    pub metrics: BTreeMap<String, u64>,
}

/// Corpus ingestion totals.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorpusCounters {
    /// Files ingested.
    pub files: u64,
    /// Files that failed to parse or lower.
    pub failures: u64,
    /// Files skipped as duplicates.
    pub duplicates: u64,
    /// Event graphs built.
    pub graphs: u64,
    /// Events across all graphs.
    pub events: u64,
    /// Candidate edges across all graphs.
    pub edges: u64,
}

/// Points-to solver aggregates across all analyzed bodies.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq, Eq)]
pub struct PtaCounters {
    /// Bodies analyzed.
    pub bodies: u64,
    /// Fixpoint passes summed over bodies.
    pub passes: u64,
    /// Constraint/instruction evaluations summed over bodies.
    pub propagations: u64,
    /// Constraints summed over bodies (0 for the naive engine).
    pub constraints: u64,
    /// Bodies that hit the pass cap without converging.
    pub non_converged: u64,
    /// Distribution of per-body pass counts, `(passes, bodies)` sorted by
    /// pass count.
    pub pass_histogram: Vec<(u64, u64)>,
}

/// Model-training statistics.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct ModelCounters {
    /// Positive training samples.
    pub samples_pos: u64,
    /// Negative (corrupted) training samples.
    pub samples_neg: u64,
    /// Per-event-kind-pair models trained.
    pub models: u64,
    /// SGD epochs run.
    pub epochs: u64,
    /// Mean training loss after each epoch.
    pub epoch_loss: Vec<f64>,
    /// Mean loss of the final epoch.
    pub final_loss: f64,
    /// Training-set accuracy of the final model.
    pub train_accuracy: f64,
}

/// Candidate extraction and selection counts.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq)]
pub struct CandidateCounters {
    /// Candidate specs extracted.
    pub extracted: u64,
    /// Candidates at or above the selection threshold.
    pub selected: u64,
    /// Selection threshold τ used (0 when not applicable).
    pub tau: f64,
}

/// Diagnostics accounting. `retained` honors `max_diagnostics`; the
/// `dropped`/`total_problems` pair makes capped runs distinguishable from
/// complete ones.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct DiagnosticsSection {
    /// Rendered diagnostics kept under the `max_diagnostics` cap.
    pub retained: Vec<String>,
    /// Problems whose diagnostics were dropped by the cap.
    pub dropped: u64,
    /// Total problems observed (failures + non-converged bodies).
    pub total_problems: u64,
}

/// Per-spec evidence accounting. Evidence is capped per spec
/// (`uspec-learn`'s `EVIDENCE_CAP`), so `retained ≤ total`; the overflow
/// is reported here rather than silently truncated.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct ProvenanceSection {
    /// Candidate specs with at least one recorded scored edge.
    pub specs: u64,
    /// Scored induced edges across all specs (including capped-out ones).
    pub evidence_total: u64,
    /// Evidence records retained under the per-spec cap.
    pub evidence_retained: u64,
    /// Records dropped by the cap (`evidence_total - evidence_retained`).
    pub evidence_overflow: u64,
    /// Per-spec `(spec, retained, total)` rows, in spec order.
    pub per_spec: Vec<(String, u64, u64)>,
}

/// Wall-clock section: spans, gauges, and size histograms. Excluded from
/// determinism comparisons.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct TimingsSection {
    /// End-to-end command wall time in seconds.
    pub total_seconds: f64,
    /// Span name → aggregated wall time.
    pub spans: BTreeMap<String, SpanStat>,
    /// Gauge name → value (e.g. `pipeline.peak_resident_graphs`).
    pub gauges: BTreeMap<String, u64>,
    /// Histogram name → distribution (e.g. shard sizes).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Artifact-store activity of this run.
    pub cache: CacheSection,
    /// Job-engine activity of this run.
    pub jobs: JobsSection,
    /// Per-job cost attribution over the job graph.
    pub attribution: AttributionSection,
    /// Spec-query daemon activity (`uspec serve`); all zeros for batch
    /// commands.
    pub serve: ServeSection,
}

/// `uspec serve` traffic and re-learn accounting. Lives under `timings`
/// because every field depends on request traffic and watcher scheduling —
/// the same corpus served twice answers a different number of queries —
/// so none of it may cross the determinism boundary.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct ServeSection {
    /// Frames received over all connections (`serve.requests`).
    pub requests: u64,
    /// Frames that never reached a method handler: parse failures, unknown
    /// methods, oversized lines (`serve.rejected`). Always ≤ `errors`.
    pub rejected: u64,
    /// Error responses sent, including rejected frames and handler-level
    /// failures such as bad params (`serve.errors`).
    pub errors: u64,
    /// Request batches drained — consecutive pipelined frames answered
    /// under one generation snapshot count once (`serve.batches`).
    pub batches: u64,
    /// Connections accepted (`serve.connections`).
    pub connections: u64,
    /// Incremental re-learns completed after the initial load
    /// (`serve.relearns`).
    pub relearns: u64,
    /// Watcher snapshot scans of the corpus directory
    /// (`serve.watch.scans`).
    pub watch_scans: u64,
    /// Per-method dispatch counts as `(method, frames)` rows, only for
    /// methods that were actually called; `requests == Σ rows + rejected`.
    pub by_method: Vec<(String, u64)>,
    /// Sliding-window latency aggregates as `(stream, snapshot)` rows,
    /// name-sorted: one row per served method plus `all` (every frame) and
    /// `other` (unroutable frames), only for streams that saw traffic.
    pub windows: Vec<(String, WindowSnapshot)>,
    /// The worst requests observed, slowest first (capped ring).
    pub slow: Vec<SlowQuery>,
    /// Live SLO sentinel accounting.
    pub slo: SloSection,
}

/// SLO sentinel accounting: how often the live daemon observed its
/// configured `[serve]` budgets breached (counted on breach *onsets*, not
/// per check tick), plus the staleness high-water.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SloSection {
    /// Total breach onsets (`serve.slo.breach`); equals the sum of the
    /// per-budget counts below.
    pub breaches: u64,
    /// Windowed-p99 ceiling breach onsets (`serve.slo.p99`).
    pub p99_breaches: u64,
    /// Windowed error-rate ceiling breach onsets (`serve.slo.error_rate`).
    pub error_rate_breaches: u64,
    /// Generation-staleness ceiling breach onsets (`serve.slo.staleness`).
    pub staleness_breaches: u64,
    /// Highest generation staleness the sentinel observed, in
    /// milliseconds (`serve.staleness_ms` gauge high-water).
    pub max_staleness_ms: u64,
}

/// Per-job cost attribution: the roll-up of the job engine's cost records
/// (see `uspec_telemetry::attribution`). Lives under `timings` because
/// every field is cache- and schedule-dependent — a warm run executes
/// nothing and attributes near-zero wall time.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct AttributionSection {
    /// Cost records retained for this run (one per resolved demand).
    pub records: u64,
    /// Records dropped by the retention cap; cross-validation against
    /// `timings.jobs` is exact only when this is 0.
    pub dropped: u64,
    /// Per-kind totals as `(kind, stats)` rows. Row order follows the job
    /// engine's kind order; every known kind appears even when idle, so
    /// rows align with `timings.jobs.kinds`.
    pub kinds: Vec<(String, KindAttribution)>,
    /// The top records by self time, most expensive first.
    pub top_self: Vec<AttributedJob>,
}

/// Cost totals for one job kind.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindAttribution {
    /// Demands resolved (executed + memo_hits + store_hits).
    pub demands: u64,
    /// Demands that executed the job body.
    pub executed: u64,
    /// Demands answered by the in-process memo table.
    pub memo_hits: u64,
    /// Demands answered by decoding the durable store.
    pub store_hits: u64,
    /// Total wall time of executed demands (body + store write-back);
    /// at least the `job.<kind>` span total, which nests inside it.
    pub exec_ns: u64,
    /// Executed wall time minus the wall time of nested demands — where
    /// this kind itself spent the run.
    pub self_ns: u64,
    /// Payload bytes decoded by store hits.
    pub decoded_bytes: u64,
}

/// One job in the `top_self` ranking.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq, Eq)]
pub struct AttributedJob {
    /// Job kind.
    pub kind: String,
    /// Hex content fingerprint of the job's key.
    pub key: String,
    /// How the demand was satisfied: `executed`, `memo`, or `store`.
    pub outcome: String,
    /// Wall time of the whole resolution.
    pub wall_ns: u64,
    /// Wall time net of nested demands.
    pub self_ns: u64,
    /// Payload bytes decoded (store hits only).
    pub decoded_bytes: u64,
}

/// Demand-driven job-engine activity. Lives under `timings` for the same
/// reason as [`CacheSection`]: how many jobs execute versus resolve from
/// the memo table or the store depends on what previous runs left behind,
/// so none of these numbers may cross the determinism boundary.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct JobsSection {
    /// Job bodies executed (`jobs.executed`).
    pub executed: u64,
    /// Demands satisfied without executing — memo or store
    /// (`jobs.reused`; equals the sum of per-kind `memo_hits +
    /// store_hits`).
    pub reused: u64,
    /// Cone roots detected at plan time: kept files whose content
    /// fingerprint differs from the store's ref slot, dirty-forced files,
    /// and changed model / score fold keys (`jobs.invalidated`).
    pub invalidated: u64,
    /// Per-kind breakdown as `(kind, stats)` rows, in scheduling order.
    pub kinds: Vec<(String, JobKindStats)>,
}

/// Per-job-kind resolution counts.
#[derive(Serialize, Deserialize, Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobKindStats {
    /// Job bodies of this kind executed.
    pub executed: u64,
    /// Demands answered by the in-process memo table.
    pub memo_hits: u64,
    /// Demands answered by decoding the durable store.
    pub store_hits: u64,
    /// Durable lookups that found nothing usable.
    pub store_misses: u64,
}

/// Artifact-store activity. Lives under `timings` because cache behavior
/// depends on what *previous* runs left on disk — the same command is a
/// wall of misses cold and a wall of hits warm — so none of these numbers
/// may cross the determinism boundary the invariant sections pin.
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct CacheSection {
    /// Store lookups attempted (0 when no `--cache-dir` was given).
    pub lookups: u64,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups not answered (`hits + misses == lookups`).
    pub misses: u64,
    /// Payload bytes read on hits.
    pub bytes_read: u64,
    /// Envelope bytes written on puts.
    pub bytes_written: u64,
    /// Entries evicted by `gc` during this run.
    pub evicted: u64,
    /// Misses caused by an unusable entry (corruption, version skew, I/O
    /// error) rather than plain absence.
    pub corrupt: u64,
    /// Rendered incident records for the `corrupt` misses, capped by the
    /// store's incident log.
    pub incidents: Vec<String>,
}

/// The deterministic sections of a [`RunReport`], cloned into one struct
/// so invariance tests can serialize and byte-compare them. (An owned
/// clone rather than a borrowed view: the derive setup used offline does
/// not support generic/lifetime parameters.)
#[derive(Serialize, Deserialize, Clone, Debug, Default, PartialEq)]
pub struct InvariantSections {
    /// Schema version.
    pub schema: u32,
    /// CLI command.
    pub command: String,
    /// Points-to engine.
    pub engine: String,
    /// Deterministic counters.
    pub counters: ReportCounters,
    /// Diagnostics accounting.
    pub diagnostics: DiagnosticsSection,
    /// Per-spec evidence accounting.
    pub provenance: ProvenanceSection,
}

impl RunReport {
    /// Fresh report for `command` run with `engine`, at the current schema
    /// version, with all counters zeroed.
    pub fn new(command: &str, engine: &str) -> RunReport {
        RunReport {
            schema: REPORT_SCHEMA_VERSION,
            command: command.to_owned(),
            engine: engine.to_owned(),
            ..RunReport::default()
        }
    }

    /// Clones the deterministic sections (everything except `timings`);
    /// serializations of this value must be byte-identical across shard
    /// sizes for the same corpus, seed, and options.
    pub fn invariant(&self) -> InvariantSections {
        InvariantSections {
            schema: self.schema,
            command: self.command.clone(),
            engine: self.engine.clone(),
            counters: self.counters.clone(),
            diagnostics: self.diagnostics.clone(),
            provenance: self.provenance.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("learn", "worklist");
        r.counters.corpus = CorpusCounters {
            files: 300,
            failures: 4,
            duplicates: 2,
            graphs: 294,
            events: 1200,
            edges: 5400,
        };
        r.counters.pta = PtaCounters {
            bodies: 294,
            passes: 600,
            propagations: 9000,
            constraints: 4200,
            non_converged: 1,
            pass_histogram: vec![(2, 290), (3, 3), (64, 1)],
        };
        r.counters.model = ModelCounters {
            samples_pos: 100,
            samples_neg: 100,
            models: 6,
            epochs: 6,
            epoch_loss: vec![0.6, 0.5, 0.45, 0.41, 0.39, 0.38],
            final_loss: 0.38,
            train_accuracy: 0.92,
        };
        r.counters.candidates = CandidateCounters {
            extracted: 40,
            selected: 9,
            tau: 0.8,
        };
        r.counters
            .metrics
            .insert("graph.graphs_built".to_owned(), 294);
        r.diagnostics = DiagnosticsSection {
            retained: vec!["file 12: parse error".to_owned()],
            dropped: 4,
            total_problems: 5,
        };
        r.provenance = ProvenanceSection {
            specs: 2,
            evidence_total: 25,
            evidence_retained: 16,
            evidence_overflow: 9,
            per_spec: vec![
                ("RetArg(HashMap.get/1, HashMap.put/2, 2)".to_owned(), 8, 17),
                ("RetSame(HashMap.get/1)".to_owned(), 8, 8),
            ],
        };
        r.timings.total_seconds = 1.25;
        r.timings.spans.insert(
            "stage.analyze".to_owned(),
            SpanStat {
                count: 5,
                total_ns: 900_000_000,
                max_ns: 300_000_000,
            },
        );
        r.timings
            .gauges
            .insert("pipeline.peak_resident_graphs".to_owned(), 64);
        r.timings.histograms.insert(
            "pipeline.shard_files".to_owned(),
            HistogramSnapshot {
                count: 5,
                sum: 300,
                buckets: vec![(63, 4), (127, 1)],
                p50: 63,
                p95: 127,
                p99: 127,
            },
        );
        r.timings.jobs = JobsSection {
            executed: 12,
            reused: 588,
            invalidated: 2,
            kinds: vec![
                (
                    "stats".to_owned(),
                    JobKindStats {
                        executed: 1,
                        memo_hits: 0,
                        store_hits: 293,
                        store_misses: 1,
                    },
                ),
                (
                    "score".to_owned(),
                    JobKindStats {
                        executed: 294,
                        memo_hits: 0,
                        store_hits: 0,
                        store_misses: 0,
                    },
                ),
            ],
        };
        r.timings.attribution = AttributionSection {
            records: 600,
            dropped: 0,
            kinds: vec![(
                "score".to_owned(),
                KindAttribution {
                    demands: 294,
                    executed: 294,
                    memo_hits: 0,
                    store_hits: 0,
                    exec_ns: 900_000_000,
                    self_ns: 750_000_000,
                    decoded_bytes: 0,
                },
            )],
            top_self: vec![AttributedJob {
                kind: "score".to_owned(),
                key: "00112233445566778899aabbccddeeff".to_owned(),
                outcome: "executed".to_owned(),
                wall_ns: 12_000_000,
                self_ns: 11_000_000,
                decoded_bytes: 0,
            }],
        };
        r.timings.serve = ServeSection {
            requests: 20,
            rejected: 2,
            errors: 3,
            batches: 12,
            connections: 4,
            relearns: 1,
            watch_scans: 40,
            by_method: vec![("spec.lookup".to_owned(), 10), ("status".to_owned(), 8)],
            windows: vec![(
                "all".to_owned(),
                WindowSnapshot {
                    window_seconds: 60,
                    requests: 20,
                    errors: 3,
                    mean_ns: 400_000,
                    p50_ns: 262_143,
                    p95_ns: 2_097_151,
                    p99_ns: 2_097_151,
                    total_requests: 20,
                    total_errors: 3,
                    total_p50_ns: 262_143,
                    total_p95_ns: 2_097_151,
                    total_p99_ns: 2_097_151,
                },
            )],
            slow: vec![SlowQuery {
                method: "explain".to_owned(),
                latency_ns: 2_000_000,
                gen: 1,
                request_bytes: 24,
                response_bytes: 4096,
            }],
            slo: SloSection {
                breaches: 1,
                p99_breaches: 1,
                error_rate_breaches: 0,
                staleness_breaches: 0,
                max_staleness_ms: 180,
            },
        };
        r
    }

    #[test]
    fn report_serde_round_trip() {
        let report = sample_report();
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // And once more through the pretty printer.
        let pretty = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&pretty).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn invariant_excludes_timings() {
        let a = sample_report();
        let mut b = a.clone();
        b.timings.total_seconds = 99.0;
        b.timings.spans.clear();
        assert_ne!(a, b);
        let ja = serde_json::to_string(&a.invariant()).unwrap();
        let jb = serde_json::to_string(&b.invariant()).unwrap();
        assert_eq!(ja, jb);
        // But counter changes do show up.
        b.counters.corpus.files += 1;
        assert_ne!(ja, serde_json::to_string(&b.invariant()).unwrap());
        // And so do provenance changes — the section is invariant.
        b.counters.corpus.files -= 1;
        b.provenance.evidence_total += 1;
        assert_ne!(ja, serde_json::to_string(&b.invariant()).unwrap());
    }

    #[test]
    fn new_report_carries_schema_version() {
        let r = RunReport::new("eval", "naive");
        assert_eq!(r.schema, REPORT_SCHEMA_VERSION);
        assert_eq!(r.command, "eval");
        assert_eq!(r.engine, "naive");
    }
}
