//! Leveled logging to stderr.
//!
//! A deliberately small replacement for the CLI's former raw `eprintln!`s:
//! one process-global level (an `AtomicU8`), five macros, no targets or
//! sinks. Primary command *output* (spec listings, tables, DOT) does not go
//! through here — it belongs on stdout; this layer carries status,
//! progress, and diagnostics on stderr where `--log-level` / `-q` can
//! control them.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the user must see even under `-q`.
    Error = 0,
    /// Suspicious but non-fatal conditions.
    Warn = 1,
    /// Normal status output (the default).
    Info = 2,
    /// Extra detail; span entry/exit echoing activates here.
    Debug = 3,
    /// Firehose.
    Trace = 4,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// Lower-case name, matching what [`FromStr`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current process-global log level.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Whether a message at `at` would currently be emitted.
#[inline]
pub fn enabled_at(at: Level) -> bool {
    at <= level()
}

/// Emits one line at `at` (no-op when filtered). Prefer the `log_*!` macros.
pub fn write(at: Level, args: fmt::Arguments<'_>) {
    if !enabled_at(at) {
        return;
    }
    match at {
        Level::Info => eprintln!("{args}"),
        other => eprintln!("{}: {args}", other.name()),
    }
}

/// Emits a span entry/exit echo line, indented two spaces per nesting
/// depth. Only called by span guards when the level is at least `debug`.
pub fn span_echo(depth: usize, text: fmt::Arguments<'_>) {
    eprintln!("debug: {:indent$}{text}", "", indent = depth * 2);
}

/// Logs at [`Level::Error`]. Always visible, even under `-q`.
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        $crate::log::write($crate::Level::Error, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        $crate::log::write($crate::Level::Warn, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`] — the default level for status output.
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        $crate::log::write($crate::Level::Info, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        $crate::log::write($crate::Level::Debug, ::std::format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! log_trace {
    ($($arg:tt)*) => {
        $crate::log::write($crate::Level::Trace, ::std::format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!("warn".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("warning".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!("trace".parse::<Level>().unwrap(), Level::Trace);
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Error < Level::Warn && Level::Debug < Level::Trace);
        assert_eq!(Level::Debug.to_string(), "debug");
    }
}
