//! Per-job cost records and their roll-up into `timings.attribution`.
//!
//! The job engine (`uspec-jobs`) records one [`JobCostRec`] per demand it
//! resolves: which kind, which key, which parent demanded it, how the
//! demand was satisfied, how long the whole resolution took, and how many
//! payload bytes a store hit decoded. Records land in a process-global
//! log (mirroring the metrics registry) so report assembly can roll them
//! up without threading the engine through every layer:
//!
//! * [`section`] — the report's machine-local `timings.attribution`
//!   section: per-kind demand/hit/executed counts, executed wall time,
//!   *self* time (executed wall minus the wall of nested demands), decoded
//!   bytes, and the top-N records by self time.
//! * [`collapsed_stacks`] — the same records as collapsed-stack flamegraph
//!   lines (`parent;child self_ns`), reconstructing each record's kind
//!   stack from the observed parent edges.
//!
//! Everything here is cache- and schedule-dependent (a warm run executes
//! nothing), so it must stay out of the deterministic report sections.
//! Recording honors [`crate::enabled`] and the log is cleared by
//! [`crate::reset`]. The log is capped at [`MAX_RETAINED`] records; the
//! overflow count is carried into the section so consumers can tell a
//! complete roll-up from a truncated one.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::report::{AttributedJob, AttributionSection, KindAttribution};

/// Cap on retained cost records; one record is ~100 bytes, so the cap
/// bounds the log at a few MB even for very large corpora.
pub const MAX_RETAINED: usize = 1 << 16;

/// How a recorded demand was satisfied (a plain mirror of the job
/// engine's `Outcome`, kept here so this crate stays dependency-free).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostOutcome {
    /// The job body ran.
    Executed,
    /// Answered from the in-process memo table.
    MemoHit,
    /// Decoded from the durable store.
    StoreHit,
}

impl CostOutcome {
    /// Stable name used in reports and flamegraph annotations.
    pub fn as_str(self) -> &'static str {
        match self {
            CostOutcome::Executed => "executed",
            CostOutcome::MemoHit => "memo",
            CostOutcome::StoreHit => "store",
        }
    }
}

/// One resolved demand, as recorded by the job engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobCostRec {
    /// Job kind (telemetry name segment, e.g. `stats`).
    pub kind: &'static str,
    /// Hex content fingerprint of the job's key.
    pub key: String,
    /// The demanding job, `None` for driver demands.
    pub parent: Option<(&'static str, String)>,
    /// Which layer satisfied the demand.
    pub outcome: CostOutcome,
    /// Wall time of the whole resolution: memo lookup, store decode, or
    /// body execution plus store write-back.
    pub wall_ns: u64,
    /// Payload bytes decoded on a store hit (0 otherwise).
    pub decoded_bytes: u64,
}

static LOG: Mutex<Vec<JobCostRec>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Appends one cost record. No-op when telemetry is disabled; counts
/// (rather than silently drops) records past [`MAX_RETAINED`].
pub fn record(rec: JobCostRec) {
    if !crate::enabled() {
        return;
    }
    let mut log = LOG.lock().expect("cost log poisoned");
    if log.len() >= MAX_RETAINED {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    } else {
        log.push(rec);
    }
}

/// Copies the retained records out, in completion order.
pub fn snapshot() -> Vec<JobCostRec> {
    LOG.lock().expect("cost log poisoned").clone()
}

/// Records dropped by the [`MAX_RETAINED`] cap since the last reset.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clears the log and the dropped count (called by [`crate::reset`]).
pub fn reset() {
    LOG.lock().expect("cost log poisoned").clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Self time of each record: executed records subtract the wall of every
/// demand made with them as parent; hits have no children by construction.
fn self_times(recs: &[JobCostRec]) -> Vec<u64> {
    let mut child_wall: HashMap<(&str, &str), u64> = HashMap::new();
    for r in recs {
        if let Some((pk, pkey)) = &r.parent {
            *child_wall.entry((pk, pkey.as_str())).or_insert(0) += r.wall_ns;
        }
    }
    recs.iter()
        .map(|r| match r.outcome {
            CostOutcome::Executed => r.wall_ns.saturating_sub(
                child_wall
                    .get(&(r.kind, r.key.as_str()))
                    .copied()
                    .unwrap_or(0),
            ),
            _ => r.wall_ns,
        })
        .collect()
}

/// Rolls the recorded costs into the report's `timings.attribution`
/// section. `kinds` fixes the row order (zero rows included, so per-kind
/// totals line up with `timings.jobs` for cross-validation); kinds that
/// appear in records but not in `kinds` are appended in name order.
/// `top_n` bounds the by-self-time record list.
pub fn section(kinds: &[&str], top_n: usize) -> AttributionSection {
    let recs = snapshot();
    let selfs = self_times(&recs);

    let mut rows: BTreeMap<&str, KindAttribution> = BTreeMap::new();
    for (r, &self_ns) in recs.iter().zip(&selfs) {
        let row = rows.entry(r.kind).or_default();
        row.demands += 1;
        match r.outcome {
            CostOutcome::Executed => {
                row.executed += 1;
                row.exec_ns += r.wall_ns;
                row.self_ns += self_ns;
            }
            CostOutcome::MemoHit => row.memo_hits += 1,
            CostOutcome::StoreHit => row.store_hits += 1,
        }
        row.decoded_bytes += r.decoded_bytes;
    }

    let mut ordered: Vec<(String, KindAttribution)> = Vec::new();
    for &k in kinds {
        ordered.push((k.to_owned(), rows.remove(k).unwrap_or_default()));
    }
    for (k, row) in rows {
        ordered.push((k.to_owned(), row));
    }

    // Top-N by self time, deterministically tie-broken by kind then key.
    let mut ranked: Vec<usize> = (0..recs.len()).collect();
    ranked.sort_by(|&a, &b| {
        selfs[b]
            .cmp(&selfs[a])
            .then_with(|| recs[a].kind.cmp(recs[b].kind))
            .then_with(|| recs[a].key.cmp(&recs[b].key))
    });
    let top_self = ranked
        .into_iter()
        .take(top_n)
        .map(|i| AttributedJob {
            kind: recs[i].kind.to_owned(),
            key: recs[i].key.clone(),
            outcome: recs[i].outcome.as_str().to_owned(),
            wall_ns: recs[i].wall_ns,
            self_ns: selfs[i],
            decoded_bytes: recs[i].decoded_bytes,
        })
        .collect();

    AttributionSection {
        records: recs.len() as u64,
        dropped: dropped(),
        kinds: ordered,
        top_self,
    }
}

/// Exports the cost tree as collapsed-stack flamegraph lines: one
/// `kind;kind;kind self_ns` line per distinct kind stack, sorted by
/// stack. Feed to `flamegraph.pl` (or any collapsed-stack consumer) to
/// visualize where the run's wall time went.
pub fn collapsed_stacks() -> String {
    let recs = snapshot();
    let selfs = self_times(&recs);
    // First-observed parent per job identity; stacks are reconstructed by
    // walking up these edges (depth-capped — the job graph is a DAG, but a
    // corrupt record must not hang the exporter).
    let mut parent_of: HashMap<(&str, &str), (&str, &str)> = HashMap::new();
    for r in &recs {
        if let Some((pk, pkey)) = &r.parent {
            parent_of
                .entry((r.kind, r.key.as_str()))
                .or_insert((pk, pkey.as_str()));
        }
    }
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    for (r, &self_ns) in recs.iter().zip(&selfs) {
        if self_ns == 0 {
            continue;
        }
        let mut frames = vec![r.kind];
        let mut at = (r.kind, r.key.as_str());
        for _ in 0..16 {
            match parent_of.get(&at) {
                Some(&p) => {
                    frames.push(p.0);
                    at = p;
                }
                None => break,
            }
        }
        frames.reverse();
        *lines.entry(frames.join(";")).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (stack, ns) in lines {
        out.push_str(&format!("{stack} {ns}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The log is process-global and shared with every other test in this
    // binary, so these tests use unique keys and assert on filtered views
    // rather than resetting.

    fn rec(
        kind: &'static str,
        key: &str,
        parent: Option<(&'static str, &str)>,
        outcome: CostOutcome,
        wall_ns: u64,
    ) -> JobCostRec {
        JobCostRec {
            kind,
            key: key.to_owned(),
            parent: parent.map(|(k, f)| (k, f.to_owned())),
            outcome,
            wall_ns,
            decoded_bytes: 0,
        }
    }

    #[test]
    fn self_time_subtracts_nested_demands() {
        let recs = vec![
            rec("score", "s1", None, CostOutcome::Executed, 100),
            rec(
                "model",
                "m1",
                Some(("score", "s1")),
                CostOutcome::Executed,
                60,
            ),
            rec(
                "stats",
                "f1",
                Some(("model", "m1")),
                CostOutcome::MemoHit,
                10,
            ),
        ];
        let selfs = self_times(&recs);
        assert_eq!(selfs, vec![40, 50, 10]);
    }

    #[test]
    fn section_orders_kinds_and_ranks_top_self() {
        for r in [
            rec("score", "sec-s", None, CostOutcome::Executed, 1000),
            rec(
                "stats",
                "sec-f",
                Some(("score", "sec-s")),
                CostOutcome::Executed,
                900,
            ),
            rec(
                "stats",
                "sec-g",
                Some(("score", "sec-s")),
                CostOutcome::StoreHit,
                5,
            ),
        ] {
            record(r);
        }
        let s = section(&["stats", "score", "digest"], 2);
        assert!(s.records >= 3);
        assert_eq!(s.dropped, 0);
        let names: Vec<&str> = s.kinds.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(&names[..3], &["stats", "score", "digest"]);
        let stats = &s.kinds[0].1;
        assert!(stats.executed >= 1 && stats.store_hits >= 1);
        assert_eq!(s.top_self.len(), 2);
        assert!(s.top_self[0].self_ns >= s.top_self[1].self_ns);
    }

    #[test]
    fn collapsed_stacks_reconstruct_parent_chains() {
        for r in [
            rec("score", "fl-s", None, CostOutcome::Executed, 500),
            rec(
                "model",
                "fl-m",
                Some(("score", "fl-s")),
                CostOutcome::Executed,
                300,
            ),
            rec(
                "samples",
                "fl-a",
                Some(("model", "fl-m")),
                CostOutcome::Executed,
                100,
            ),
        ] {
            record(r);
        }
        let flame = collapsed_stacks();
        assert!(
            flame.contains("score;model;samples 100"),
            "stack lines:\n{flame}"
        );
        assert!(flame.contains("score;model 200"), "stack lines:\n{flame}");
    }
}
