//! Runtime kill switch and global reset, in their own test binary: both
//! mutate process-global state, so they must not share a process with the
//! concurrent unit tests inside the crate.

use uspec_telemetry::{counter, gauge, histogram, span};

#[test]
fn disable_reset_reenable() {
    // `off` builds are compile-time disabled; nothing to assert here.
    if cfg!(feature = "off") {
        assert!(!uspec_telemetry::enabled());
        return;
    }

    assert!(uspec_telemetry::enabled());
    counter!("ks.counter").add(3);
    gauge!("ks.gauge").record_max(7);
    histogram!("ks.hist").record(10);
    {
        let _s = span!("ks.span");
    }

    // Disabled: every primitive becomes a no-op.
    uspec_telemetry::set_enabled(false);
    assert!(!uspec_telemetry::enabled());
    counter!("ks.counter").add(100);
    gauge!("ks.gauge").record_max(100);
    histogram!("ks.hist").record(100);
    {
        let _s = span!("ks.span");
    }
    assert_eq!(counter!("ks.counter").get(), 3);
    assert_eq!(gauge!("ks.gauge").get(), 7);
    assert_eq!(histogram!("ks.hist").snapshot().count, 1);
    assert_eq!(uspec_telemetry::span::snapshot()["ks.span"].count, 1);

    // Reset zeroes values but keeps handles registered.
    uspec_telemetry::set_enabled(true);
    uspec_telemetry::reset();
    assert_eq!(counter!("ks.counter").get(), 0);
    assert_eq!(gauge!("ks.gauge").get(), 0);
    assert_eq!(histogram!("ks.hist").snapshot().count, 0);
    assert!(!uspec_telemetry::span::snapshot().contains_key("ks.span"));

    counter!("ks.counter").inc();
    assert_eq!(counter!("ks.counter").get(), 1);
    let snap = uspec_telemetry::metrics::global().snapshot();
    assert_eq!(snap.counters["ks.counter"], 1);
}
