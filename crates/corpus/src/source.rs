//! Shard-streaming corpus ingestion.
//!
//! The paper's corpora (~4M Java files) do not fit in memory alongside
//! their event graphs. [`CorpusSource`] abstracts *where files come from*
//! so the pipeline can ingest a corpus in bounded-size shards, keeping at
//! most one shard's worth of analysis state alive at a time:
//!
//! * [`SliceSource`] — files already in memory (CLI directory walks,
//!   tests);
//! * [`GeneratedSource`] — files produced on demand from the synthetic
//!   generator, so even the source *text* is never fully resident.
//!
//! Sources must be **replayable**: the learning pipeline makes two passes
//! (train the edge model ϕ, then extract candidates Γ_S with it), and both
//! must see exactly the same files at the same stable indices.

use crate::gen::{GenContext, GenOptions};
use crate::library::Library;

/// A contiguous run of corpus files with their stable global indices.
#[derive(Clone, Debug, Default)]
pub struct Shard {
    /// Stable global index of `files[0]`; file `files[k]` has index
    /// `start + k`. Indices are assigned by corpus position and never
    /// change with shard size — per-file RNG streams key off them.
    pub start: usize,
    /// The `(name, source)` pairs of this shard, in corpus order.
    pub files: Vec<(String, String)>,
}

impl Shard {
    /// Iterates `(stable_index, name, source)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.files
            .iter()
            .enumerate()
            .map(|(k, (name, source))| (self.start + k, name.as_str(), source.as_str()))
    }
}

/// A corpus ingestible shard-by-shard in a deterministic order.
///
/// `shard(start, len)` must be a pure function of its arguments: the
/// pipeline replays shards across its two passes and relies on getting
/// byte-identical files both times.
pub trait CorpusSource {
    /// Total number of files in the corpus.
    fn num_files(&self) -> usize;

    /// Materializes files `[start, start + len)`, clamped to the corpus
    /// end. `start` past the end yields an empty shard.
    fn shard(&self, start: usize, len: usize) -> Shard;
}

/// Iterates `source` in shards of `shard_size` files (the last shard may be
/// shorter). A `shard_size` of 0 is treated as 1.
pub fn shards<S: CorpusSource + ?Sized>(
    source: &S,
    shard_size: usize,
) -> impl Iterator<Item = Shard> + '_ {
    let size = shard_size.max(1);
    let total = source.num_files();
    (0..total.div_ceil(size)).map(move |k| source.shard(k * size, size))
}

/// An in-memory corpus over borrowed `(name, source)` pairs.
pub struct SliceSource<'a> {
    files: &'a [(String, String)],
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice of `(name, source)` pairs.
    pub fn new(files: &'a [(String, String)]) -> SliceSource<'a> {
        SliceSource { files }
    }
}

impl CorpusSource for SliceSource<'_> {
    fn num_files(&self) -> usize {
        self.files.len()
    }

    fn shard(&self, start: usize, len: usize) -> Shard {
        let end = start.saturating_add(len).min(self.files.len());
        let start = start.min(self.files.len());
        Shard {
            start,
            files: self.files[start..end].to_vec(),
        }
    }
}

/// An on-demand generated corpus: each shard's files are synthesized when
/// requested and dropped with the shard, so the corpus text is never fully
/// resident. Produces byte-identical files to
/// [`generate_corpus`](crate::generate_corpus) with the same options.
///
/// ```
/// use uspec_corpus::{generate_corpus, java_library, CorpusSource, GenOptions, GeneratedSource};
/// let lib = java_library();
/// let opts = GenOptions { num_files: 10, ..GenOptions::default() };
/// let eager = generate_corpus(&lib, &opts);
/// let lazy = GeneratedSource::new(&lib, &opts);
/// let shard = lazy.shard(4, 3);
/// assert_eq!(shard.files[0].1, eager[4].source);
/// ```
pub struct GeneratedSource<'a> {
    ctx: GenContext<'a>,
}

impl<'a> GeneratedSource<'a> {
    /// Prepares on-demand generation for `lib` with `opts`.
    pub fn new(lib: &'a Library, opts: &GenOptions) -> GeneratedSource<'a> {
        GeneratedSource {
            ctx: GenContext::new(lib, opts.clone()),
        }
    }
}

impl CorpusSource for GeneratedSource<'_> {
    fn num_files(&self) -> usize {
        self.ctx.num_files()
    }

    fn shard(&self, start: usize, len: usize) -> Shard {
        let total = self.ctx.num_files();
        let end = start.saturating_add(len).min(total);
        let start = start.min(total);
        Shard {
            start,
            files: (start..end)
                .map(|i| {
                    let f = self.ctx.generate_file(i);
                    (f.name, f.source)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_corpus;
    use crate::java::java_library;

    fn pairs(n: usize, seed: u64) -> Vec<(String, String)> {
        (0..n)
            .map(|i| (format!("f{i}"), format!("src{i}-{seed}")))
            .collect()
    }

    #[test]
    fn slice_source_shards_cover_the_corpus_once() {
        let files = pairs(10, 0);
        let src = SliceSource::new(&files);
        for size in [1, 3, 4, 10, 99] {
            let collected: Vec<(String, String)> =
                shards(&src, size).flat_map(|s| s.files).collect();
            assert_eq!(collected, files, "shard_size {size}");
        }
        let sizes: Vec<usize> = shards(&src, 4).map(|s| s.files.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        let starts: Vec<usize> = shards(&src, 4).map(|s| s.start).collect();
        assert_eq!(starts, vec![0, 4, 8]);
    }

    #[test]
    fn shard_iter_exposes_stable_indices() {
        let files = pairs(7, 1);
        let src = SliceSource::new(&files);
        let shard = src.shard(5, 5);
        let idx: Vec<usize> = shard.iter().map(|(i, _, _)| i).collect();
        assert_eq!(idx, vec![5, 6]);
    }

    #[test]
    fn generated_source_matches_eager_generation() {
        let lib = java_library();
        let opts = GenOptions {
            num_files: 30,
            seed: 1234,
            ..GenOptions::default()
        };
        let eager = generate_corpus(&lib, &opts);
        let lazy = GeneratedSource::new(&lib, &opts);
        assert_eq!(lazy.num_files(), 30);
        for size in [1, 7, 30] {
            let collected: Vec<(String, String)> =
                shards(&lazy, size).flat_map(|s| s.files).collect();
            assert_eq!(collected.len(), eager.len());
            for (got, want) in collected.iter().zip(&eager) {
                assert_eq!(got.0, want.name);
                assert_eq!(got.1, want.source, "shard_size {size}");
            }
        }
    }

    #[test]
    fn generated_shards_are_replayable_out_of_order() {
        let lib = java_library();
        let opts = GenOptions {
            num_files: 12,
            seed: 9,
            ..GenOptions::default()
        };
        let lazy = GeneratedSource::new(&lib, &opts);
        let late = lazy.shard(8, 4);
        let early = lazy.shard(0, 4);
        let again = lazy.shard(8, 4);
        assert_eq!(late.files, again.files);
        assert_ne!(late.files, early.files);
    }

    #[test]
    fn zero_shard_size_is_clamped() {
        let files = pairs(3, 2);
        let src = SliceSource::new(&files);
        assert_eq!(shards(&src, 0).count(), 3);
    }
}
