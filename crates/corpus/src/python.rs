//! The Python-like universe (Tab. 6): builtin containers, `configParser`,
//! `os`, `re`, `numpy`, `pandas` and friends.
//!
//! Noteworthy inhabitants:
//!
//! * `Dict` — subscript store/load, the highest-match candidate of Tab. 3
//!   (`RetArg(SubscriptStore, SubscriptLoad, 2)`), plus the
//!   `setdefault`/`pop` pair that powers the Fig. 8b taint example;
//! * `List.pop` — the planted *incorrect* `RetSame` of Tab. 3: popped
//!   elements are consumed like ordinary strings (consistently and often
//!   chained), so the probabilistic model finds its induced edges highly
//!   plausible even though two pops never alias;
//! * `configParser.SafeConfigParser` — the 3-argument `RetArg(get, set, 3)`.

use crate::library::{ArgKind, ClassBuilder, FactoryStep, Library, MethodSem, Obtain, Universe};
use uspec_lang::Symbol;

use ArgKind::{Int, Obj, Str};
use MethodSem::{FreshPerCall, Load, LoadSame, StackPop, StackPush, Store, Take, Void};

fn step(on: Option<&str>, method: &str, args: &[ArgKind]) -> FactoryStep {
    FactoryStep {
        on: on.map(Symbol::intern),
        method: Symbol::intern(method),
        args: args.to_vec(),
    }
}

/// Builds the Python-like [`Library`].
#[allow(clippy::vec_init_then_push)]
pub fn python_library() -> Library {
    let mut classes = Vec::new();

    // ---- Strings ----------------------------------------------------------
    classes.push(
        ClassBuilder::new("Str", "builtins")
            .method("strip", &[], Some("Str"), LoadSame)
            .method("lower", &[], Some("Str"), LoadSame)
            .method("split", &[Str], None, FreshPerCall)
            .method("startswith", &[Str], None, LoadSame)
            .method("format", &[Obj], Some("Str"), FreshPerCall)
            .true_ret_same("strip")
            .true_ret_same("lower")
            .true_ret_same("startswith")
            .profile(
                &[
                    ("strip", 0, 3.0),
                    ("lower", 0, 2.0),
                    ("split", 1, 2.0),
                    ("startswith", 1, 1.0),
                ],
                0.6,
            )
            .build(),
    );

    // ---- Builtin containers -------------------------------------------------
    classes.push(
        ClassBuilder::new("Dict", "builtins")
            .method("SubscriptStore", &[Str, Obj], None, Store { value_arg: 2 })
            .method("SubscriptLoad", &[Str], None, Load)
            .method("get", &[Str], None, Load)
            .method("setdefault", &[Str, Obj], None, Store { value_arg: 2 })
            .method("pop", &[Str], None, Take)
            .method("keys", &[], None, FreshPerCall)
            .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
            .true_ret_arg("get", "SubscriptStore", 2)
            .true_ret_arg("pop", "SubscriptStore", 2)
            .true_ret_arg("SubscriptLoad", "setdefault", 2)
            .true_ret_arg("get", "setdefault", 2)
            .true_ret_arg("pop", "setdefault", 2)
            .true_ret_same("SubscriptLoad")
            .true_ret_same("get")
            .build(),
    );
    classes.push(
        ClassBuilder::new("List", "builtins")
            .method("append", &[Obj], None, StackPush { value_arg: 1 })
            // Lists-of-strings are so common that popped elements look like
            // strings to the model: the Tab. 3 false positive.
            .method("pop", &[], Some("Str"), StackPop)
            .method("SubscriptStore", &[Int, Obj], None, Store { value_arg: 2 })
            .method("SubscriptLoad", &[Int], None, Load)
            .method("count", &[], None, FreshPerCall)
            .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
            .true_ret_arg("pop", "append", 1)
            .true_ret_same("SubscriptLoad")
            .build(),
    );

    // ---- configParser ---------------------------------------------------------
    classes.push(
        ClassBuilder::new("configParser.SafeConfigParser", "ConfigParser")
            .method("set", &[Str, Str, Obj], None, Store { value_arg: 3 })
            .method("get", &[Str, Str], None, Load)
            .method("read", &[Str], None, Void)
            .true_ret_arg("get", "set", 3)
            .true_ret_same("get")
            .build(),
    );

    // ---- collections --------------------------------------------------------
    for name in ["collections.OrderedDict", "collections.defaultdict"] {
        classes.push(
            ClassBuilder::new(name, "collections")
                .method("SubscriptStore", &[Str, Obj], None, Store { value_arg: 2 })
                .method("SubscriptLoad", &[Str], None, Load)
                .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
                .true_ret_same("SubscriptLoad")
                .build(),
        );
    }
    classes.push(
        ClassBuilder::new("collections.deque", "collections")
            .method("append", &[Obj], None, StackPush { value_arg: 1 })
            .method("pop", &[], None, StackPop)
            .true_ret_arg("pop", "append", 1)
            .build(),
    );

    // ---- os ----------------------------------------------------------------
    classes.push(
        ClassBuilder::new("os", "os")
            .factory_only()
            .static_method("environ", &[], Some("os.Environ"), LoadSame)
            .static_method("getcwd", &[], Some("Str"), FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("os.Environ", "os")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![step(Some("os"), "environ", &[])]))
            .method("SubscriptStore", &[Str, Obj], None, Store { value_arg: 2 })
            .method("SubscriptLoad", &[Str], None, Load)
            .method("get", &[Str], None, Load)
            .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
            .true_ret_arg("get", "SubscriptStore", 2)
            .true_ret_same("SubscriptLoad")
            .true_ret_same("get")
            .build(),
    );

    // ---- re -----------------------------------------------------------------
    classes.push(
        ClassBuilder::new("re", "re")
            .factory_only()
            .static_method("compile", &[Str], Some("re.Pattern"), LoadSame)
            .build(),
    );
    classes.push(
        ClassBuilder::new("re.Pattern", "re")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![step(Some("re"), "compile", &[Str])]))
            .method("match", &[Str], Some("re.Match"), LoadSame)
            .method("search", &[Str], Some("re.Match"), LoadSame)
            .true_ret_same("match")
            .true_ret_same("search")
            .build(),
    );
    classes.push(
        ClassBuilder::new("re.Match", "re")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![
                step(Some("re"), "compile", &[Str]),
                step(None, "match", &[Str]),
            ]))
            .method("group", &[Int], Some("Str"), LoadSame)
            .method("start", &[Int], None, LoadSame)
            .true_ret_same("group")
            .true_ret_same("start")
            .profile(&[("group", 1, 3.0), ("start", 1, 1.0)], 0.4)
            .build(),
    );

    // ---- json / yaml ----------------------------------------------------------
    classes.push(
        ClassBuilder::new("json", "json")
            .factory_only()
            .static_method("loads", &[Str], Some("Dict"), FreshPerCall)
            .static_method("dumps", &[Obj], Some("Str"), FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("yaml", "yaml")
            .factory_only()
            .static_method("load", &[Str], Some("Dict"), FreshPerCall)
            .static_method("dump", &[Obj], Some("Str"), FreshPerCall)
            .build(),
    );

    // ---- numpy ------------------------------------------------------------------
    classes.push(
        ClassBuilder::new("numpy", "numpy")
            .factory_only()
            .static_method("array", &[Obj], Some("numpy.ndarray"), FreshPerCall)
            .static_method("zeros", &[Int], Some("numpy.ndarray"), FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("numpy.ndarray", "numpy")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![step(Some("numpy"), "zeros", &[Int])]))
            .method("SubscriptStore", &[Int, Obj], None, Store { value_arg: 2 })
            .method("SubscriptLoad", &[Int], None, Load)
            .method("reshape", &[Int], Some("numpy.ndarray"), LoadSame)
            .method("transpose", &[], Some("numpy.ndarray"), LoadSame)
            .method("sum", &[], None, FreshPerCall)
            .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
            .true_ret_same("SubscriptLoad")
            .true_ret_same("reshape")
            .true_ret_same("transpose")
            .profile(
                &[("sum", 0, 2.0), ("reshape", 1, 2.0), ("transpose", 0, 1.0)],
                0.5,
            )
            .build(),
    );

    // ---- pandas --------------------------------------------------------------------
    classes.push(
        ClassBuilder::new("pandas", "pandas")
            .factory_only()
            .static_method("read_csv", &[Str], Some("pandas.DataFrame"), FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("pandas.DataFrame", "pandas")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![step(
                Some("pandas"),
                "read_csv",
                &[Str],
            )]))
            .method("SubscriptStore", &[Str, Obj], None, Store { value_arg: 2 })
            .method("SubscriptLoad", &[Str], Some("pandas.Series"), Load)
            .method("head", &[], Some("pandas.DataFrame"), FreshPerCall)
            .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
            .true_ret_same("SubscriptLoad")
            .build(),
    );
    classes.push(
        ClassBuilder::new("pandas.Series", "pandas")
            .factory_only()
            .method("sum", &[], None, FreshPerCall)
            .method("mean", &[], None, FreshPerCall)
            .profile(&[("sum", 0, 2.0), ("mean", 0, 2.0)], 0.5)
            .build(),
    );

    // ---- web frameworks ------------------------------------------------------------
    classes.push(
        ClassBuilder::new("django.http.QueryDict", "django")
            .method("SubscriptStore", &[Str, Obj], None, Store { value_arg: 2 })
            .method("SubscriptLoad", &[Str], None, Load)
            .method("getlist", &[Str], None, Load)
            .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
            .true_ret_arg("getlist", "SubscriptStore", 2)
            .true_ret_same("SubscriptLoad")
            .true_ret_same("getlist")
            .build(),
    );
    classes.push(
        ClassBuilder::new("flask.Session", "flask")
            .method("SubscriptStore", &[Str, Obj], None, Store { value_arg: 2 })
            .method("SubscriptLoad", &[Str], None, Load)
            .method("pop", &[Str], None, Take)
            .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
            .true_ret_arg("pop", "SubscriptStore", 2)
            .true_ret_same("SubscriptLoad")
            .build(),
    );

    // ---- xml ---------------------------------------------------------------------
    classes.push(
        ClassBuilder::new("xml.Element", "xml")
            .method("set", &[Str, Obj], None, Store { value_arg: 2 })
            .method("get", &[Str], None, Load)
            .method("find", &[Str], Some("xml.Element"), LoadSame)
            .true_ret_arg("get", "set", 2)
            .true_ret_same("get")
            .true_ret_same("find")
            .build(),
    );

    // ---- sqlite3 (factory chain) ----------------------------------------------------
    classes.push(
        ClassBuilder::new("sqlite3", "sqlite3")
            .factory_only()
            .static_method("connect", &[Str], Some("sqlite3.Connection"), FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("sqlite3.Connection", "sqlite3")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![step(
                Some("sqlite3"),
                "connect",
                &[Str],
            )]))
            .method("execute", &[Str], Some("sqlite3.Cursor"), FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("sqlite3.Cursor", "sqlite3")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![
                step(Some("sqlite3"), "connect", &[Str]),
                step(None, "execute", &[Str]),
            ]))
            .method("fetchone", &[], Some("sqlite3.Row"), FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("sqlite3.Row", "sqlite3")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![
                step(Some("sqlite3"), "connect", &[Str]),
                step(None, "execute", &[Str]),
                step(None, "fetchone", &[]),
            ]))
            .method("SubscriptLoad", &[Int], Some("Str"), LoadSame)
            .true_ret_same("SubscriptLoad")
            .build(),
    );

    // ---- shelve / caches --------------------------------------------------------------
    classes.push(
        ClassBuilder::new("shelve.Shelf", "shelve")
            .method("SubscriptStore", &[Str, Obj], None, Store { value_arg: 2 })
            .method("SubscriptLoad", &[Str], None, Load)
            .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
            .true_ret_same("SubscriptLoad")
            .build(),
    );
    classes.push(
        ClassBuilder::new("collections.Counter", "collections")
            .method("SubscriptStore", &[Str, Obj], None, Store { value_arg: 2 })
            .method("SubscriptLoad", &[Str], None, Load)
            .true_ret_arg("SubscriptLoad", "SubscriptStore", 2)
            .true_ret_same("SubscriptLoad")
            .build(),
    );
    classes.push(
        ClassBuilder::new("django.core.cache.Cache", "django")
            .method("set", &[Str, Obj], None, Store { value_arg: 2 })
            .method("get", &[Str], None, Load)
            .true_ret_arg("get", "set", 2)
            .true_ret_same("get")
            .build(),
    );

    // ---- random (anti-pattern) ------------------------------------------------------
    classes.push(
        ClassBuilder::new("random.Random", "random")
            .method("randint", &[Int], None, FreshPerCall)
            .method("choice", &[Obj], None, FreshPerCall)
            .build(),
    );

    Library::new(Universe::Python, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::MethodId;
    use uspec_pta::Spec;

    #[test]
    fn library_builds() {
        let lib = python_library();
        assert!(lib.len() >= 18);
        assert_eq!(lib.universe, Universe::Python);
    }

    #[test]
    fn dict_subscript_ground_truth() {
        let lib = python_library();
        let load = MethodId::new("Dict", "SubscriptLoad", 1);
        let store = MethodId::new("Dict", "SubscriptStore", 2);
        assert!(lib.is_true_spec(&Spec::RetArg {
            target: load,
            source: store,
            x: 2
        }));
    }

    #[test]
    fn list_pop_ret_same_is_false_but_ret_arg_true() {
        let lib = python_library();
        let pop = MethodId::new("List", "pop", 0);
        let append = MethodId::new("List", "append", 1);
        assert!(!lib.is_true_spec(&Spec::RetSame { method: pop }));
        assert!(lib.is_true_spec(&Spec::RetArg {
            target: pop,
            source: append,
            x: 1
        }));
    }

    #[test]
    fn safe_config_parser_three_arg_spec() {
        let lib = python_library();
        let get = MethodId::new("configParser.SafeConfigParser", "get", 2);
        let set = MethodId::new("configParser.SafeConfigParser", "set", 3);
        assert!(lib.is_true_spec(&Spec::RetArg {
            target: get,
            source: set,
            x: 3
        }));
    }

    #[test]
    fn groups_cover_table6_rows() {
        let lib = python_library();
        let groups: std::collections::BTreeSet<&str> =
            lib.classes().map(|c| c.group.as_str()).collect();
        for g in [
            "numpy",
            "pandas",
            "os",
            "re",
            "django",
            "collections",
            "yaml",
            "json",
            "flask",
            "ConfigParser",
            "xml",
        ] {
            assert!(groups.contains(g), "missing group {g}");
        }
    }

    #[test]
    fn profiles_reference_declared_methods() {
        let lib = python_library();
        for c in lib.classes() {
            for (name, arity, _) in &c.profile.consumers {
                let m = c
                    .method(*name)
                    .unwrap_or_else(|| panic!("{}.{name} in profile but not declared", c.name));
                assert_eq!(m.arity, *arity);
            }
        }
    }
}
