//! Synthetic corpus generation.
//!
//! The paper trains on ~4M Java / ~1M Python GitHub files. This generator is
//! the substitute: it emits mini-language source files exercising the same
//! API-usage idioms the learning pipeline exploits:
//!
//! * **Producer–consumer chains** (`f = db.getFile(k); f.getName()`): the
//!   training signal — the model learns which consumer events follow which
//!   producer events on the *same* object.
//! * **Store/retrieve** (`c.put(k, v); y = c.get(k); y.consume()`): the
//!   candidate instances. Retrieved objects are consumed according to the
//!   stored value's class profile (they *are* that value), which is exactly
//!   what makes the induced edges plausible to the model.
//! * **Repeated calls** (`a = r.m(k); b = r.m(k)`): `RetSame` candidates —
//!   true ones (cached reads) and anti-patterns (`Iterator.next`,
//!   `SecureRandom.nextInt`) fall out of the same idiom; the ground truth
//!   differs and the consumption consistency decides the learned score.
//! * **Tree-building** (ANTLR-style shared-argument calls) and **noise**
//!   (unrelated calls, control flow, helper functions for interprocedural
//!   paths, distractors).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use uspec_lang::Symbol;

use crate::library::{ArgKind, Library, MethodSem, Obtain, Universe};

/// Options controlling corpus generation.
#[derive(Clone, Debug)]
pub struct GenOptions {
    /// Number of files to generate.
    pub num_files: usize,
    /// RNG seed.
    pub seed: u64,
    /// Relative weight of producer–consumer chain idioms.
    pub chain_weight: f64,
    /// Relative weight of store/retrieve idioms.
    pub store_retrieve_weight: f64,
    /// Relative weight of repeated-call idioms.
    pub repeated_call_weight: f64,
    /// Relative weight of tree-building (shared-argument) idioms.
    pub tree_weight: f64,
    /// Relative weight of pure-noise idioms.
    pub noise_weight: f64,
    /// Idioms per file (inclusive range).
    pub idioms_per_file: (usize, usize),
    /// Probability an idiom is wrapped in a branch.
    pub wrap_prob: f64,
    /// Probability an idiom is wrapped in a loop.
    pub loop_prob: f64,
    /// Probability the producing step goes through a helper function
    /// (exercising interprocedural analysis).
    pub helper_prob: f64,
    /// Probability of inserting a distractor statement inside an idiom.
    pub distractor_prob: f64,
    /// Probability that a retrieve uses a *different* key than the store
    /// (and a repeated call different arguments) — realistic non-aliasing
    /// usage.
    pub mismatch_prob: f64,
    /// Probability that a container key is an *unresolvable* API value
    /// (`k = flag0.makeKey()`), exercising the §6.4 / App. A ⊤/⊥
    /// machinery in evaluation corpora.
    pub unknown_key_prob: f64,
    /// Relative weight of builder-chain idioms (`sb.append(x).append(y)`),
    /// the evidence for the `RetRecv` extension pattern.
    pub builder_weight: f64,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions {
            num_files: 500,
            seed: 0xC0FFEE,
            chain_weight: 4.0,
            store_retrieve_weight: 2.0,
            repeated_call_weight: 1.5,
            tree_weight: 0.2,
            noise_weight: 1.5,
            idioms_per_file: (1, 4),
            wrap_prob: 0.18,
            loop_prob: 0.08,
            helper_prob: 0.12,
            distractor_prob: 0.25,
            mismatch_prob: 0.25,
            unknown_key_prob: 0.06,
            builder_weight: 0.4,
        }
    }
}

/// One generated source file.
#[derive(Clone, Debug)]
pub struct GeneratedFile {
    /// File name (unique within the corpus).
    pub name: String,
    /// Mini-language source text.
    pub source: String,
}

/// Generates a corpus of source files for `lib`.
///
/// # Examples
///
/// ```
/// use uspec_corpus::{java_library, generate_corpus, GenOptions};
/// let lib = java_library();
/// let files = generate_corpus(&lib, &GenOptions { num_files: 3, ..GenOptions::default() });
/// assert_eq!(files.len(), 3);
/// assert!(files[0].source.contains("fn main"));
/// ```
pub fn generate_corpus(lib: &Library, opts: &GenOptions) -> Vec<GeneratedFile> {
    let _span = uspec_telemetry::span!("corpus.generate", "files={}", opts.num_files);
    let ctx = GenContext::new(lib, opts.clone());
    (0..opts.num_files).map(|i| ctx.generate_file(i)).collect()
}

/// Precomputed generation state shared by every file of one corpus: the
/// library-derived idiom tables plus the per-file RNG seeds.
///
/// Deriving the seeds upfront (8 bytes per file) is what makes on-demand
/// generation possible: file `i` can be produced in isolation, in any order,
/// byte-identical to its position in [`generate_corpus`]'s output.
pub(crate) struct GenContext<'a> {
    lib: &'a Library,
    opts: GenOptions,
    producers: Vec<Producer>,
    containers: Vec<Container>,
    repeatables: Vec<Repeatable>,
    builders: Vec<BuilderInfo>,
    file_seeds: Vec<u64>,
}

impl<'a> GenContext<'a> {
    pub(crate) fn new(lib: &'a Library, opts: GenOptions) -> GenContext<'a> {
        // The per-file seeds come from sequential draws of a master RNG, so
        // they must be materialized in file order once.
        let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
        let file_seeds = (0..opts.num_files)
            .map(|_| opts.seed ^ rng.gen::<u64>())
            .collect();
        GenContext {
            lib,
            producers: collect_producers(lib),
            containers: collect_containers(lib),
            repeatables: collect_repeatables(lib),
            builders: collect_builders(lib),
            file_seeds,
            opts,
        }
    }

    pub(crate) fn num_files(&self) -> usize {
        self.opts.num_files
    }

    /// Generates file `i` of the corpus (`i < num_files`).
    pub(crate) fn generate_file(&self, i: usize) -> GeneratedFile {
        uspec_telemetry::counter!("corpus.files_generated").inc();
        let mut fg = FileGen {
            lib: self.lib,
            opts: &self.opts,
            producers: &self.producers,
            containers: &self.containers,
            repeatables: &self.repeatables,
            builders: &self.builders,
            rng: ChaCha8Rng::seed_from_u64(self.file_seeds[i]),
            lines: Vec::new(),
            helpers: Vec::new(),
            indent: 1,
            counter: 0,
        };
        GeneratedFile {
            name: format!("file_{i:05}.u"),
            source: fg.generate(),
        }
    }
}

/// A way to produce an object with a known usage profile.
#[derive(Clone, Debug)]
enum Producer {
    /// A string literal.
    Lit,
    /// `new C()` of a constructible class with a profile.
    New(Symbol),
    /// `host.method(args)` returning a profiled class.
    Call {
        host: Symbol,
        method: Symbol,
        args: Vec<ArgKind>,
        result: Symbol,
    },
}

fn collect_producers(lib: &Library) -> Vec<Producer> {
    let mut out = vec![Producer::Lit, Producer::Lit];
    for c in lib.classes() {
        if c.constructible && !c.profile.consumers.is_empty() {
            out.push(Producer::New(c.name));
        }
        for m in &c.methods {
            if m.is_static {
                continue;
            }
            let Some(ret) = m.ret else { continue };
            let profiled = lib
                .class(ret)
                .is_some_and(|rc| !rc.profile.consumers.is_empty());
            if profiled && !m.args.contains(&ArgKind::Obj) {
                out.push(Producer::Call {
                    host: c.name,
                    method: m.name,
                    args: m.args.clone(),
                    result: ret,
                });
            }
        }
    }
    out
}

/// Containers: classes with a (Store|StackPush) and matching (Load|StackPop).
#[derive(Clone, Debug)]
struct Container {
    class: Symbol,
    store: Symbol,
    store_args: Vec<ArgKind>,
    value_arg: u8,
    load: Symbol,
    /// true for push/pop containers.
    stack: bool,
}

fn collect_containers(lib: &Library) -> Vec<Container> {
    let mut out = Vec::new();
    for c in lib.classes() {
        let loads: Vec<_> = c
            .methods
            .iter()
            .filter(|m| matches!(m.sem, MethodSem::Load | MethodSem::Take))
            .collect();
        for m in &c.methods {
            match m.sem {
                MethodSem::Store { value_arg } => {
                    // Pair with a Load whose arity matches the keys.
                    for l in &loads {
                        if l.arity + 1 == m.arity {
                            out.push(Container {
                                class: c.name,
                                store: m.name,
                                store_args: m.args.clone(),
                                value_arg,
                                load: l.name,
                                stack: false,
                            });
                        }
                    }
                }
                MethodSem::StackPush { value_arg } => {
                    if let Some(pop) = c
                        .methods
                        .iter()
                        .find(|p| matches!(p.sem, MethodSem::StackPop))
                    {
                        out.push(Container {
                            class: c.name,
                            store: m.name,
                            store_args: m.args.clone(),
                            value_arg,
                            load: pop.name,
                            stack: true,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Repeated-call idiom targets: instance methods returning something.
#[derive(Clone, Debug)]
struct Repeatable {
    class: Symbol,
    method: Symbol,
    args: Vec<ArgKind>,
    ret: Option<Symbol>,
}

/// Builder classes: those with a `ReturnsSelf` method.
#[derive(Clone, Debug)]
struct BuilderInfo {
    class: Symbol,
    method: Symbol,
    args: Vec<ArgKind>,
}

fn collect_builders(lib: &Library) -> Vec<BuilderInfo> {
    let mut out = Vec::new();
    for c in lib.classes() {
        for m in &c.methods {
            if !m.is_static && matches!(m.sem, MethodSem::ReturnsSelf) {
                out.push(BuilderInfo {
                    class: c.name,
                    method: m.name,
                    args: m.args.clone(),
                });
            }
        }
    }
    out
}

fn collect_repeatables(lib: &Library) -> Vec<Repeatable> {
    let mut out = Vec::new();
    for c in lib.classes() {
        for m in &c.methods {
            if m.is_static || m.args.contains(&ArgKind::Obj) {
                continue;
            }
            let repeat_worthy = matches!(
                m.sem,
                MethodSem::LoadSame
                    | MethodSem::FreshPerCall
                    | MethodSem::StackPop
                    | MethodSem::Take
            );
            if repeat_worthy {
                out.push(Repeatable {
                    class: c.name,
                    method: m.name,
                    args: m.args.clone(),
                    ret: m.ret,
                });
            }
        }
    }
    out
}

struct FileGen<'a> {
    lib: &'a Library,
    opts: &'a GenOptions,
    producers: &'a [Producer],
    containers: &'a [Container],
    repeatables: &'a [Repeatable],
    builders: &'a [BuilderInfo],
    rng: ChaCha8Rng,
    lines: Vec<String>,
    helpers: Vec<String>,
    indent: usize,
    counter: usize,
}

const KEY_POOL: &[&str] = &[
    "key", "name", "id", "user", "cfg", "path", "token", "item", "value", "host", "port", "data",
];
const FALLBACK_CONSUMERS: &[&str] = &[
    "process", "log", "check", "send", "emit", "render", "close", "print",
];

impl<'a> FileGen<'a> {
    fn generate(&mut self) -> String {
        let n = self
            .rng
            .gen_range(self.opts.idioms_per_file.0..=self.opts.idioms_per_file.1);
        for _ in 0..n {
            self.idiom();
        }
        let mut out = String::new();
        for h in &self.helpers {
            out.push_str(h);
            out.push('\n');
        }
        out.push_str("fn main(flag0, flag1) {\n");
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    fn emit(&mut self, line: &str) {
        let pad = "    ".repeat(self.indent);
        self.lines.push(format!("{pad}{line}"));
    }

    fn lit(&mut self, kind: ArgKind) -> String {
        match kind {
            ArgKind::Str => {
                let base = KEY_POOL.choose(&mut self.rng).expect("non-empty");
                if self.rng.gen_bool(0.3) {
                    format!("\"{base}{}\"", self.rng.gen_range(0..5))
                } else {
                    format!("\"{base}\"")
                }
            }
            ArgKind::Int => self.rng.gen_range(0..20).to_string(),
            ArgKind::Obj => "null".to_owned(),
        }
    }

    fn lits(&mut self, kinds: &[ArgKind]) -> Vec<String> {
        kinds.iter().map(|&k| self.lit(k)).collect()
    }

    /// High-entropy literal for factory arguments (DSNs, queries, paths):
    /// two factory chains in one file should rarely share them.
    fn lit_diverse(&mut self, kind: ArgKind) -> String {
        match kind {
            ArgKind::Str => {
                let base = KEY_POOL.choose(&mut self.rng).expect("non-empty");
                format!("\"{base}{}\"", self.rng.gen_range(0..500))
            }
            ArgKind::Int => self.rng.gen_range(0..500).to_string(),
            ArgKind::Obj => "null".to_owned(),
        }
    }

    fn lits_diverse(&mut self, kinds: &[ArgKind]) -> Vec<String> {
        kinds.iter().map(|&k| self.lit_diverse(k)).collect()
    }

    /// Emits statements obtaining an instance of `class`, returning its var.
    fn obtain(&mut self, class: Symbol) -> String {
        let c = self.lib.class(class).expect("registered class");
        match &c.obtain.clone() {
            Obtain::New => {
                let v = self.fresh("o");
                self.emit(&format!("{v} = new {class}();"));
                v
            }
            Obtain::Factory(steps) => {
                let mut cur = String::new();
                for s in steps {
                    let args = self.lits_diverse(&s.args).join(", ");
                    let v = self.fresh("o");
                    match s.on {
                        Some(on) => self.emit(&format!("{v} = {on}.{}({args});", s.method)),
                        None => self.emit(&format!("{v} = {cur}.{}({args});", s.method)),
                    }
                    cur = v;
                }
                cur
            }
        }
    }

    /// Produces a value object, returning `(var, class)`; class is `None`
    /// for values with no known profile.
    fn produce(&mut self) -> (String, Option<Symbol>) {
        let p = self
            .producers
            .choose(&mut self.rng)
            .expect("producers")
            .clone();
        match p {
            Producer::Lit => {
                let v = self.fresh("s");
                let l = self.lit(ArgKind::Str);
                self.emit(&format!("{v} = {l};"));
                let str_class = match self.lib.universe {
                    Universe::Java => Symbol::intern("java.lang.String"),
                    Universe::Python => Symbol::intern("Str"),
                };
                (v, Some(str_class))
            }
            Producer::New(class) => {
                let v = self.obtain(class);
                (v, Some(class))
            }
            Producer::Call {
                host,
                method,
                args,
                result,
            } => {
                if self.rng.gen_bool(self.opts.helper_prob) {
                    let hv = self.obtain(host);
                    let helper = self.producer_helper(host, method, &args);
                    let v = self.fresh("v");
                    self.emit(&format!("{v} = {helper}({hv});"));
                    (v, Some(result))
                } else {
                    let hv = self.obtain(host);
                    let v = self.fresh("v");
                    let a = self.lits(&args).join(", ");
                    self.emit(&format!("{v} = {hv}.{method}({a});"));
                    (v, Some(result))
                }
            }
        }
    }

    /// Defines (once per call) a helper function wrapping a producing call.
    fn producer_helper(&mut self, host: Symbol, method: Symbol, args: &[ArgKind]) -> String {
        let name = self.fresh("make");
        let a = self.lits(args).join(", ");
        self.helpers.push(format!(
            "fn {name}(h: {host}) {{\n    return h.{method}({a});\n}}"
        ));
        name
    }

    /// Emits consumer calls on `var` according to its class profile.
    /// Occasionally the consumption is factored into a helper function, so
    /// the producer→consumer edge only exists interprocedurally.
    fn consume(&mut self, var: &str, class: Option<Symbol>) {
        if self.rng.gen_bool(self.opts.helper_prob) {
            if let Some(c) = class {
                let name = self.consumer_helper(c);
                self.emit(&format!("{name}({var});"));
                return;
            }
        }
        self.consume_inline(var, class);
    }

    /// Defines a helper that consumes an object of class `c`.
    fn consumer_helper(&mut self, class: Symbol) -> String {
        let name = self.fresh("use");
        // Generate the consumer statements into a scratch buffer.
        let saved_lines = std::mem::take(&mut self.lines);
        let saved_indent = std::mem::replace(&mut self.indent, 1);
        self.consume_inline("x", Some(class));
        let body: Vec<String> = std::mem::replace(&mut self.lines, saved_lines);
        self.indent = saved_indent;
        self.helpers.push(format!(
            "fn {name}(x: {class}) {{
{}
}}",
            body.join(
                "
"
            )
        ));
        name
    }

    fn consume_inline(&mut self, var: &str, class: Option<Symbol>) {
        let profile = class.and_then(|c| self.lib.class(c)).map(|c| &c.profile);
        let consumers: Vec<(Symbol, Vec<ArgKind>)> = match profile {
            Some(p) if !p.consumers.is_empty() => {
                let lc = self
                    .lib
                    .class(class.expect("profiled class"))
                    .expect("class");
                let weights: Vec<f64> = p.consumers.iter().map(|(_, _, w)| *w).collect();
                let total: f64 = weights.iter().sum();
                let mut picked = Vec::new();
                let count = 1 + usize::from(self.rng.gen_bool(p.chain_prob));
                for _ in 0..count {
                    let mut roll = self.rng.gen_range(0.0..total);
                    for ((name, _, w), _) in p.consumers.iter().zip(&weights) {
                        roll -= w;
                        if roll <= 0.0 {
                            let kinds =
                                lc.method(*name).map(|m| m.args.clone()).unwrap_or_default();
                            picked.push((*name, kinds));
                            break;
                        }
                    }
                }
                picked
            }
            _ => {
                let name = FALLBACK_CONSUMERS.choose(&mut self.rng).expect("non-empty");
                vec![(Symbol::intern(name), Vec::new())]
            }
        };
        for (name, kinds) in consumers {
            let a = self.lits(&kinds).join(", ");
            if self.rng.gen_bool(0.5) {
                let r = self.fresh("r");
                self.emit(&format!("{r} = {var}.{name}({a});"));
            } else {
                self.emit(&format!("{var}.{name}({a});"));
            }
        }
    }

    fn maybe_distract(&mut self) {
        if self.rng.gen_bool(self.opts.distractor_prob) {
            self.noise_idiom();
        }
    }

    fn idiom(&mut self) {
        let weights = [
            self.opts.chain_weight,
            self.opts.store_retrieve_weight,
            self.opts.repeated_call_weight,
            self.opts.tree_weight,
            self.opts.noise_weight,
            self.opts.builder_weight,
        ];
        let total: f64 = weights.iter().sum();
        let mut roll = self.rng.gen_range(0.0..total);
        let mut which = 0;
        for (i, w) in weights.iter().enumerate() {
            roll -= w;
            if roll <= 0.0 {
                which = i;
                break;
            }
        }
        let wrap = if self.rng.gen_bool(self.opts.loop_prob) {
            Some("while")
        } else if self.rng.gen_bool(self.opts.wrap_prob) {
            Some("if")
        } else {
            None
        };
        if let Some(kw) = wrap {
            let flag = if self.rng.gen_bool(0.5) {
                "flag0"
            } else {
                "flag1"
            };
            self.emit(&format!("{kw} ({flag}) {{"));
            self.indent += 1;
        }
        match which {
            0 => self.chain_idiom(),
            1 => self.store_retrieve_idiom(),
            2 => self.repeated_call_idiom(),
            3 => self.tree_idiom(),
            4 => self.noise_idiom(),
            _ => self.builder_idiom(),
        }
        if wrap.is_some() {
            self.indent -= 1;
            self.emit("}");
        }
    }

    /// T1: produce a value and consume it directly.
    fn chain_idiom(&mut self) {
        let (v, class) = self.produce();
        self.consume(&v, class);
    }

    /// T2: store a value into a container, retrieve it, consume the result.
    fn store_retrieve_idiom(&mut self) {
        let Some(cont) = self.containers.choose(&mut self.rng).cloned() else {
            return self.chain_idiom();
        };
        let cvar = self.obtain(cont.class);
        let (v, vclass) = self.produce();
        // Build the store argument list: literals (or occasionally
        // unresolvable API values) for keys, the value var at the value
        // position.
        let mut store_args = Vec::new();
        let mut keys = Vec::new();
        for (i, &k) in cont.store_args.iter().enumerate() {
            if (i + 1) as u8 == cont.value_arg {
                store_args.push(v.clone());
            } else if self.rng.gen_bool(self.opts.unknown_key_prob) {
                let kv = self.fresh("k");
                self.emit(&format!("{kv} = flag0.makeKey();"));
                keys.push(kv.clone());
                store_args.push(kv);
            } else {
                let lit = self.lit(k);
                keys.push(lit.clone());
                store_args.push(lit);
            }
        }
        self.emit(&format!(
            "{cvar}.{}({});",
            cont.store,
            store_args.join(", ")
        ));
        self.maybe_distract();
        // Retrieve: same keys (aliasing) or mismatched ones.
        let mismatch =
            self.rng.gen_bool(self.opts.mismatch_prob) && !cont.stack && !keys.is_empty();
        let load_args: Vec<String> = if cont.stack {
            Vec::new()
        } else if mismatch {
            let kinds: Vec<ArgKind> = cont
                .store_args
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i + 1) as u8 != cont.value_arg)
                .map(|(_, &k)| k)
                .collect();
            self.lits(&kinds)
        } else {
            keys.clone()
        };
        let y = self.fresh("y");
        self.emit(&format!(
            "{y} = {cvar}.{}({});",
            cont.load,
            load_args.join(", ")
        ));
        self.consume(&y, vclass);
    }

    /// T3/T4: call the same method twice on one receiver (mostly with equal
    /// arguments) and consume both results.
    fn repeated_call_idiom(&mut self) {
        let Some(rep) = self.repeatables.choose(&mut self.rng).cloned() else {
            return self.chain_idiom();
        };
        let recv = self.obtain(rep.class);
        let args = self.lits(&rep.args);
        let a = self.fresh("a");
        self.emit(&format!(
            "{a} = {recv}.{}({});",
            rep.method,
            args.join(", ")
        ));
        self.consume(&a, rep.ret);
        self.maybe_distract();
        let args2 = if self.rng.gen_bool(self.opts.mismatch_prob) && !rep.args.is_empty() {
            self.lits(&rep.args)
        } else {
            args
        };
        let b = self.fresh("b");
        self.emit(&format!(
            "{b} = {recv}.{}({});",
            rep.method,
            args2.join(", ")
        ));
        self.consume(&b, rep.ret);
    }

    /// ANTLR-style tree building: two calls sharing an object argument.
    fn tree_idiom(&mut self) {
        let adaptor = Symbol::intern("org.antlr.runtime.tree.TreeAdaptor");
        if self.lib.class(adaptor).is_none() {
            return self.chain_idiom();
        }
        let ad = self.obtain(adaptor);
        let root = self.fresh("root");
        let ch = self.fresh("ch");
        let tok = self.lit(ArgKind::Str);
        self.emit(&format!("{root} = {ad}.nil();"));
        self.emit(&format!("{ch} = {ad}.create({tok});"));
        self.emit(&format!("{ad}.addChild({root}, {ch});"));
        let t = self.fresh("t");
        self.emit(&format!("{t} = {ad}.rulePostProcessing({root});"));
        let tree = Symbol::intern("org.antlr.runtime.tree.Tree");
        self.consume(&t, Some(tree));
        if self.rng.gen_bool(0.5) {
            self.consume(&ch, Some(tree));
        }
    }

    /// Builder chains: `b = sb.append(x); b.append(y); s = b.toString();`.
    /// The chained receiver usage is the statistical evidence for the
    /// `RetRecv` extension pattern.
    fn builder_idiom(&mut self) {
        let Some(b) = self.builders.choose(&mut self.rng).cloned() else {
            return self.chain_idiom();
        };
        let recv = self.obtain(b.class);
        let mut cur = recv;
        let chain_len = self.rng.gen_range(1..=3);
        for _ in 0..chain_len {
            // Builder arguments are plain values (the Obj positions take a
            // produced value or a literal).
            let args: Vec<String> = b
                .args
                .iter()
                .map(|&k| match k {
                    ArgKind::Obj => {
                        let (v, _) = self.produce();
                        v
                    }
                    other => self.lit(other),
                })
                .collect();
            let next = self.fresh("b");
            self.emit(&format!(
                "{next} = {cur}.{}({});",
                b.method,
                args.join(", ")
            ));
            cur = next;
        }
        // Finish the chain with the class's non-builder consumers.
        self.consume(&cur, Some(b.class));
    }

    /// T5: unrelated API activity.
    fn noise_idiom(&mut self) {
        // Choose a random class and poke 1–2 of its argument-only methods.
        let classes: Vec<Symbol> = self.lib.classes().map(|c| c.name).collect();
        let Some(&class) = classes.as_slice().choose(&mut self.rng) else {
            return;
        };
        let c = self.lib.class(class).expect("class").clone();
        let callable: Vec<_> = c
            .methods
            .iter()
            .filter(|m| !m.is_static && !m.args.contains(&ArgKind::Obj))
            .cloned()
            .collect();
        if callable.is_empty() {
            return;
        }
        let recv = self.obtain(class);
        let n = self.rng.gen_range(1..=2.min(callable.len()));
        for _ in 0..n {
            let m = callable.choose(&mut self.rng).expect("non-empty").clone();
            let a = self.lits(&m.args).join(", ");
            if self.rng.gen_bool(0.4) {
                let r = self.fresh("n");
                self.emit(&format!("{r} = {recv}.{}({a});", m.name));
            } else {
                self.emit(&format!("{recv}.{}({a});", m.name));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::java::java_library;
    use crate::python::python_library;
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;

    fn opts(n: usize, seed: u64) -> GenOptions {
        GenOptions {
            num_files: n,
            seed,
            ..GenOptions::default()
        }
    }

    #[test]
    fn generated_files_parse_and_lower() {
        for lib in [java_library(), python_library()] {
            let table = lib.api_table();
            let files = generate_corpus(&lib, &opts(60, 7));
            assert_eq!(files.len(), 60);
            for f in &files {
                let program =
                    parse(&f.source).unwrap_or_else(|e| panic!("{}: {e}\n{}", f.name, f.source));
                lower_program(&program, &table, &LowerOptions::default())
                    .unwrap_or_else(|e| panic!("{}: {e}\n{}", f.name, f.source));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let lib = java_library();
        let a = generate_corpus(&lib, &opts(10, 99));
        let b = generate_corpus(&lib, &opts(10, 99));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let lib = java_library();
        let a = generate_corpus(&lib, &opts(5, 1));
        let b = generate_corpus(&lib, &opts(5, 2));
        assert_ne!(
            a.iter().map(|f| &f.source).collect::<Vec<_>>(),
            b.iter().map(|f| &f.source).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_contains_the_key_idioms() {
        let lib = java_library();
        let files = generate_corpus(&lib, &opts(300, 3));
        let all: String = files.iter().map(|f| f.source.as_str()).collect();
        assert!(all.contains(".put("), "store/retrieve idiom present");
        assert!(all.contains(".get("), "loads present");
        assert!(all.contains("findViewById"), "RetSame idiom present");
        assert!(all.contains("rulePostProcessing"), "tree idiom present");
        assert!(all.contains("fn make"), "helper functions present");
        assert!(all.contains("if (flag"), "branch wrapping present");
        assert!(all.contains("while (flag"), "loop wrapping present");
        assert!(all.contains("executeQuery"), "factory chains present");
    }

    #[test]
    fn python_corpus_uses_subscripts() {
        let lib = python_library();
        let files = generate_corpus(&lib, &opts(200, 5));
        let all: String = files.iter().map(|f| f.source.as_str()).collect();
        assert!(all.contains("SubscriptStore"));
        assert!(all.contains("SubscriptLoad"));
        assert!(all.contains("configParser.SafeConfigParser"));
    }
}

#[cfg(test)]
mod idiom_tests {
    use super::*;
    use crate::java::java_library;

    #[test]
    fn builder_idiom_appears_and_lowers() {
        let lib = java_library();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 200,
                seed: 77,
                builder_weight: 3.0,
                ..GenOptions::default()
            },
        );
        let all: String = files.iter().map(|f| f.source.as_str()).collect();
        assert!(all.contains(".append("), "builder chains present");
        let table = lib.api_table();
        for f in &files {
            let program = uspec_lang::parse(&f.source).unwrap();
            uspec_lang::lower_program(&program, &table, &Default::default())
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", f.name, f.source));
        }
    }

    #[test]
    fn unknown_keys_appear_at_configured_rate() {
        let lib = java_library();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 300,
                seed: 5,
                unknown_key_prob: 0.5,
                ..GenOptions::default()
            },
        );
        let with_unknown = files
            .iter()
            .filter(|f| f.source.contains("makeKey"))
            .count();
        assert!(with_unknown > 20, "got {with_unknown}");
        let none = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 300,
                seed: 5,
                unknown_key_prob: 0.0,
                ..GenOptions::default()
            },
        );
        assert!(none.iter().all(|f| !f.source.contains("makeKey")));
    }

    #[test]
    fn consumer_helpers_type_their_parameter() {
        let lib = java_library();
        let files = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 300,
                seed: 9,
                helper_prob: 0.9,
                ..GenOptions::default()
            },
        );
        let all: String = files.iter().map(|f| f.source.as_str()).collect();
        assert!(all.contains("fn use"), "consumer helpers present");
        assert!(
            all.contains("(x: java.") || all.contains("(x: org.") || all.contains("(x: com."),
            "helper params carry type annotations"
        );
    }

    #[test]
    fn idiom_weights_shift_the_mix() {
        let lib = java_library();
        let only_noise = generate_corpus(
            &lib,
            &GenOptions {
                num_files: 100,
                seed: 4,
                chain_weight: 0.0,
                store_retrieve_weight: 0.0,
                repeated_call_weight: 0.0,
                tree_weight: 0.0,
                builder_weight: 0.0,
                noise_weight: 1.0,
                ..GenOptions::default()
            },
        );
        let all: String = only_noise.iter().map(|f| f.source.as_str()).collect();
        assert!(!all.contains("rulePostProcessing"));
    }
}
