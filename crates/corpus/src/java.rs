//! The Java-like universe: synthetic stand-ins for the APIs the paper's
//! evaluation features (Tab. 3, Tab. 5), with ground-truth aliasing
//! semantics.
//!
//! Noteworthy inhabitants:
//!
//! * `java.util.HashMap` — the canonical `RetArg(get, put, 2)`;
//! * `java.sql.ResultSet`, `java.security.KeyStore`,
//!   `org.w3c.dom.NodeList` — factory-only classes that defeat Atlas-style
//!   test synthesis (§7.5);
//! * `java.util.Iterator.next` / `java.security.SecureRandom.nextInt` —
//!   `RetSame` anti-patterns the probabilistic scoring must filter out;
//! * `org.antlr.runtime.tree.TreeAdaptor` and `java.lang.StringBuilder` —
//!   structurally matching but semantically wrong candidates (the
//!   "incorrect" rows of Tab. 3).

use crate::library::{ArgKind, ClassBuilder, FactoryStep, Library, MethodSem, Obtain, Universe};
use uspec_lang::Symbol;

use ArgKind::{Int, Obj, Str};
use MethodSem::{
    FreshPerCall, Load, LoadSame, ReturnsSelf, StackPop, StackPush, Store, Take, Void,
};

fn step(on: Option<&str>, method: &str, args: &[ArgKind]) -> FactoryStep {
    FactoryStep {
        on: on.map(Symbol::intern),
        method: Symbol::intern(method),
        args: args.to_vec(),
    }
}

/// Builds the Java-like [`Library`].
#[allow(clippy::vec_init_then_push)]
pub fn java_library() -> Library {
    let mut classes = Vec::new();

    // ---- Value classes -------------------------------------------------
    classes.push(
        ClassBuilder::new("java.lang.String", "java.lang")
            .method("trim", &[], Some("java.lang.String"), LoadSame)
            .method("length", &[], None, LoadSame)
            .method("substring", &[Int], Some("java.lang.String"), LoadSame)
            .method("isEmpty", &[], None, LoadSame)
            .method("toUpperCase", &[], Some("java.lang.String"), LoadSame)
            .true_ret_same("trim")
            .true_ret_same("length")
            .true_ret_same("substring")
            .true_ret_same("isEmpty")
            .true_ret_same("toUpperCase")
            .profile(
                &[
                    ("trim", 0, 3.0),
                    ("length", 0, 3.0),
                    ("substring", 1, 2.0),
                    ("isEmpty", 0, 1.0),
                    ("toUpperCase", 0, 1.0),
                ],
                0.55,
            )
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.io.File", "java.io")
            .method("getName", &[], Some("java.lang.String"), LoadSame)
            .method("getPath", &[], Some("java.lang.String"), LoadSame)
            .method("exists", &[], None, LoadSame)
            .method("length", &[], None, LoadSame)
            .method("getParentFile", &[], Some("java.io.File"), LoadSame)
            .true_ret_same("getName")
            .true_ret_same("getPath")
            .true_ret_same("exists")
            .true_ret_same("length")
            .true_ret_same("getParentFile")
            .profile(
                &[
                    ("getName", 0, 4.0),
                    ("exists", 0, 2.0),
                    ("getPath", 0, 2.0),
                    ("length", 0, 1.0),
                ],
                0.5,
            )
            .build(),
    );

    // ---- JDBC chain (factory-only ResultSet) ---------------------------
    classes.push(
        ClassBuilder::new("java.sql.DriverManager", "java.sql")
            .factory_only()
            .static_method(
                "getConnection",
                &[Str],
                Some("java.sql.Connection"),
                FreshPerCall,
            )
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.sql.Connection", "java.sql")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![step(
                Some("java.sql.DriverManager"),
                "getConnection",
                &[Str],
            )]))
            .method(
                "createStatement",
                &[],
                Some("java.sql.Statement"),
                FreshPerCall,
            )
            .method("close", &[], None, Void)
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.sql.Statement", "java.sql")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![
                step(Some("java.sql.DriverManager"), "getConnection", &[Str]),
                step(None, "createStatement", &[]),
            ]))
            .method(
                "executeQuery",
                &[Str],
                Some("java.sql.ResultSet"),
                FreshPerCall,
            )
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.sql.ResultSet", "java.sql")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![
                step(Some("java.sql.DriverManager"), "getConnection", &[Str]),
                step(None, "createStatement", &[]),
                step(None, "executeQuery", &[Str]),
            ]))
            .method("getString", &[Str], Some("java.lang.String"), LoadSame)
            .method("getInt", &[Str], None, LoadSame)
            .method("next", &[], None, FreshPerCall)
            .true_ret_same("getString")
            .true_ret_same("getInt")
            .profile(
                &[("getString", 1, 4.0), ("next", 0, 2.0), ("getInt", 1, 2.0)],
                0.4,
            )
            .build(),
    );

    // ---- java.util containers ------------------------------------------
    for name in [
        "java.util.HashMap",
        "java.util.Hashtable",
        "java.util.TreeMap",
        "java.util.WeakHashMap",
        "java.util.LinkedHashMap",
    ] {
        classes.push(
            ClassBuilder::new(name, "java.util")
                .method("put", &[Str, Obj], None, Store { value_arg: 2 })
                .method("get", &[Str], None, Load)
                .method("remove", &[Str], None, Take)
                .method("containsKey", &[Str], None, FreshPerCall)
                .method("size", &[], None, FreshPerCall)
                .true_ret_arg("get", "put", 2)
                .true_ret_arg("remove", "put", 2)
                .true_ret_same("get")
                .build(),
        );
    }
    classes.push(
        ClassBuilder::new("java.util.Properties", "java.util")
            .method("setProperty", &[Str, Obj], None, Store { value_arg: 2 })
            .method("getProperty", &[Str], None, Load)
            .true_ret_arg("getProperty", "setProperty", 2)
            .true_ret_same("getProperty")
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.util.ArrayList", "java.util")
            .method("add", &[Obj], None, StackPush { value_arg: 1 })
            .method("set", &[Int, Obj], None, Store { value_arg: 2 })
            .method("get", &[Int], None, Load)
            .method("remove", &[Int], None, Take)
            .method("size", &[], None, FreshPerCall)
            .method("iterator", &[], Some("java.util.Iterator"), FreshPerCall)
            .true_ret_arg("get", "set", 2)
            .true_ret_arg("remove", "set", 2)
            .true_ret_same("get")
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.util.Iterator", "java.util")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![
                step(Some("java.util.Collections"), "emptyList", &[]),
                step(None, "iterator", &[]),
            ]))
            .method("next", &[], None, StackPop)
            .method("hasNext", &[], None, FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.util.Collections", "java.util")
            .factory_only()
            .static_method("emptyList", &[], Some("java.util.ArrayList"), FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.util.Random", "java.util")
            .method("nextInt", &[], None, FreshPerCall)
            .method("nextDouble", &[], None, FreshPerCall)
            .build(),
    );

    // ---- Security -------------------------------------------------------
    classes.push(
        ClassBuilder::new("java.security.SecureRandom", "java.security")
            .method("nextInt", &[], None, FreshPerCall)
            .method("nextBytes", &[Obj], None, Void)
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.security.KeyStore", "java.security")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![step(
                Some("java.security.KeyStore"),
                "getInstance",
                &[Str],
            )]))
            .static_method(
                "getInstance",
                &[Str],
                Some("java.security.KeyStore"),
                FreshPerCall,
            )
            .method("getKey", &[Str, Str], Some("java.security.Key"), LoadSame)
            .method("setKeyEntry", &[Str, Obj], None, Store { value_arg: 2 })
            .true_ret_same("getKey")
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.security.Key", "java.security")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![
                step(Some("java.security.KeyStore"), "getInstance", &[Str]),
                step(None, "getKey", &[Str, Str]),
            ]))
            .method("getAlgorithm", &[], Some("java.lang.String"), LoadSame)
            .method("getFormat", &[], Some("java.lang.String"), LoadSame)
            .true_ret_same("getAlgorithm")
            .true_ret_same("getFormat")
            .profile(&[("getAlgorithm", 0, 2.0), ("getFormat", 0, 1.0)], 0.4)
            .build(),
    );

    // ---- Android ---------------------------------------------------------
    classes.push(
        ClassBuilder::new("android.util.SparseArray", "android.util")
            .method("put", &[Int, Obj], None, Store { value_arg: 2 })
            .method("get", &[Int], None, Load)
            .method("delete", &[Int], None, Void)
            .true_ret_arg("get", "put", 2)
            .true_ret_same("get")
            .build(),
    );
    classes.push(
        ClassBuilder::new("android.view.ViewGroup", "android.view")
            .method("findViewById", &[Int], Some("android.view.View"), LoadSame)
            .method("addView", &[Obj], None, StackPush { value_arg: 1 })
            .true_ret_same("findViewById")
            .build(),
    );
    classes.push(
        ClassBuilder::new("android.view.View", "android.view")
            .method("setVisibility", &[Int], None, Void)
            .method("setOnClickListener", &[Obj], None, Void)
            .method("invalidate", &[], None, Void)
            .profile(
                &[
                    ("setVisibility", 1, 3.0),
                    ("setOnClickListener", 1, 2.0),
                    ("invalidate", 0, 1.0),
                ],
                0.5,
            )
            .build(),
    );
    classes.push(
        ClassBuilder::new("android.content.Intent", "android.content")
            .method("putExtra", &[Str, Obj], None, Store { value_arg: 2 })
            .method("getExtra", &[Str], None, Load)
            .true_ret_arg("getExtra", "putExtra", 2)
            .true_ret_same("getExtra")
            .build(),
    );
    classes.push(
        ClassBuilder::new("android.content.Bundle", "android.content")
            .method("putString", &[Str, Obj], None, Store { value_arg: 2 })
            .method("getString", &[Str], None, Load)
            .true_ret_arg("getString", "putString", 2)
            .true_ret_same("getString")
            .build(),
    );

    // ---- Jackson / JSON ---------------------------------------------------
    classes.push(
        ClassBuilder::new(
            "com.fasterxml.jackson.databind.ObjectMapper",
            "com.fasterxml",
        )
        .method(
            "readTree",
            &[Str],
            Some("com.fasterxml.jackson.databind.JsonNode"),
            FreshPerCall,
        )
        .build(),
    );
    classes.push(
        ClassBuilder::new("com.fasterxml.jackson.databind.JsonNode", "com.fasterxml")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![step(
                Some("com.fasterxml.jackson.databind.Json"),
                "parse",
                &[Str],
            )]))
            .method(
                "path",
                &[Str],
                Some("com.fasterxml.jackson.databind.JsonNode"),
                LoadSame,
            )
            .method(
                "get",
                &[Str],
                Some("com.fasterxml.jackson.databind.JsonNode"),
                LoadSame,
            )
            .method("asText", &[], Some("java.lang.String"), LoadSame)
            .method("isNull", &[], None, LoadSame)
            .true_ret_same("path")
            .true_ret_same("get")
            .true_ret_same("asText")
            .true_ret_same("isNull")
            .profile(
                &[("asText", 0, 3.0), ("path", 1, 2.0), ("isNull", 0, 1.0)],
                0.5,
            )
            .build(),
    );
    classes.push(
        ClassBuilder::new("com.fasterxml.jackson.databind.Json", "com.fasterxml")
            .factory_only()
            .static_method(
                "parse",
                &[Str],
                Some("com.fasterxml.jackson.databind.JsonNode"),
                FreshPerCall,
            )
            .build(),
    );
    classes.push(
        ClassBuilder::new("org.json.JSONObject", "org.json")
            .method("put", &[Str, Obj], None, Store { value_arg: 2 })
            .method("get", &[Str], None, Load)
            .method("getString", &[Str], Some("java.lang.String"), LoadSame)
            .true_ret_arg("get", "put", 2)
            .true_ret_same("get")
            .true_ret_same("getString")
            .build(),
    );

    // ---- DOM ---------------------------------------------------------------
    classes.push(
        ClassBuilder::new("org.w3c.dom.DocumentBuilder", "org.w3c")
            .factory_only()
            .static_method("parse", &[Str], Some("org.w3c.dom.Document"), FreshPerCall)
            .build(),
    );
    classes.push(
        ClassBuilder::new("org.w3c.dom.Document", "org.w3c")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![step(
                Some("org.w3c.dom.DocumentBuilder"),
                "parse",
                &[Str],
            )]))
            .method(
                "getElementsByTagName",
                &[Str],
                Some("org.w3c.dom.NodeList"),
                LoadSame,
            )
            .true_ret_same("getElementsByTagName")
            .build(),
    );
    classes.push(
        ClassBuilder::new("org.w3c.dom.NodeList", "org.w3c")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![
                step(Some("org.w3c.dom.DocumentBuilder"), "parse", &[Str]),
                step(None, "getElementsByTagName", &[Str]),
            ]))
            .method("item", &[Int], Some("org.w3c.dom.Node"), LoadSame)
            .method("getLength", &[], None, FreshPerCall)
            .true_ret_same("item")
            .profile(&[("item", 1, 3.0), ("getLength", 0, 1.0)], 0.4)
            .build(),
    );
    classes.push(
        ClassBuilder::new("org.w3c.dom.Node", "org.w3c")
            .factory_only()
            .obtain_via(Obtain::Factory(vec![
                step(Some("org.w3c.dom.DocumentBuilder"), "parse", &[Str]),
                step(None, "getElementsByTagName", &[Str]),
                step(None, "item", &[Int]),
            ]))
            .method("getNodeName", &[], Some("java.lang.String"), LoadSame)
            .method("getTextContent", &[], Some("java.lang.String"), LoadSame)
            .true_ret_same("getNodeName")
            .true_ret_same("getTextContent")
            .profile(&[("getNodeName", 0, 2.0), ("getTextContent", 0, 2.0)], 0.5)
            .build(),
    );

    // ---- The Tab. 3 "incorrect" candidates ---------------------------------
    classes.push(
        ClassBuilder::new("org.antlr.runtime.tree.TreeAdaptor", "org.antlr")
            .method(
                "nil",
                &[],
                Some("org.antlr.runtime.tree.Tree"),
                FreshPerCall,
            )
            .method(
                "create",
                &[Str],
                Some("org.antlr.runtime.tree.Tree"),
                FreshPerCall,
            )
            .method("addChild", &[Obj, Obj], None, Void)
            .method(
                "rulePostProcessing",
                &[Obj],
                Some("org.antlr.runtime.tree.Tree"),
                FreshPerCall,
            )
            .build(),
    );
    classes.push(
        ClassBuilder::new("org.antlr.runtime.tree.Tree", "org.antlr")
            .factory_only()
            .method("getText", &[], Some("java.lang.String"), LoadSame)
            .method("getChildCount", &[], None, FreshPerCall)
            .true_ret_same("getText")
            .profile(&[("getText", 0, 3.0), ("getChildCount", 0, 2.0)], 0.5)
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.lang.StringBuilder", "java.lang")
            .method(
                "append",
                &[Obj],
                Some("java.lang.StringBuilder"),
                ReturnsSelf,
            )
            .method("toString", &[], Some("java.lang.String"), LoadSame)
            .true_ret_same("toString")
            .true_ret_same("append")
            .true_ret_recv("append")
            .profile(&[("append", 1, 2.0), ("toString", 0, 3.0)], 0.5)
            .build(),
    );

    // ---- Per-group container fillers (Tab. 5 breadth) ----------------------
    let fillers: &[(&str, &str, &str, &str)] = &[
        ("org.eclipse.core.Preferences", "org.eclipse", "put", "get"),
        (
            "org.eclipse.jface.IDialogSettings",
            "org.eclipse",
            "put",
            "get",
        ),
        (
            "org.eclipse.swt.widgets.Widget",
            "org.eclipse",
            "setData",
            "getData",
        ),
        (
            "com.google.common.cache.Cache",
            "com.google",
            "put",
            "getIfPresent",
        ),
        ("com.google.gson.JsonObject", "com.google", "add", "get"),
        (
            "javax.swing.JComponent",
            "javax.swing",
            "putClientProperty",
            "getClientProperty",
        ),
        ("javax.naming.Context", "javax.naming", "bind", "lookup"),
        (
            "javax.servlet.http.HttpSession",
            "javax.servlet",
            "setAttribute",
            "getAttribute",
        ),
        (
            "net.minecraft.nbt.NBTTagCompound",
            "net.minecraft",
            "setTag",
            "getTag",
        ),
        (
            "org.apache.commons.configuration.Configuration",
            "org.apache",
            "setProperty",
            "getProperty",
        ),
        (
            "org.apache.http.HttpMessage",
            "org.apache",
            "setHeader",
            "getFirstHeader",
        ),
        (
            "org.codehaus.jackson.node.ObjectNode",
            "org.codehaus",
            "put",
            "get",
        ),
        (
            "org.codehaus.plexus.PlexusContainer",
            "org.codehaus",
            "addComponent",
            "lookup",
        ),
        (
            "org.w3c.dom.Element",
            "org.w3c",
            "setAttribute",
            "getAttribute",
        ),
        ("java.util.prefs.Preferences", "java.util", "put", "get"),
        ("android.util.LruCache", "android.util", "put", "get"),
    ];
    for &(name, group, put, get) in fillers {
        classes.push(
            ClassBuilder::new(name, group)
                .method(put, &[Str, Obj], None, Store { value_arg: 2 })
                .method(get, &[Str], None, Load)
                .true_ret_arg(get, put, 2)
                .true_ret_same(get)
                .build(),
        );
    }
    // Int-keyed containers beyond SparseArray.
    classes.push(
        ClassBuilder::new("org.json.JSONArray", "org.json")
            .method("put", &[Int, Obj], None, Store { value_arg: 2 })
            .method("get", &[Int], None, Load)
            .true_ret_arg("get", "put", 2)
            .true_ret_same("get")
            .build(),
    );
    classes.push(
        ClassBuilder::new("net.minecraft.world.World", "net.minecraft")
            .method("setBlock", &[Int, Obj], None, Store { value_arg: 2 })
            .method("getBlock", &[Int], None, Load)
            .true_ret_arg("getBlock", "setBlock", 2)
            .true_ret_same("getBlock")
            .build(),
    );
    classes.push(
        ClassBuilder::new("java.lang.ThreadLocal", "java.lang")
            .method("set", &[Obj], None, Store { value_arg: 1 })
            .method("get", &[], None, Load)
            .true_ret_arg("get", "set", 1)
            .true_ret_same("get")
            .build(),
    );

    Library::new(Universe::Java, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::MethodId;
    use uspec_pta::Spec;

    #[test]
    fn library_builds_and_contains_showcase_classes() {
        let lib = java_library();
        assert!(lib.len() >= 25);
        for name in [
            "java.util.HashMap",
            "java.sql.ResultSet",
            "java.security.KeyStore",
            "android.util.SparseArray",
            "android.view.ViewGroup",
            "com.fasterxml.jackson.databind.JsonNode",
            "org.antlr.runtime.tree.TreeAdaptor",
        ] {
            assert!(lib.class(Symbol::intern(name)).is_some(), "{name} missing");
        }
    }

    #[test]
    fn hashmap_ground_truth() {
        let lib = java_library();
        let get = MethodId::new("java.util.HashMap", "get", 1);
        let put = MethodId::new("java.util.HashMap", "put", 2);
        assert!(lib.is_true_spec(&Spec::RetArg {
            target: get,
            source: put,
            x: 2
        }));
        assert!(lib.is_true_spec(&Spec::RetSame { method: get }));
        assert!(!lib.is_true_spec(&Spec::RetArg {
            target: get,
            source: put,
            x: 1
        }));
    }

    #[test]
    fn anti_patterns_are_false() {
        let lib = java_library();
        let next = MethodId::new("java.util.Iterator", "next", 0);
        let next_int = MethodId::new("java.security.SecureRandom", "nextInt", 0);
        assert!(!lib.is_true_spec(&Spec::RetSame { method: next }));
        assert!(!lib.is_true_spec(&Spec::RetSame { method: next_int }));
        // The Tab. 3 incorrect RetArg.
        let rule = MethodId::new(
            "org.antlr.runtime.tree.TreeAdaptor",
            "rulePostProcessing",
            1,
        );
        let add = MethodId::new("org.antlr.runtime.tree.TreeAdaptor", "addChild", 2);
        assert!(!lib.is_true_spec(&Spec::RetArg {
            target: rule,
            source: add,
            x: 2
        }));
    }

    #[test]
    fn factory_only_classes_marked() {
        let lib = java_library();
        for name in [
            "java.sql.ResultSet",
            "java.security.KeyStore",
            "org.w3c.dom.NodeList",
        ] {
            assert!(
                !lib.class(Symbol::intern(name)).unwrap().constructible,
                "{name} must be factory-only (defeats Atlas)"
            );
        }
    }

    #[test]
    fn profiles_reference_declared_methods() {
        let lib = java_library();
        for c in lib.classes() {
            for (name, arity, _) in &c.profile.consumers {
                let m = c
                    .method(*name)
                    .unwrap_or_else(|| panic!("{}.{name} in profile but not declared", c.name));
                assert_eq!(m.arity, *arity, "{}.{name} arity mismatch", c.name);
            }
        }
    }

    #[test]
    fn factory_recipes_resolve() {
        let lib = java_library();
        for c in lib.classes() {
            if let Obtain::Factory(steps) = &c.obtain {
                assert!(!steps.is_empty());
                assert!(
                    steps[0].on.is_some(),
                    "{}: first step must be static",
                    c.name
                );
                for s in steps {
                    if let Some(on) = s.on {
                        let host = lib.class(on).unwrap_or_else(|| panic!("{on} missing"));
                        assert!(host.method(s.method).is_some(), "{on}.{} missing", s.method);
                    }
                }
            }
        }
    }

    #[test]
    fn api_table_has_all_classes() {
        let lib = java_library();
        let table = lib.api_table();
        assert_eq!(table.len(), lib.len());
    }
}
