//! The ground-truth library registry.
//!
//! The paper evaluates against real Java/Python libraries and labels learned
//! specifications by reading library documentation. This module is the
//! substitute: every synthetic API class declares
//!
//! * its **signature** (methods, arities, return classes) — consumed by the
//!   frontend's [`ApiTable`],
//! * its **executable semantics** ([`MethodSem`]) — consumed by the concrete
//!   interpreter that the Atlas baseline (§7.5) synthesizes tests against,
//! * its **true aliasing specifications** — the mechanical replacement for
//!   "inspecting the respective library documentation" (§7.2), and
//! * a **usage profile** — how client code typically consumes objects of
//!   this class, which is the statistical signal the generator plants and
//!   the probabilistic model learns.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use uspec_lang::registry::{ApiClassSig, ApiMethodSig, ApiTable, PrimBinding, VarType};
use uspec_lang::{MethodId, Symbol};
use uspec_pta::Spec;

/// Which synthetic ecosystem a library models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Universe {
    /// Java-like classes (`java.util.HashMap`, Android, Jackson, ...).
    Java,
    /// Python-like classes (`Dict`, `configParser.SafeConfigParser`, ...).
    Python,
}

impl std::fmt::Display for Universe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Universe::Java => write!(f, "Java"),
            Universe::Python => write!(f, "Python"),
        }
    }
}

/// Executable semantics of one API method, used by the concrete interpreter
/// (`uspec-atlas`) and as the ground-truth aliasing oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodSem {
    /// Stores argument `value_arg` under a key formed by the remaining
    /// arguments (e.g. `put(k, v)`).
    Store {
        /// 1-based position of the stored value.
        value_arg: u8,
    },
    /// Returns the value stored under the key formed by all arguments, or a
    /// fresh object if absent (e.g. `get(k)`).
    Load,
    /// Like [`MethodSem::Load`] but *removes* the entry (e.g. `remove(k)`,
    /// `dict.pop(k)`): a second call with the same key returns a fresh
    /// object, so `RetSame` does **not** hold while `RetArg` does.
    Take,
    /// Returns the *same* (internally cached) object for equal receiver and
    /// arguments — `RetSame` holds without a corresponding store (e.g.
    /// `findViewById`, `JsonNode.path`).
    LoadSame,
    /// Returns a brand-new object on every call (e.g. `SecureRandom.nextInt`).
    FreshPerCall,
    /// Pushes argument `value_arg` onto an internal stack (e.g. `append`).
    StackPush {
        /// 1-based position of the pushed value.
        value_arg: u8,
    },
    /// Pops the internal stack: returns the most recently pushed object, a
    /// fresh one if empty. `RetSame` is *false* (consecutive pops differ)
    /// but `RetArg(pop, push, v)` holds.
    StackPop,
    /// Returns the receiver itself (builder-style `append`).
    ReturnsSelf,
    /// No interesting return value.
    Void,
}

/// The kind of argument a method position expects, used by the corpus
/// generator and by Atlas-style test synthesis to produce plausible values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArgKind {
    /// A string key/name.
    Str,
    /// An integer key/index.
    Int,
    /// An arbitrary object value.
    Obj,
}

/// How client code obtains an instance of a class.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Obtain {
    /// `v = new C();`
    New,
    /// A chain of calls starting at a static factory, e.g.
    /// `DriverManager.getConnection(..).createStatement().executeQuery(..)`.
    Factory(Vec<FactoryStep>),
}

/// One step of a factory chain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactoryStep {
    /// Class for a static call; `None` calls on the previous step's result.
    pub on: Option<Symbol>,
    /// Method name.
    pub method: Symbol,
    /// Argument kinds.
    pub args: Vec<ArgKind>,
}

/// Signature plus semantics of one method.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LibMethod {
    /// Simple method name.
    pub name: Symbol,
    /// Number of arguments (excluding receiver).
    pub arity: u8,
    /// Kind of each argument (length = arity).
    pub args: Vec<ArgKind>,
    /// Class of the returned object, if statically known.
    pub ret: Option<Symbol>,
    /// Whether the method is static (called on the class).
    pub is_static: bool,
    /// Executable semantics.
    pub sem: MethodSem,
}

/// How client code typically *uses* objects of a class — the consumer
/// methods called on them. This drives corpus generation: truly-aliasing
/// objects share one consistent usage, which is exactly the signal §4.3
/// exploits.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct UsageProfile {
    /// Weighted consumer methods `(name, arity, weight)` called on objects
    /// of this class.
    pub consumers: Vec<(Symbol, u8, f64)>,
    /// Probability that a second consumer is chained onto the same object.
    /// High chaining makes `RetSame` look plausible for this class even
    /// without true aliasing (the `List.pop` false-positive mechanism).
    pub chain_prob: f64,
}

/// One synthetic API class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LibClass {
    /// Fully-qualified name.
    pub name: Symbol,
    /// Whether `new C()` works; factory-only classes (e.g.
    /// `java.sql.ResultSet`) defeat Atlas-style test synthesis (§7.5).
    pub constructible: bool,
    /// Methods.
    pub methods: Vec<LibMethod>,
    /// The true aliasing specifications of this class.
    pub true_specs: Vec<Spec>,
    /// Library/package group for the Tab. 5/6 breakdowns.
    pub group: Symbol,
    /// How returned objects of this class are consumed.
    pub profile: UsageProfile,
    /// How instances are obtained in generated client code.
    pub obtain: Obtain,
}

impl LibClass {
    /// Finds a method by name.
    pub fn method(&self, name: Symbol) -> Option<&LibMethod> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// The [`MethodId`] of a method of this class.
    pub fn method_id(&self, name: &str) -> Option<MethodId> {
        let sym = Symbol::intern(name);
        self.method(sym).map(|m| MethodId {
            class: self.name,
            method: m.name,
            arity: m.arity,
        })
    }
}

/// A whole universe of classes with ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Library {
    /// Which ecosystem this library models.
    pub universe: Universe,
    classes: Vec<LibClass>,
    index: HashMap<Symbol, usize>,
}

impl Library {
    /// Builds a library from class definitions.
    pub fn new(universe: Universe, classes: Vec<LibClass>) -> Library {
        let index = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name, i))
            .collect();
        Library {
            universe,
            classes,
            index,
        }
    }

    /// Looks up a class by fully-qualified name.
    pub fn class(&self, name: Symbol) -> Option<&LibClass> {
        self.index.get(&name).map(|&i| &self.classes[i])
    }

    /// Iterates over all classes.
    pub fn classes(&self) -> impl Iterator<Item = &LibClass> {
        self.classes.iter()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Ground-truth labeling of a specification (the stand-in for manual
    /// documentation inspection in §7.2). Unknown classes and methods are
    /// conservatively labeled invalid, as in the paper ("in cases of doubt,
    /// we conservatively labeled specifications as invalid").
    pub fn is_true_spec(&self, spec: &Spec) -> bool {
        self.class(spec.class())
            .map(|c| c.true_specs.contains(spec))
            .unwrap_or(false)
    }

    /// All true specifications of the library (the oracle [`uspec_pta::SpecDb`]
    /// input).
    pub fn true_specs(&self) -> Vec<Spec> {
        let mut out: Vec<Spec> = self
            .classes
            .iter()
            .flat_map(|c| c.true_specs.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Derives the frontend [`ApiTable`] (signatures only — no aliasing
    /// information leaks into the analysis).
    pub fn api_table(&self) -> ApiTable {
        let mut table = ApiTable::new();
        for c in &self.classes {
            table.insert(ApiClassSig {
                name: c.name,
                constructible: c.constructible,
                methods: c
                    .methods
                    .iter()
                    .map(|m| ApiMethodSig {
                        name: m.name,
                        arity: m.arity,
                        ret: match m.ret {
                            Some(cls) => VarType::Api(cls),
                            None => VarType::Unknown,
                        },
                        is_static: m.is_static,
                    })
                    .collect(),
            });
        }
        let str_class = match self.universe {
            Universe::Java => "java.lang.String",
            Universe::Python => "Str",
        };
        table.bind_prim(PrimBinding::Str, Symbol::intern(str_class));
        table
    }
}

/// Terse builder for [`LibClass`] definitions.
#[derive(Clone, Debug)]
pub struct ClassBuilder {
    class: LibClass,
}

impl ClassBuilder {
    /// Starts a constructible class in `group`.
    pub fn new(name: &str, group: &str) -> ClassBuilder {
        ClassBuilder {
            class: LibClass {
                name: Symbol::intern(name),
                constructible: true,
                methods: Vec::new(),
                true_specs: Vec::new(),
                group: Symbol::intern(group),
                profile: UsageProfile::default(),
                obtain: Obtain::New,
            },
        }
    }

    /// Marks the class factory-only.
    pub fn factory_only(mut self) -> ClassBuilder {
        self.class.constructible = false;
        self
    }

    /// Adds an instance method.
    pub fn method(
        mut self,
        name: &str,
        args: &[ArgKind],
        ret: Option<&str>,
        sem: MethodSem,
    ) -> ClassBuilder {
        self.class.methods.push(LibMethod {
            name: Symbol::intern(name),
            arity: args.len() as u8,
            args: args.to_vec(),
            ret: ret.map(Symbol::intern),
            is_static: false,
            sem,
        });
        self
    }

    /// Adds a static method.
    pub fn static_method(
        mut self,
        name: &str,
        args: &[ArgKind],
        ret: Option<&str>,
        sem: MethodSem,
    ) -> ClassBuilder {
        self.class.methods.push(LibMethod {
            name: Symbol::intern(name),
            arity: args.len() as u8,
            args: args.to_vec(),
            ret: ret.map(Symbol::intern),
            is_static: true,
            sem,
        });
        self
    }

    /// Declares a true `RetSame(method)` specification.
    pub fn true_ret_same(mut self, method: &str) -> ClassBuilder {
        let id = self
            .class
            .method_id(method)
            .unwrap_or_else(|| panic!("unknown method {method} on {}", self.class.name));
        self.class.true_specs.push(Spec::RetSame { method: id });
        self
    }

    /// Declares a true `RetRecv(method)` specification (extension pattern).
    pub fn true_ret_recv(mut self, method: &str) -> ClassBuilder {
        let id = self
            .class
            .method_id(method)
            .unwrap_or_else(|| panic!("unknown method {method} on {}", self.class.name));
        self.class.true_specs.push(Spec::RetRecv { method: id });
        self
    }

    /// Declares a true `RetArg(target, source, x)` specification.
    pub fn true_ret_arg(mut self, target: &str, source: &str, x: u8) -> ClassBuilder {
        let t = self
            .class
            .method_id(target)
            .unwrap_or_else(|| panic!("unknown method {target} on {}", self.class.name));
        let s = self
            .class
            .method_id(source)
            .unwrap_or_else(|| panic!("unknown method {source} on {}", self.class.name));
        self.class.true_specs.push(Spec::RetArg {
            target: t,
            source: s,
            x,
        });
        self
    }

    /// Sets how instances are obtained in generated code.
    pub fn obtain_via(mut self, obtain: Obtain) -> ClassBuilder {
        self.class.obtain = obtain;
        self
    }

    /// Sets the usage profile: weighted consumers plus chaining probability.
    pub fn profile(mut self, consumers: &[(&str, u8, f64)], chain_prob: f64) -> ClassBuilder {
        self.class.profile = UsageProfile {
            consumers: consumers
                .iter()
                .map(|(n, a, w)| (Symbol::intern(n), *a, *w))
                .collect(),
            chain_prob,
        };
        self
    }

    /// Finishes the class.
    pub fn build(self) -> LibClass {
        self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Library {
        Library::new(
            Universe::Java,
            vec![ClassBuilder::new("a.b.Map", "a.b")
                .method(
                    "put",
                    &[ArgKind::Str, ArgKind::Obj],
                    None,
                    MethodSem::Store { value_arg: 2 },
                )
                .method("get", &[ArgKind::Str], None, MethodSem::Load)
                .true_ret_arg("get", "put", 2)
                .build()],
        )
    }

    #[test]
    fn ground_truth_labeling() {
        let lib = toy();
        let c = lib.class(Symbol::intern("a.b.Map")).unwrap();
        let get = c.method_id("get").unwrap();
        let put = c.method_id("put").unwrap();
        assert!(lib.is_true_spec(&Spec::RetArg {
            target: get,
            source: put,
            x: 2
        }));
        assert!(!lib.is_true_spec(&Spec::RetSame { method: get }));
        assert!(!lib.is_true_spec(&Spec::RetArg {
            target: get,
            source: put,
            x: 1
        }));
    }

    #[test]
    fn unknown_class_is_invalid() {
        let lib = toy();
        let spec = Spec::RetSame {
            method: MethodId::new("x.Unknown", "m", 0),
        };
        assert!(!lib.is_true_spec(&spec));
    }

    #[test]
    fn api_table_derivation() {
        let lib = toy();
        let table = lib.api_table();
        assert!(table.is_class(Symbol::intern("a.b.Map")));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn true_specs_deduplicated_and_sorted() {
        let lib = toy();
        assert_eq!(lib.true_specs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown method")]
    fn builder_rejects_bogus_spec_methods() {
        let _ = ClassBuilder::new("C", "g").true_ret_same("nope");
    }
}
