//! # uspec-corpus
//!
//! Ground-truth API libraries and synthetic corpus generation.
//!
//! The paper learns from ~4M Java and ~1M Python GitHub files and labels the
//! learned specifications against library documentation. This crate is the
//! substitution for both (see DESIGN.md):
//!
//! * [`library`] — declarative registry of synthetic API classes with
//!   signatures, *executable* semantics (driving the Atlas baseline's
//!   concrete interpreter) and true aliasing specifications (the labeling
//!   oracle);
//! * [`java`] / [`python`] — the two universes, mirroring the APIs featured
//!   in Tab. 3/5/6 including the factory-only classes that defeat dynamic
//!   test synthesis and the planted false-positive candidates;
//! * [`gen`] — the seeded corpus generator planting the usage-consistency
//!   signal the probabilistic model learns from.

#![warn(missing_docs)]

pub mod gen;
pub mod java;
pub mod library;
pub mod python;
pub mod source;

pub use gen::{generate_corpus, GenOptions, GeneratedFile};
pub use java::java_library;
pub use library::{
    ArgKind, ClassBuilder, FactoryStep, LibClass, LibMethod, Library, MethodSem, Obtain, Universe,
    UsageProfile,
};
pub use python::python_library;
pub use source::{shards, CorpusSource, GeneratedSource, Shard, SliceSource};
