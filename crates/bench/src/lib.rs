//! Shared scaffolding for the experiment harness.
//!
//! Every `benches/*.rs` target (all `harness = false`) regenerates one
//! table or figure of the paper; this crate hosts the common corpus setup
//! and table-printing helpers. Corpus sizes default to a few thousand files
//! (the pipeline analyzes >5k files/second) and can be scaled with the
//! `USPEC_BENCH_FILES` environment variable.

use uspec::{run_pipeline, PipelineOptions, PipelineResult};
use uspec_corpus::{generate_corpus, java_library, python_library, GenOptions, Library, Universe};

/// A prepared experiment context: library, corpus and pipeline result.
pub struct BenchCtx {
    /// The ground-truth library.
    pub lib: Library,
    /// The training corpus as `(name, source)` pairs.
    pub sources: Vec<(String, String)>,
    /// The full pipeline result.
    pub result: PipelineResult,
    /// Options used.
    pub opts: PipelineOptions,
}

/// Corpus size for a universe, honouring `USPEC_BENCH_FILES`.
pub fn corpus_size(universe: Universe) -> usize {
    let base = match universe {
        Universe::Java => 4000,
        Universe::Python => 2500,
    };
    std::env::var("USPEC_BENCH_FILES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(base)
}

/// Generates the corpus for a library.
pub fn corpus_sources(lib: &Library, num_files: usize, seed: u64) -> Vec<(String, String)> {
    generate_corpus(
        lib,
        &GenOptions {
            num_files,
            seed,
            ..GenOptions::default()
        },
    )
    .into_iter()
    .map(|f| (f.name, f.source))
    .collect()
}

/// Runs the standard learning pipeline for one universe.
pub fn standard_run(universe: Universe, seed: u64) -> BenchCtx {
    standard_run_with(universe, seed, PipelineOptions::default())
}

/// Runs the pipeline with custom options.
pub fn standard_run_with(universe: Universe, seed: u64, opts: PipelineOptions) -> BenchCtx {
    let lib = match universe {
        Universe::Java => java_library(),
        Universe::Python => python_library(),
    };
    let sources = corpus_sources(&lib, corpus_size(universe), seed);
    let result = run_pipeline(&sources, &lib.api_table(), &opts);
    BenchCtx {
        lib,
        sources,
        result,
        opts,
    }
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        println!("  {}", parts.join("  ").trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// The τ sweep used for Fig. 7.
pub const TAUS: &[f64] = &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95];

/// Version of the shared `BENCH_*.json` identification header emitted by
/// [`bench_envelope`]. Bump when the header's key set changes.
pub const BENCH_ENVELOPE_SCHEMA: u32 = 1;

/// The shared identification header every `BENCH_*.json` writer opens
/// with: bench name, envelope schema, git revision, timestamp, host, and
/// whether this was a `--smoke` run. Keeping one producer for these lines
/// means perf tooling (e.g. `uspec perf check --bench-dir`) can correlate
/// a bench document with ledger entries from the same checkout and host.
///
/// Returns pre-indented `  "key": value,\n` lines ready to splice right
/// after the opening `{` of the document.
pub fn bench_envelope(bench: &str, smoke: bool) -> String {
    use uspec_telemetry::ledger;
    format!(
        "  \"bench\": \"{bench}\",\n  \"schema\": {BENCH_ENVELOPE_SCHEMA},\n  \
         \"git_rev\": \"{}\",\n  \"timestamp_ms\": {},\n  \"host\": \"{}\",\n  \
         \"smoke\": {smoke},\n",
        ledger::git_rev(),
        ledger::timestamp_ms(),
        ledger::host_name(),
    )
}

/// Re-exported so the bench targets need only one dependency.
pub use uspec_corpus::Universe as BenchUniverse;

pub mod plot;
pub use plot::AsciiPlot;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sources_generates() {
        let lib = java_library();
        let s = corpus_sources(&lib, 5, 1);
        assert_eq!(s.len(), 5);
        assert!(s[0].1.contains("fn main"));
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "x".into()], vec!["22".into(), "yy".into()]],
        );
    }
}
