//! Minimal ASCII scatter/line plots for figure-style bench output.

/// Renders an ASCII scatter plot of `(x, y)` points labelled with single
/// characters, with fixed axis ranges.
pub struct AsciiPlot {
    width: usize,
    height: usize,
    x_range: (f64, f64),
    y_range: (f64, f64),
    cells: Vec<Vec<char>>,
    x_label: String,
    y_label: String,
}

impl AsciiPlot {
    /// Creates an empty plot canvas.
    pub fn new(
        width: usize,
        height: usize,
        x_range: (f64, f64),
        y_range: (f64, f64),
        x_label: &str,
        y_label: &str,
    ) -> AsciiPlot {
        assert!(width >= 10 && height >= 4, "canvas too small");
        assert!(
            x_range.1 > x_range.0 && y_range.1 > y_range.0,
            "empty range"
        );
        AsciiPlot {
            width,
            height,
            x_range,
            y_range,
            cells: vec![vec![' '; width]; height],
            x_label: x_label.to_owned(),
            y_label: y_label.to_owned(),
        }
    }

    /// Plots one point; out-of-range points are clamped to the border.
    pub fn point(&mut self, x: f64, y: f64, marker: char) {
        let fx = (x - self.x_range.0) / (self.x_range.1 - self.x_range.0);
        let fy = (y - self.y_range.0) / (self.y_range.1 - self.y_range.0);
        let cx = ((fx * (self.width - 1) as f64).round() as isize).clamp(0, self.width as isize - 1)
            as usize;
        let cy = ((fy * (self.height - 1) as f64).round() as isize)
            .clamp(0, self.height as isize - 1) as usize;
        // Row 0 is the top of the canvas.
        self.cells[self.height - 1 - cy][cx] = marker;
    }

    /// Renders the canvas with axes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("  {}\n", self.y_label));
        for (i, row) in self.cells.iter().enumerate() {
            let y_val = self.y_range.1
                - (self.y_range.1 - self.y_range.0) * i as f64 / (self.height - 1) as f64;
            let label = if i == 0 || i == self.height - 1 || i == self.height / 2 {
                format!("{y_val:5.2}")
            } else {
                "     ".to_owned()
            };
            out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!("      +{}\n", "-".repeat(self.width)));
        out.push_str(&format!(
            "       {:<w$.2}{:>r$.2}  {}\n",
            self.x_range.0,
            self.x_range.1,
            self.x_label,
            w = self.width / 2,
            r = self.width - self.width / 2
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_points_in_the_right_cells() {
        let mut p = AsciiPlot::new(20, 10, (0.0, 1.0), (0.0, 1.0), "recall", "precision");
        p.point(0.0, 0.0, 'a');
        p.point(1.0, 1.0, 'b');
        p.point(0.5, 0.5, 'c');
        let s = p.render();
        let lines: Vec<&str> = s.lines().collect();
        // 'b' top-right, 'a' bottom-left, 'c' middle.
        assert!(lines[1].ends_with('b'), "{s}");
        assert!(lines[10].contains('a'), "{s}");
        assert!(lines[5].contains('c') || lines[6].contains('c'), "{s}");
    }

    #[test]
    fn out_of_range_points_clamp() {
        let mut p = AsciiPlot::new(12, 5, (0.0, 1.0), (0.0, 1.0), "x", "y");
        p.point(2.0, -3.0, 'z');
        let s = p.render();
        assert!(s.contains('z'));
    }

    #[test]
    fn axis_labels_present() {
        let p = AsciiPlot::new(16, 6, (0.0, 1.0), (0.5, 1.0), "recall", "precision");
        let s = p.render();
        assert!(s.contains("precision"));
        assert!(s.contains("recall"));
        assert!(s.contains("1.00"));
        assert!(s.contains("0.50"));
    }

    #[test]
    #[should_panic(expected = "canvas too small")]
    fn tiny_canvas_rejected() {
        let _ = AsciiPlot::new(2, 2, (0.0, 1.0), (0.0, 1.0), "x", "y");
    }
}
