//! Fig. 7 — precision and recall of the selected specifications for
//! different thresholds τ, for Java (7a) and Python (7b).
//!
//! The paper labels a random sample of 120 candidates against library
//! documentation; here every candidate is labeled mechanically against the
//! ground-truth registry. Expected shape: precision high across the sweep
//! (≈0.8–0.95) with recall falling as τ rises; precision already high at
//! τ = 0 because most scored candidates are correct.

use uspec::precision_recall;
use uspec_bench::{f3, print_table, standard_run, AsciiPlot, BenchUniverse, TAUS};

fn main() {
    for universe in [BenchUniverse::Java, BenchUniverse::Python] {
        let ctx = standard_run(universe, 42);
        let points = precision_recall(&ctx.result.learned, |s| ctx.lib.is_true_spec(s), TAUS);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.tau),
                    f3(p.precision),
                    f3(p.recall),
                    p.selected.to_string(),
                    p.valid_selected.to_string(),
                ]
            })
            .collect();
        let fig = match universe {
            BenchUniverse::Java => "Fig. 7a (Java)",
            BenchUniverse::Python => "Fig. 7b (Python)",
        };
        print_table(
            &format!(
                "{fig}: precision/recall vs τ  [{} files, {} candidates]",
                ctx.result.corpus.files,
                ctx.result.learned.len()
            ),
            &["tau", "precision", "recall", "selected", "valid"],
            &rows,
        );
        // The figure itself: precision over recall, each point one τ
        // (labelled 0..9, a for 0.95), as in the paper's plot.
        let mut plot = AsciiPlot::new(52, 12, (0.0, 1.02), (0.4, 1.02), "recall", "precision");
        for (i, p) in points.iter().enumerate() {
            let marker = char::from_digit(i as u32 % 36, 36).unwrap_or('*');
            plot.point(p.recall, p.precision, marker);
        }
        println!("{}", plot.render());
    }
}
