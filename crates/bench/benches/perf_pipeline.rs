//! Criterion performance benchmarks for the end-to-end pipeline stages
//! (§7.2 reports ~5h for 4M Java files on a 28-core server; the comparable
//! quantity here is per-file throughput).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand_chacha::{rand_core::SeedableRng, ChaCha8Rng};
use uspec::{analyze_source, PipelineOptions};
use uspec_corpus::{generate_corpus, java_library, GenOptions};
use uspec_model::{extract_samples, EdgeModel};

fn bench_pipeline(c: &mut Criterion) {
    let lib = java_library();
    let table = lib.api_table();
    let opts = PipelineOptions::default();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 64,
            seed: 9,
            ..GenOptions::default()
        },
    );

    c.bench_function("analyze_file_to_event_graphs", |b| {
        let mut i = 0;
        b.iter(|| {
            let f = &files[i % files.len()];
            i += 1;
            analyze_source(&f.source, &table, &opts).expect("analyzes")
        })
    });

    let graphs: Vec<_> = files
        .iter()
        .flat_map(|f| analyze_source(&f.source, &table, &opts).expect("analyzes"))
        .collect();

    c.bench_function("extract_training_samples_per_graph", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut i = 0;
        b.iter(|| {
            let g = &graphs[i % graphs.len()];
            i += 1;
            extract_samples(g, &mut rng, &opts.train)
        })
    });

    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let samples: Vec<_> = graphs
        .iter()
        .flat_map(|g| extract_samples(g, &mut rng, &opts.train))
        .collect();

    c.bench_function("train_edge_model_64_files", |b| {
        b.iter_batched(
            || samples.clone(),
            |s| EdgeModel::train(&s, &opts.train),
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline
}
criterion_main!(benches);
