//! Serve-daemon benchmark: query throughput, tail latency, and the
//! edit-to-fresh-answer path.
//!
//! An in-process [`uspec_serve::Server`] is started over a generated
//! on-disk corpus (Unix socket, warm artifact store), then measured on
//! three axes:
//!
//! * **throughput/latency** — N concurrent clients issue single-request
//!   round trips; reported as qps plus p50/p95/p99 latency, and
//!   cross-checked against the daemon's own `metrics.snapshot` sliding
//!   windows (server-side percentiles must be ordered and within noise of
//!   the client-side measurement);
//! * **edit-to-fresh** — one corpus file is edited on disk and clients
//!   poll `status` until the generation moves; the elapsed wall time is
//!   the user-visible freshness lag. Because the server and this harness
//!   share one process, the global `jobs.executed` counter proves the
//!   re-learn replayed unchanged files: the edit's executed-job delta
//!   must stay well below the initial cold learn's;
//! * **byte identity** — a served `explain` answer is compared against
//!   the batch pipeline + serializer output for the same corpus, byte
//!   for byte (the serve contract: never a private dialect).
//!
//! Pass `--smoke` for a CI-sized run. Writes `BENCH_serve.json` at the
//! repo root in the shared envelope format.

use std::path::Path;
use std::time::{Duration, Instant};

use uspec::run_pipeline_cached;
use uspec_corpus::{java_library, SliceSource};
use uspec_serve::{roundtrip_unix, Listener, ServeOptions, Server};

/// Non-smoke floor: the edit re-learn may execute at most this fraction
/// of the cold learn's jobs (the rest must replay from the store).
const MAX_EDIT_JOB_FRACTION: f64 = 0.5;

fn counter(name: &str) -> u64 {
    uspec_telemetry::metrics::global()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Extracts the `gen` a successful response was answered from.
fn response_gen(line: &str) -> u64 {
    uspec_serve::json::parse(line)
        .ok()
        .and_then(|v| v.get("gen").and_then(uspec_serve::json::Json::as_u64))
        .unwrap_or(0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let num_files = if smoke { 64 } else { 256 };
    let clients = if smoke { 4 } else { 8 };
    let requests_per_client = if smoke { 40 } else { 200 };

    let lib = java_library();
    let sources = uspec_bench::corpus_sources(&lib, num_files, 47);
    let dir = std::env::temp_dir().join(format!("uspec-perf-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus_dir = dir.join("corpus");
    std::fs::create_dir_all(&corpus_dir).expect("corpus dir");
    let mut on_disk = Vec::new();
    for (name, source) in &sources {
        let path = corpus_dir.join(name);
        std::fs::write(&path, source).expect("corpus file");
        on_disk.push((path.display().to_string(), source.clone()));
    }
    on_disk.sort();

    let opts = ServeOptions {
        poll_ms: 10,
        debounce_ms: 20,
        workers: clients,
        cache_dir: Some(dir.join("cache")),
        ..ServeOptions::default()
    };
    let socket = dir.join("uspec.sock");
    let listener = Listener::bind_unix(&socket).expect("socket binds");
    let started = Instant::now();
    let server = Server::start(&corpus_dir, &lib, opts.clone(), listener).expect("server starts");
    let startup_secs = started.elapsed().as_secs_f64();
    let jobs_cold = counter("jobs.executed");

    // Byte identity: the batch pipeline over the same on-disk names, the
    // same serializer — must equal the served `explain` result exactly.
    let result = run_pipeline_cached(
        &SliceSource::new(&on_disk),
        &lib.api_table(),
        &opts.pipeline,
        None,
    );
    let mut provenance = result.provenance;
    provenance.retain_specs(|s| result.learned.get(s).is_some());
    let expected =
        serde_json::to_string(&uspec::explain_entries(&result.learned, &provenance, None))
            .expect("explain serializes");
    let served = roundtrip_unix(&socket, &[r#"{"id":1,"method":"explain"}"#]).expect("explain");
    // The envelope carries a server-stamped request number whose value
    // depends on how many frames ran before this one — match around it.
    let before_req = "{\"id\":1,\"req\":";
    let after_req = ",\"gen\":1,\"ok\":true,\"result\":";
    let req_digits = served[0]
        .strip_prefix(before_req)
        .map(|rest| rest.bytes().take_while(u8::is_ascii_digit).count())
        .unwrap_or(0);
    let prefix_len = before_req.len() + req_digits + after_req.len();
    assert!(
        req_digits > 0
            && served[0][before_req.len() + req_digits..].starts_with(after_req)
            && served[0].ends_with('}'),
        "unexpected envelope: {}",
        served[0]
    );
    assert_eq!(
        &served[0][prefix_len..served[0].len() - 1],
        expected,
        "served explain differs from the batch pipeline"
    );

    // Throughput and tail latency under concurrent clients. Each request
    // is its own connection round trip — the honest end-to-end cost a
    // shell or editor integration pays.
    let queries = [
        r#"{"id":1,"method":"spec.lookup"}"#,
        r#"{"id":1,"method":"status"}"#,
        r#"{"id":1,"method":"alias.may","params":{"a":"java.util.HashMap.get/1","b":"java.util.HashMap.get/1"}}"#,
    ];
    let bench_start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let socket = &socket;
                let queries = &queries;
                scope.spawn(move || {
                    let mut ns = Vec::with_capacity(requests_per_client);
                    for i in 0..requests_per_client {
                        let line = queries[(c + i) % queries.len()];
                        let t0 = Instant::now();
                        let r = roundtrip_unix(socket, &[line]).expect("query");
                        ns.push(t0.elapsed().as_nanos() as u64);
                        assert!(r[0].contains("\"ok\":true"), "query failed: {}", r[0]);
                    }
                    ns
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let bench_secs = bench_start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let total_requests = latencies.len();
    let qps = total_requests as f64 / bench_secs.max(1e-9);
    let p50_ms = percentile(&latencies, 0.50) as f64 / 1e6;
    let p95_ms = percentile(&latencies, 0.95) as f64 / 1e6;
    let p99_ms = percentile(&latencies, 0.99) as f64 / 1e6;

    // The daemon's own sliding windows must tell the same latency story
    // this harness just measured from the outside. Server-side handle
    // times exclude connection setup and socket writes, so they sit at or
    // below the client-side numbers — but never wildly above them.
    let snapshot_line = roundtrip_unix(&socket, &[r#"{"id":1,"method":"metrics.snapshot"}"#])
        .expect("metrics.snapshot");
    let snapshot = uspec_serve::json::parse(&snapshot_line[0]).expect("snapshot parses");
    let all_window = |field: &str| -> u64 {
        snapshot
            .get("result")
            .and_then(|r| r.get("windows"))
            .and_then(|w| w.get("all"))
            .and_then(|a| a.get(field))
            .and_then(uspec_serve::json::Json::as_u64)
            .unwrap_or(0)
    };
    let win_requests = all_window("total_requests");
    let win_p50_ms = all_window("total_p50_ns") as f64 / 1e6;
    let win_p95_ms = all_window("total_p95_ns") as f64 / 1e6;
    let win_p99_ms = all_window("total_p99_ns") as f64 / 1e6;
    assert!(
        win_requests as usize >= total_requests,
        "daemon windows saw {win_requests} requests but the harness sent {total_requests}"
    );
    assert!(
        win_p50_ms <= win_p95_ms && win_p95_ms <= win_p99_ms,
        "windowed percentiles unordered: p50 {win_p50_ms:.3} p95 {win_p95_ms:.3} \
         p99 {win_p99_ms:.3}"
    );
    // Generous noise bound: the histogram buckets are powers of two, so a
    // windowed percentile can read up to 2x the true value, plus slack
    // for scheduling jitter on the small smoke run.
    for (name, win_ms, client_ms) in [
        ("p50", win_p50_ms, p50_ms),
        ("p95", win_p95_ms, p95_ms),
        ("p99", win_p99_ms, p99_ms),
    ] {
        assert!(
            win_ms <= client_ms * 2.0 + 1.0,
            "windowed {name} {win_ms:.3}ms is not within noise of the \
             client-measured {client_ms:.3}ms"
        );
    }

    // Edit-to-fresh: touch one file, poll until the served generation
    // moves past it. The daemon's poll + debounce + incremental re-learn
    // all land inside this window.
    let jobs_before_edit = counter("jobs.executed");
    let victim = Path::new(&on_disk[on_disk.len() / 2].0);
    let mut edited = std::fs::read_to_string(victim).expect("victim reads");
    edited.push_str("\nfn edited9999() { s0 = \"edited\"; }\n");
    let edit_start = Instant::now();
    std::fs::write(victim, &edited).expect("victim writes");
    loop {
        let r = roundtrip_unix(&socket, &[r#"{"id":1,"method":"status"}"#]).expect("status");
        if response_gen(&r[0]) >= 2 {
            break;
        }
        assert!(
            edit_start.elapsed() < Duration::from_secs(120),
            "edit never became visible"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let edit_to_fresh_secs = edit_start.elapsed().as_secs_f64();
    let jobs_edit_delta = counter("jobs.executed") - jobs_before_edit;
    let edit_fraction = jobs_edit_delta as f64 / jobs_cold.max(1) as f64;

    let server_requests = counter("serve.requests");
    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);

    uspec_bench::print_table(
        "serve daemon: concurrent query latency and freshness",
        &["metric", "value"],
        &[
            vec!["qps".into(), format!("{qps:.0}")],
            vec!["p50 (ms)".into(), format!("{p50_ms:.3}")],
            vec!["p95 (ms)".into(), format!("{p95_ms:.3}")],
            vec!["p99 (ms)".into(), format!("{p99_ms:.3}")],
            vec!["daemon window p50 (ms)".into(), format!("{win_p50_ms:.3}")],
            vec!["daemon window p95 (ms)".into(), format!("{win_p95_ms:.3}")],
            vec!["daemon window p99 (ms)".into(), format!("{win_p99_ms:.3}")],
            vec!["edit→fresh (s)".into(), format!("{edit_to_fresh_secs:.3}")],
            vec!["cold learn jobs".into(), jobs_cold.to_string()],
            vec!["edit re-learn jobs".into(), jobs_edit_delta.to_string()],
        ],
    );
    println!(
        "  files: {num_files}  clients: {clients}  requests: {total_requests}  \
         served: {server_requests}  startup: {startup_secs:.3}s  \
         edit job fraction: {edit_fraction:.3} (cap {MAX_EDIT_JOB_FRACTION})"
    );

    let envelope = uspec_bench::bench_envelope("perf_serve", smoke);
    let json = format!(
        "{{\n{envelope}  \"files\": {num_files},\n  \"clients\": {clients},\n  \"requests\": {total_requests},\n  \"qps\": {qps:.2},\n  \"p50_ms\": {p50_ms:.4},\n  \"p95_ms\": {p95_ms:.4},\n  \"p99_ms\": {p99_ms:.4},\n  \"window_p50_ms\": {win_p50_ms:.4},\n  \"window_p95_ms\": {win_p95_ms:.4},\n  \"window_p99_ms\": {win_p99_ms:.4},\n  \"startup_seconds\": {startup_secs:.4},\n  \"edit_to_fresh_seconds\": {edit_to_fresh_secs:.4},\n  \"jobs_cold\": {jobs_cold},\n  \"jobs_edit_delta\": {jobs_edit_delta},\n  \"edit_job_fraction\": {edit_fraction:.4},\n  \"max_edit_job_fraction\": {MAX_EDIT_JOB_FRACTION},\n  \"batch_identical\": true\n}}\n"
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("  wrote {}", out.display()),
        Err(e) => eprintln!("  could not write {}: {e}", out.display()),
    }

    // The incremental contract: the re-learn after a one-file edit must
    // replay (not re-execute) most of the cold run's jobs. The smoke
    // corpus is big enough for this to hold there too, but keep the hard
    // assertion on full runs where fixed costs can't dominate.
    if !smoke {
        assert!(
            edit_fraction <= MAX_EDIT_JOB_FRACTION,
            "edit re-learn executed {jobs_edit_delta} of {jobs_cold} cold jobs \
             ({edit_fraction:.3} > {MAX_EDIT_JOB_FRACTION}) — the job cone is not being reused"
        );
    }
}
