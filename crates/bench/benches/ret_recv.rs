//! Extension experiment: the `RetRecv` pattern (§5.3's "our approach is
//! fundamentally not restricted to these patterns").
//!
//! `RetRecv(m)` states that `m` may return its receiver — builder-style
//! APIs (`StringBuilder.append`). The pattern is matched at single call
//! sites (receiver + used return value), its induced edges (receiver
//! allocation → return consumers) are scored by the same probabilistic
//! model, and the selected specs drive a new deduction rule in the
//! augmented analysis.
//!
//! Expected shape — and the honest finding: the true builder spec
//! (`StringBuilder.append`) scores at the very top, but so do many
//! *type-endogamous* methods (`String.trim`, `JsonNode.path`) whose return
//! type equals their receiver type: pure usage statistics cannot
//! distinguish "returns self" from "returns a like-typed value". This
//! reproduces the paper's §5.3 experience verbatim: "We also experimented
//! with different patterns, but the results were modest and hence we
//! focused on the two that perform empirically well." Distinguishing these
//! would need the extra signals the paper suggests as future work (e.g.
//! naming conventions).

use uspec::PipelineOptions;
use uspec_bench::{f3, print_table, standard_run_with, BenchUniverse};
use uspec_pta::Spec;

fn main() {
    let mut opts = PipelineOptions::default();
    opts.extract.enable_ret_recv = true;
    let ctx = standard_run_with(BenchUniverse::Java, 42, opts);

    let mut rows = Vec::new();
    for s in &ctx.result.learned.scored {
        if let Spec::RetRecv { method } = s.spec {
            let truth = if ctx.lib.is_true_spec(&s.spec) {
                "valid"
            } else {
                "invalid"
            };
            rows.push((
                s.score,
                vec![
                    method.qualified(),
                    f3(s.score),
                    s.matches.to_string(),
                    truth.to_string(),
                ],
            ));
        }
    }
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let top: Vec<Vec<String>> = rows.iter().take(12).map(|(_, r)| r.clone()).collect();
    print_table(
        "RetRecv extension: top candidates (Java)",
        &["method", "score", "matches", "ground truth"],
        &top,
    );

    let selected: Vec<_> = rows.iter().filter(|(score, _)| *score >= 0.6).collect();
    let valid = selected.iter().filter(|(_, r)| r[3] == "valid").count();
    println!(
        "\n  selected at τ=0.6: {} RetRecv specs, {} valid — the true builder
  spec ranks at the top, but type-endogamous methods (receiver type ==
  return type) are indistinguishable from builders by usage alone: the
  paper's \"results were modest\" experience with additional patterns,
  reproduced. The extension therefore stays opt-in
  (ExtractOptions::enable_ret_recv).",
        selected.len(),
        valid
    );
}
