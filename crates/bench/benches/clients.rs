//! §7.4 / Fig. 8 — effect of the learned specifications on downstream
//! client analyses.
//!
//! * **Type-state** (Fig. 8a): `hasNext` is checked on `iters.get(i)` and
//!   `next` is called on a *second* `iters.get(i)` — without
//!   `RetSame(List.get)` the two reads are distinct objects and a false
//!   positive is reported. Genuinely unguarded `next` calls must still be
//!   reported under every analysis.
//! * **Taint** (Fig. 8b): user input stored into a dict and read back
//!   flows into an HTML sink — without the dict `RetArg` specifications the
//!   round-trip breaks the taint chain and the vulnerability is missed.
//!
//! Expected shape: baseline has type-state FPs and taint FNs; the learned
//! specifications eliminate (nearly) all of them, matching the oracle.

use uspec_bench::{print_table, standard_run, BenchUniverse};
use uspec_clients::{
    check_leaks, check_taint, check_typestate, LeakConfig, TaintConfig, TypestateProtocol,
};
use uspec_lang::lower::lower_program;
use uspec_lang::parser::parse;
use uspec_lang::registry::ApiTable;
use uspec_pta::{Pta, PtaOptions, SpecDb};

/// Generates Fig. 8a-style files: `needs_alias` ones are correct code that
/// requires the RetSame spec to verify; `buggy` ones are real violations.
fn typestate_files(n: usize) -> (Vec<String>, Vec<String>) {
    let mut ok = Vec::new();
    let mut buggy = Vec::new();
    for i in 0..n {
        let idx = i % 5;
        ok.push(format!(
            r#"
            fn main(flag0) {{
                iters = new java.util.ArrayList();
                c = iters.get({idx}).hasNext();
                if (c) {{
                    x = iters.get({idx}).next();
                }}
            }}
            "#
        ));
        buggy.push(format!(
            r#"
            fn main(flag0) {{
                iters = new java.util.ArrayList();
                x = iters.get({idx}).next();
            }}
            "#
        ));
    }
    (ok, buggy)
}

/// Generates Fig. 8b-style files: `vulnerable` flows through a dict
/// round-trip; `safe` ones are sanitized.
fn taint_files(n: usize) -> (Vec<String>, Vec<String>) {
    let mut vulnerable = Vec::new();
    let mut safe = Vec::new();
    for i in 0..n {
        let key = ["value", "data", "q", "input"][i % 4];
        let store = if i % 2 == 0 {
            "SubscriptStore"
        } else {
            "setdefault"
        };
        vulnerable.push(format!(
            r#"
            fn main(req, html) {{
                kwargs = new Dict();
                v = req.getParam("{key}");
                kwargs.{store}("data-{key}", v);
                w = kwargs.SubscriptLoad("data-{key}");
                html.render(w);
            }}
            "#
        ));
        safe.push(format!(
            r#"
            fn main(req, html) {{
                kwargs = new Dict();
                v = req.getParam("{key}");
                s = v.escape();
                kwargs.{store}("data-{key}", s);
                w = kwargs.SubscriptLoad("data-{key}");
                html.render(w);
            }}
            "#
        ));
    }
    (vulnerable, safe)
}

fn count_typestate(files: &[String], table: &ApiTable, specs: &SpecDb) -> usize {
    let protocol = TypestateProtocol::iterator();
    files
        .iter()
        .map(|src| {
            let program = parse(src).expect("scenario parses");
            let bodies = lower_program(&program, table, &Default::default()).expect("lowers");
            bodies
                .iter()
                .map(|b| {
                    let pta = Pta::run(b, specs, &PtaOptions::default());
                    check_typestate(b, &pta, &protocol).len()
                })
                .sum::<usize>()
        })
        .sum()
}

fn count_taint(files: &[String], table: &ApiTable, specs: &SpecDb) -> usize {
    let config = TaintConfig::new(&["getParam"], &["render"], &["escape"]);
    files
        .iter()
        .map(|src| {
            let program = parse(src).expect("scenario parses");
            let bodies = lower_program(&program, table, &Default::default()).expect("lowers");
            bodies
                .iter()
                .map(|b| {
                    let pta = Pta::run(b, specs, &PtaOptions::default());
                    check_taint(&pta, &config).len()
                })
                .sum::<usize>()
        })
        .sum()
}

/// Resource-leak scenarios: the connection is closed through a registry
/// round-trip (needs specs) or genuinely left open.
fn leak_files(n: usize) -> (Vec<String>, Vec<String>) {
    let mut ok = Vec::new();
    let mut buggy = Vec::new();
    for i in 0..n {
        let key = ["conn", "db", "sock", "res"][i % 4];
        ok.push(format!(
            r#"
            fn main(io) {{
                reg = new java.util.HashMap();
                c = io.open("{key}");
                reg.put("{key}", c);
                reg.get("{key}").close();
            }}
            "#
        ));
        buggy.push(format!(
            r#"
            fn main(io) {{
                c = io.open("{key}");
                c.read();
            }}
            "#
        ));
    }
    (ok, buggy)
}

fn count_leaks(files: &[String], table: &ApiTable, specs: &SpecDb) -> usize {
    let config = LeakConfig::new(&["open"], &["close"]);
    files
        .iter()
        .map(|src| {
            let program = parse(src).expect("scenario parses");
            let bodies = lower_program(&program, table, &Default::default()).expect("lowers");
            bodies
                .iter()
                .map(|b| {
                    let pta = Pta::run(b, specs, &PtaOptions::default());
                    check_leaks(b, &pta, &config).len()
                })
                .sum::<usize>()
        })
        .sum()
}

fn main() {
    let n = 30;

    // ---- Type-state (Java universe) ----------------------------------------
    let java = standard_run(BenchUniverse::Java, 42);
    let table = java.lib.api_table();
    let learned = java.result.select(0.6);
    let oracle = SpecDb::from_specs(java.lib.true_specs());
    let (ok_files, buggy_files) = typestate_files(n);
    let rows: Vec<Vec<String>> = [
        ("API-unaware baseline", SpecDb::empty()),
        ("learned specs (τ=0.6)", learned),
        ("ground-truth oracle", oracle),
    ]
    .into_iter()
    .map(|(name, specs)| {
        let fps = count_typestate(&ok_files, &table, &specs);
        let tps = count_typestate(&buggy_files, &table, &specs);
        vec![name.to_string(), format!("{fps}/{n}"), format!("{tps}/{n}")]
    })
    .collect();
    print_table(
        "Fig. 8a: type-state client (hasNext/next over list-stored iterators)",
        &["analysis", "false positives", "true violations found"],
        &rows,
    );

    // ---- Resource leaks (Java universe) --------------------------------------
    let learned = java.result.select(0.6);
    let oracle = SpecDb::from_specs(java.lib.true_specs());
    let (ok_files, buggy_files) = leak_files(n);
    let rows: Vec<Vec<String>> = [
        ("API-unaware baseline", SpecDb::empty()),
        ("learned specs (τ=0.6)", learned),
        ("ground-truth oracle", oracle),
    ]
    .into_iter()
    .map(|(name, specs)| {
        let fps = count_leaks(&ok_files, &table, &specs);
        let tps = count_leaks(&buggy_files, &table, &specs);
        vec![name.to_string(), format!("{fps}/{n}"), format!("{tps}/{n}")]
    })
    .collect();
    print_table(
        "Resource-leak client (open/close through a registry round-trip)",
        &["analysis", "false leak reports", "true leaks found"],
        &rows,
    );

    // ---- Taint (Python universe) --------------------------------------------
    let py = standard_run(BenchUniverse::Python, 42);
    let table = py.lib.api_table();
    let learned = py.result.select(0.6);
    let oracle = SpecDb::from_specs(py.lib.true_specs());
    let (vuln_files, safe_files) = taint_files(n);
    let rows: Vec<Vec<String>> = [
        ("API-unaware baseline", SpecDb::empty()),
        ("learned specs (τ=0.6)", learned),
        ("ground-truth oracle", oracle),
    ]
    .into_iter()
    .map(|(name, specs)| {
        let found = count_taint(&vuln_files, &table, &specs);
        let fps = count_taint(&safe_files, &table, &specs);
        vec![
            name.to_string(),
            format!("{found}/{n}"),
            format!("{fps}/{n}"),
        ]
    })
    .collect();
    print_table(
        "Fig. 8b: taint client (user input through a dict round-trip into HTML)",
        &[
            "analysis",
            "vulnerabilities found",
            "false alarms on sanitized",
        ],
        &rows,
    );
}
