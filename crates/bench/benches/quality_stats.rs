//! §7.2 quantitative claims that have no dedicated table:
//!
//! 1. **Pipeline counts** — candidates extracted / specifications selected /
//!    API classes covered per language (the paper: 1154→621 over 536→313
//!    classes for Java, 2394→1438 over 1488→968 for Python; our corpus is
//!    smaller so counts scale down, the selected/extracted ratio is the
//!    comparable quantity).
//! 2. **Scoring-function ablation** — the top-k-average score dominates the
//!    match-count score: at equal recall it yields at least the same
//!    precision ("higher precision can only be achieved at the price of
//!    strictly lower recall").
//! 3. **Raw edge acceptance** — accepting every non-edge the model assigns
//!    ≥ 0.5 confidence (no specification scoring) yields a high
//!    false-positive rate (the paper: ≈1 in 4 predicted edges incorrect).
//! 4. **RetSame-for-all** — assuming RetSame for every API method roughly
//!    doubles the imprecise fraction of diff call sites vs. learned specs.

use uspec::{
    analyze_source, analyze_source_with_specs, compare_on_corpus, precision_recall, DiffCategory,
};
use uspec_bench::{corpus_sources, f3, print_table, standard_run, BenchUniverse};
use uspec_learn::{LearnedSpecs, ScoreFn};
use uspec_pta::{Spec, SpecDb};

fn main() {
    let mut ctxs = Vec::new();
    for universe in [BenchUniverse::Java, BenchUniverse::Python] {
        ctxs.push((universe, standard_run(universe, 42)));
    }

    // ---- 1. Pipeline counts ------------------------------------------------
    let rows: Vec<Vec<String>> = ctxs
        .iter()
        .map(|(u, ctx)| {
            let learned = &ctx.result.learned;
            let selected: Vec<_> = learned.selected(0.6).collect();
            let classes_cand: std::collections::BTreeSet<_> =
                learned.scored.iter().map(|s| s.spec.class()).collect();
            let classes_sel: std::collections::BTreeSet<_> =
                selected.iter().map(|s| s.spec.class()).collect();
            vec![
                format!("{u:?}"),
                ctx.result.corpus.files.to_string(),
                learned.len().to_string(),
                classes_cand.len().to_string(),
                selected.len().to_string(),
                classes_sel.len().to_string(),
                f3(selected.len() as f64 / learned.len().max(1) as f64),
            ]
        })
        .collect();
    print_table(
        "§7.2 pipeline counts (τ = 0.6)",
        &[
            "lang",
            "files",
            "candidates",
            "cand classes",
            "selected",
            "sel classes",
            "sel/cand",
        ],
        &rows,
    );

    // ---- 2. Scoring-function ablation ---------------------------------------
    for (u, ctx) in &ctxs {
        let fns: Vec<(&str, ScoreFn)> = vec![
            ("top-10 avg (paper)", ScoreFn::TopKAvg(10)),
            ("max", ScoreFn::Max),
            ("95-percentile", ScoreFn::Percentile(0.95)),
            ("match count", ScoreFn::MatchCount { soft: 20.0 }),
        ];
        let mut rows = Vec::new();
        for (name, sf) in fns {
            let learned = LearnedSpecs::from_candidates(&ctx.result.candidates, sf);
            let mut row = vec![name.to_string()];
            for target_recall in [0.4, 0.6, 0.8] {
                // Finest precision achievable at >= target recall.
                let taus: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
                let best = precision_recall(&learned, |s| ctx.lib.is_true_spec(s), &taus)
                    .into_iter()
                    .filter(|p| p.recall >= target_recall)
                    .map(|p| p.precision)
                    .fold(0.0f64, f64::max);
                row.push(f3(best));
            }
            rows.push(row);
        }
        print_table(
            &format!("§7.2 scoring-function ablation ({u:?}): best precision at recall ≥ r"),
            &["scoring", "r=0.4", "r=0.6", "r=0.8"],
            &rows,
        );
    }

    // ---- 3. Raw edge acceptance at confidence 0.5 ----------------------------
    for (u, ctx) in &ctxs {
        let truth = SpecDb::from_specs(ctx.lib.true_specs());
        let table = ctx.lib.api_table();
        // Fresh evaluation corpus; score every non-edge pair.
        let eval = corpus_sources(&ctx.lib, 250, 777);
        // Retrain quickly on the standard corpus is unnecessary: reuse the
        // model through the learned result is not exposed, so train inline.
        let model = {
            use rand_chacha::{rand_core::SeedableRng, ChaCha8Rng};
            use uspec_model::{extract_samples, EdgeModel};
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut samples = Vec::new();
            for (_, src) in &ctx.sources[..ctx.sources.len().min(1500)] {
                for g in analyze_source(src, &table, &ctx.opts).unwrap_or_default() {
                    samples.extend(extract_samples(&g, &mut rng, &ctx.opts.train));
                }
            }
            EdgeModel::train(&samples, &ctx.opts.train)
        };
        let (mut accepted, mut wrong) = (0usize, 0usize);
        for (_, src) in &eval {
            let base = analyze_source(src, &table, &ctx.opts).unwrap_or_default();
            let oracle =
                analyze_source_with_specs(src, &table, &truth, &ctx.opts).unwrap_or_default();
            for (bg, og) in base.iter().zip(&oracle) {
                for a in bg.event_ids() {
                    for b in bg.event_ids() {
                        if a == b || bg.has_edge(a, b) {
                            continue;
                        }
                        let Some(p) = model.predict_pair(bg, a, b) else {
                            continue;
                        };
                        if p < 0.5 {
                            continue;
                        }
                        accepted += 1;
                        // Correct iff the events really alias (oracle graph).
                        let ea = bg.event(a);
                        let eb = bg.event(b);
                        let ok = match (og.event_id(ea.site, ea.pos), og.event_id(eb.site, eb.pos))
                        {
                            (Some(oa), Some(ob)) => og.has_edge(oa, ob) || og.may_alias(oa, ob),
                            _ => false,
                        };
                        if !ok {
                            wrong += 1;
                        }
                    }
                }
            }
        }
        let spec_points =
            precision_recall(&ctx.result.learned, |s| ctx.lib.is_true_spec(s), &[0.6]);
        println!(
            "\n== §7.2 raw edge acceptance ({u:?}) ==\n  accepted non-edges at conf ≥ 0.5: {accepted}; incorrect: {wrong} ({:.1}% FP)\n  vs. specification-level selection at τ = 0.6: {:.1}% FP\n  (paper: ≈1 in 4 raw edges wrong on GitHub code; our synthetic corpus is\n  more regular, so indistinguishable cross-object pairs inflate the raw\n  rate — the conclusion that candidates must be scored at the\n  specification level is the same)",
            100.0 * wrong as f64 / accepted.max(1) as f64,
            100.0 * (1.0 - spec_points[0].precision)
        );
    }

    // ---- 3b. Dynamic cross-validation of the labeling oracle ------------------
    for (u, ctx) in &ctxs {
        let mut agree = 0usize;
        let mut disagree = 0usize;
        let mut unvalidatable = 0usize;
        for s in &ctx.result.learned.scored {
            match uspec_atlas::spec_holds(&ctx.lib, &s.spec) {
                Some(dynamic) => {
                    if dynamic == ctx.lib.is_true_spec(&s.spec) {
                        agree += 1;
                    } else {
                        disagree += 1;
                    }
                }
                None => unvalidatable += 1,
            }
        }
        println!(
            "\n== labeling cross-validation ({u:?}) ==\n  candidates whose declarative label matches concrete execution: {agree}; \
             disagreements: {disagree}; unvalidatable (unobtainable receivers): {unvalidatable}\n  (the paper labels by reading documentation; here the \"documentation\" is executable)"
        );
    }

    // ---- 4. RetSame-for-all --------------------------------------------------
    for (u, ctx) in &ctxs {
        let truth = SpecDb::from_specs(ctx.lib.true_specs());
        let table = ctx.lib.api_table();
        let eval = corpus_sources(&ctx.lib, 400, 888);
        let learned_db = ctx.result.select(0.6);
        let all_ret_same: SpecDb = ctx
            .lib
            .classes()
            .flat_map(|c| {
                c.methods
                    .iter()
                    .filter(|m| !m.is_static)
                    .map(|m| Spec::RetSame {
                        method: uspec_lang::MethodId {
                            class: c.name,
                            method: m.name,
                            arity: m.arity,
                        },
                    })
            })
            .collect();
        let imprecise = |db: &SpecDb| {
            let report = compare_on_corpus(&eval, &table, db, &truth, &ctx.opts);
            let counts = report.counts();
            let bad: usize = counts
                .iter()
                .filter(|(c, _)| **c != DiffCategory::PreciseCoverage)
                .map(|(_, n)| n)
                .sum();
            let total = report.diffs.len().max(1);
            (bad, total, bad as f64 / total as f64)
        };
        let (lb, lt, lr) = imprecise(&learned_db);
        let (ab, at, ar) = imprecise(&all_ret_same);
        println!(
            "\n== §7.2 RetSame-for-all ({u:?}) ==\n  learned specs:  {lb}/{lt} diff sites imprecise ({:.1}%)\n  RetSame-for-all: {ab}/{at} diff sites imprecise ({:.1}%)  → factor {:.2} (paper: ≈2×)",
            lr * 100.0,
            ar * 100.0,
            ar / lr.max(1e-9)
        );
    }
}
