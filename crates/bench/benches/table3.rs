//! Tab. 3 — example inferred specifications with their match counts and
//! scores, including the deliberately "incorrect" rows.
//!
//! Expected shape: the showcase specifications (HashMap get/put,
//! KeyStore.getKey, ResultSet.getString, SparseArray get/put, JsonNode.path,
//! ViewGroup.findViewById, the Dict subscript pair, SafeConfigParser
//! get/set) all score above the τ = 0.6 selection threshold, and the two
//! planted incorrect candidates (TreeAdaptor rulePostProcessing/addChild,
//! List.pop) score high enough to be selected as well — the same
//! false-positive pattern the paper reports.

use uspec_bench::{print_table, standard_run, BenchUniverse};
use uspec_corpus::Library;
use uspec_learn::{LearnedSpecs, Spec};

/// The showcase rows: (universe, class substring, spec predicate name).
fn showcase(universe: BenchUniverse) -> Vec<(&'static str, &'static str)> {
    match universe {
        BenchUniverse::Java => vec![
            ("java.util.HashMap", "RetArg(java.util.HashMap.get"),
            (
                "java.security.KeyStore",
                "RetSame(java.security.KeyStore.getKey",
            ),
            ("java.sql.ResultSet", "RetSame(java.sql.ResultSet.getString"),
            (
                "android.util.SparseArray",
                "RetArg(android.util.SparseArray.get",
            ),
            (
                "com.fasterxml.jackson.databind.JsonNode",
                "RetSame(com.fasterxml.jackson.databind.JsonNode.path",
            ),
            (
                "android.view.ViewGroup",
                "RetSame(android.view.ViewGroup.findViewById",
            ),
            (
                "org.antlr.runtime.tree.TreeAdaptor",
                "RetArg(org.antlr.runtime.tree.TreeAdaptor.rulePostProcessing",
            ),
        ],
        BenchUniverse::Python => vec![
            ("Dict", "RetArg(Dict.SubscriptLoad/1, Dict.SubscriptStore/2"),
            ("List", "RetSame(List.pop"),
            (
                "configParser.SafeConfigParser",
                "RetArg(configParser.SafeConfigParser.get",
            ),
        ],
    }
}

fn rows_for(lib: &Library, learned: &LearnedSpecs, universe: BenchUniverse) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for (class, pattern) in showcase(universe) {
        let entry = learned
            .scored
            .iter()
            .find(|s| format!("{:?}", s.spec).starts_with(pattern));
        match entry {
            Some(s) => {
                let correct = if lib.is_true_spec(&s.spec) {
                    ""
                } else {
                    "incorrect"
                };
                rows.push(vec![
                    class.to_string(),
                    strip_class(&s.spec),
                    s.matches.to_string(),
                    format!("{:.3}", s.score),
                    correct.to_string(),
                ]);
            }
            None => rows.push(vec![
                class.to_string(),
                format!("<{pattern} not learned>"),
                "-".into(),
                "-".into(),
                "".into(),
            ]),
        }
    }
    rows
}

/// Renders a spec without the fully-qualified class prefix, as Tab. 3 does.
fn strip_class(spec: &Spec) -> String {
    match spec {
        Spec::RetSame { method } => format!("RetSame({})", method.method),
        Spec::RetArg { target, source, x } => {
            format!("RetArg({}, {}, {x})", target.method, source.method)
        }
        Spec::RetRecv { method } => format!("RetRecv({})", method.method),
    }
}

fn main() {
    for universe in [BenchUniverse::Java, BenchUniverse::Python] {
        let ctx = standard_run(universe, 42);
        let rows = rows_for(&ctx.lib, &ctx.result.learned, universe);
        print_table(
            &format!("Tab. 3 ({universe:?}): example inferred specifications"),
            &["API class", "Specification", "#matches", "score", ""],
            &rows,
        );
    }
}
