//! Criterion performance benchmarks for the points-to analysis in its three
//! configurations (API-unaware baseline, learned specs, learned specs with
//! the §6.4 coverage extension).

use criterion::{criterion_group, criterion_main, Criterion};
use uspec_corpus::{generate_corpus, java_library, GenOptions};
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::parser::parse;
use uspec_pta::{GhostMode, Pta, PtaOptions, SpecDb};

fn bench_pta(c: &mut Criterion) {
    let lib = java_library();
    let table = lib.api_table();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files: 48,
            seed: 17,
            ..GenOptions::default()
        },
    );
    let bodies: Vec<_> = files
        .iter()
        .flat_map(|f| {
            let program = parse(&f.source).expect("parses");
            lower_program(&program, &table, &LowerOptions::default()).expect("lowers")
        })
        .collect();
    let truth = SpecDb::from_specs(lib.true_specs());

    c.bench_function("pta_baseline_per_body", |b| {
        let mut i = 0;
        b.iter(|| {
            let body = &bodies[i % bodies.len()];
            i += 1;
            Pta::run(body, &SpecDb::empty(), &PtaOptions::default())
        })
    });

    c.bench_function("pta_augmented_per_body", |b| {
        let mut i = 0;
        b.iter(|| {
            let body = &bodies[i % bodies.len()];
            i += 1;
            Pta::run(body, &truth, &PtaOptions::default())
        })
    });

    c.bench_function("pta_coverage_mode_per_body", |b| {
        let opts = PtaOptions {
            ghost_mode: GhostMode::Coverage,
            ..PtaOptions::default()
        };
        let mut i = 0;
        b.iter(|| {
            let body = &bodies[i % bodies.len()];
            i += 1;
            Pta::run(body, &truth, &opts)
        })
    });

    c.bench_function("parse_and_lower_per_file", |b| {
        let mut i = 0;
        b.iter(|| {
            let f = &files[i % files.len()];
            i += 1;
            let program = parse(&f.source).expect("parses");
            lower_program(&program, &table, &LowerOptions::default()).expect("lowers")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pta
}
criterion_main!(benches);
