//! Points-to engine benchmark: worklist solver vs the naive reference.
//!
//! Runs both engines over the same generated corpus in the three analysis
//! configurations (API-unaware baseline, ground-truth specs, ground-truth
//! specs with the §6.4 coverage extension), verifies byte-identical
//! results untimed first, then times each engine and writes a machine-
//! readable summary to `BENCH_pta.json` at the repository root.
//!
//! Pass `--smoke` for a quick CI-sized run; `USPEC_BENCH_FILES` scales the
//! corpus for full runs.

use std::time::Instant;

use uspec_corpus::{generate_corpus, java_library, GenOptions};
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::mir::Body;
use uspec_lang::parser::parse;
use uspec_pta::{EngineKind, GhostMode, Pta, PtaAggregate, PtaOptions, SpecDb};

struct Config {
    name: &'static str,
    bodies: Vec<Body>,
    specs: SpecDb,
    ghost_mode: GhostMode,
}

/// Synthesizes a body whose fixpoint needs ~`n` rounds: every field load
/// reads a slot that is only stored *later* in program order, so each pass
/// of the naive engine advances the value chain by one box while the
/// worklist solver re-evaluates only the two constraints whose inputs
/// changed. This is the iteration-heavy, sparse-delta workload difference
/// propagation targets (real fields — ghost-field chains grow every set
/// every round via z-allocation, which no engine can make sparse).
fn feedback_chain(n: usize) -> String {
    let mut src = String::from(
        "class Box { fn touch(self) { return self; } }\n\
         fn main(db) {\n  src = db.getFile(\"s\");\n",
    );
    for i in 0..n {
        src.push_str(&format!("  b{i} = new Box();\n"));
    }
    for i in (0..n).rev() {
        src.push_str(&format!("  x{i} = b{i}.item;\n"));
    }
    src.push_str("  b0.item = src;\n");
    for i in 1..n {
        src.push_str(&format!("  b{i}.item = x{};\n", i - 1));
    }
    src.push_str("  sink = x");
    src.push_str(&(n - 1).to_string());
    src.push_str(";\n}\n");
    src
}

struct EngineRun {
    bodies_per_sec: f64,
    seconds: f64,
    /// Per-trial average seconds in constraint lowering (`pta.lower`),
    /// zero for the naive engine (it has no lowering phase).
    lower_seconds: f64,
    /// Per-trial average seconds reaching the fixpoint (`pta.propagate`).
    propagate_seconds: f64,
    /// Per-trial average seconds in the shared recording pass.
    record_seconds: f64,
}

fn opts_for(cfg: &Config, engine: EngineKind) -> PtaOptions {
    PtaOptions {
        ghost_mode: cfg.ghost_mode,
        engine,
        ..PtaOptions::default()
    }
}

/// Timing trials per engine/config; the fastest trial is reported, which
/// filters out scheduler and frequency-scaling noise on shared machines.
const TRIALS: usize = 3;

fn time_engine(cfg: &Config, engine: EngineKind, reps: usize) -> EngineRun {
    let opts = opts_for(cfg, engine);
    let mut sink = 0usize;
    let mut seconds = f64::INFINITY;
    // The engines' phase spans (lower / propagate / record) accumulate in
    // the process-global telemetry table; reset it so this run's snapshot
    // covers exactly these trials.
    uspec_telemetry::reset();
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..reps {
            for body in &cfg.bodies {
                sink += Pta::run(body, &cfg.specs, &opts).heap.len();
            }
        }
        seconds = seconds.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(sink);
    let spans = uspec_telemetry::span::snapshot();
    let per_trial = |name: &str| {
        spans
            .get(name)
            .map(|s| s.total_seconds() / TRIALS as f64)
            .unwrap_or(0.0)
    };
    let analyzed = (cfg.bodies.len() * reps) as f64;
    EngineRun {
        bodies_per_sec: analyzed / seconds.max(1e-9),
        seconds,
        lower_seconds: per_trial("pta.lower"),
        propagate_seconds: per_trial("pta.propagate"),
        record_seconds: per_trial("pta.record"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (num_files, reps) = if smoke {
        (32, 2)
    } else {
        let files = std::env::var("USPEC_BENCH_FILES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        (files, 5)
    };

    let lib = java_library();
    let table = lib.api_table();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files,
            seed: 17,
            ..GenOptions::default()
        },
    );
    let lower = |src: &str| -> Vec<Body> {
        let program = parse(src).expect("parses");
        lower_program(&program, &table, &LowerOptions::default()).expect("lowers")
    };
    let corpus_bodies: Vec<Body> = files.iter().flat_map(|f| lower(&f.source)).collect();
    // Deep chains are the engine-differentiating workload (the corpus
    // bodies converge in ~2 passes, where both engines are bound by the
    // shared recording pass); lengths stay under the `max_passes` cap.
    // One batch per ~32 corpus files keeps the corpus/fixpoint mix the
    // same in smoke and full runs.
    let batch: &[usize] = &[16, 32, 48, 56, 48, 56, 56, 56, 56];
    let batches = num_files.div_ceil(32).max(1);
    let feedback_bodies: Vec<Body> = (0..batches)
        .flat_map(|_| batch.iter())
        .flat_map(|&n| lower(&feedback_chain(n)))
        .collect();
    let truth = SpecDb::from_specs(lib.true_specs());
    let configs = [
        Config {
            name: "baseline",
            bodies: corpus_bodies.clone(),
            specs: SpecDb::empty(),
            ghost_mode: GhostMode::Base,
        },
        Config {
            name: "augmented",
            bodies: corpus_bodies.clone(),
            specs: truth.clone(),
            ghost_mode: GhostMode::Base,
        },
        Config {
            name: "coverage",
            bodies: corpus_bodies,
            specs: truth.clone(),
            ghost_mode: GhostMode::Coverage,
        },
        Config {
            name: "feedback",
            bodies: feedback_bodies,
            specs: SpecDb::empty(),
            ghost_mode: GhostMode::Base,
        },
    ];

    // Untimed verification sweep: the worklist engine must be
    // byte-identical to the naive reference on every body and config,
    // and this is where the per-config solver statistics come from. The
    // pass-count histograms are the shape that explains the speedup table:
    // configs whose bodies converge in 2–3 passes are bound by the shared
    // recording pass (worklist ≈ naive or worse, it pays for lowering),
    // while deep-fixpoint bodies amortize lowering over many sparse rounds.
    let mut identical = true;
    let mut peak_constraints = 0usize;
    let mut naive_aggs: Vec<PtaAggregate> = Vec::new();
    let mut wl_aggs: Vec<PtaAggregate> = Vec::new();
    for cfg in &configs {
        let mut naive_agg = PtaAggregate::default();
        let mut wl_agg = PtaAggregate::default();
        for body in &cfg.bodies {
            let naive = Pta::run(body, &cfg.specs, &opts_for(cfg, EngineKind::Naive));
            let wl = Pta::run(body, &cfg.specs, &opts_for(cfg, EngineKind::Worklist));
            if naive.objs != wl.objs
                || naive.heap != wl.heap
                || naive.records != wl.records
                || naive.entry_envs != wl.entry_envs
            {
                identical = false;
                eprintln!("MISMATCH: {} fn {}", cfg.name, body.func);
            }
            naive_agg.record(&naive.stats);
            wl_agg.record(&wl.stats);
            peak_constraints = peak_constraints.max(wl.stats.constraints);
        }
        naive_aggs.push(naive_agg);
        wl_aggs.push(wl_agg);
    }
    let propagations: usize = wl_aggs.iter().map(|a| a.propagations).sum();
    let non_converged: usize = wl_aggs.iter().map(|a| a.non_converged).sum();

    let hist_json = |agg: &PtaAggregate| -> String {
        let entries: Vec<String> = agg
            .pass_histogram()
            .iter()
            .map(|(passes, bodies)| format!("[{passes}, {bodies}]"))
            .collect();
        format!("[{}]", entries.join(", "))
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_configs: Vec<String> = Vec::new();
    let mut naive_total = 0.0f64;
    let mut wl_total = 0.0f64;
    for (i, cfg) in configs.iter().enumerate() {
        let naive = time_engine(cfg, EngineKind::Naive, reps);
        let wl = time_engine(cfg, EngineKind::Worklist, reps);
        naive_total += naive.seconds;
        wl_total += wl.seconds;
        let speedup = naive.seconds / wl.seconds.max(1e-9);
        let wl_agg = &wl_aggs[i];
        let mean_passes = wl_agg.passes as f64 / wl_agg.bodies.max(1) as f64;
        rows.push(vec![
            cfg.name.to_owned(),
            format!("{:.0}", naive.bodies_per_sec),
            format!("{:.0}", wl.bodies_per_sec),
            format!("{speedup:.2}x"),
            format!("{mean_passes:.1}"),
            format!(
                "{:.0}/{:.0}/{:.0}",
                wl.lower_seconds * 1e3,
                wl.propagate_seconds * 1e3,
                wl.record_seconds * 1e3
            ),
        ]);
        json_configs.push(format!(
            "    {{\"name\": \"{}\", \"naive_bodies_per_sec\": {:.1}, \"worklist_bodies_per_sec\": {:.1}, \"speedup\": {:.3},\n     \"pass_histogram\": {}, \"naive_pass_histogram\": {},\n     \"worklist_lower_seconds\": {:.6}, \"worklist_propagate_seconds\": {:.6}, \"worklist_record_seconds\": {:.6},\n     \"naive_propagate_seconds\": {:.6}, \"naive_record_seconds\": {:.6}}}",
            cfg.name,
            naive.bodies_per_sec,
            wl.bodies_per_sec,
            speedup,
            hist_json(wl_agg),
            hist_json(&naive_aggs[i]),
            wl.lower_seconds,
            wl.propagate_seconds,
            wl.record_seconds,
            naive.propagate_seconds,
            naive.record_seconds,
        ));
    }
    let aggregate_speedup = naive_total / wl_total.max(1e-9);

    uspec_bench::print_table(
        "points-to engine: worklist vs naive (bodies/sec)",
        &[
            "config",
            "naive",
            "worklist",
            "speedup",
            "passes/body",
            "wl lower/prop/rec (ms)",
        ],
        &rows,
    );
    let total_bodies: usize = configs.iter().map(|c| c.bodies.len()).sum();
    println!(
        "  bodies: {total_bodies}  reps: {reps}  identical results: {identical}  aggregate speedup: {aggregate_speedup:.2}x"
    );

    let envelope = uspec_bench::bench_envelope("perf_pta", smoke);
    let json = format!(
        "{{\n{envelope}  \"files\": {num_files},\n  \"bodies\": {total_bodies},\n  \"reps\": {reps},\n  \"identical_results\": {identical},\n  \"aggregate_speedup\": {aggregate_speedup:.3},\n  \"worklist_propagations\": {propagations},\n  \"peak_constraint_count\": {peak_constraints},\n  \"non_converged_bodies\": {non_converged},\n  \"configs\": [\n{}\n  ]\n}}\n",
        json_configs.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pta.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("  wrote {}", out.display()),
        Err(e) => eprintln!("  could not write {}: {e}", out.display()),
    }

    assert!(identical, "worklist engine diverged from naive reference");
}
