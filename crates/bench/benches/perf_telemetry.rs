//! Telemetry overhead benchmark: instrumented hot path with the registry
//! enabled vs disabled at runtime.
//!
//! The telemetry layer stays on by default, so its cost on the densest
//! instrumented path — points-to analysis (three spans per body) plus
//! event-graph construction (one span, three counters per graph) plus one
//! serve-style sliding-window latency record per body — must be
//! negligible. This bench times the same workload with `set_enabled(true)`
//! and `set_enabled(false)`, interleaving the two arms across trials so
//! frequency scaling and cache warmth hit both equally, and **asserts** the
//! enabled/disabled ratio stays under [`MAX_OVERHEAD`].
//!
//! Pass `--smoke` for a quick CI-sized run; `USPEC_BENCH_FILES` scales the
//! corpus for full runs. Writes `BENCH_telemetry.json` at the repo root.

use std::time::Instant;

use uspec_corpus::{generate_corpus, java_library, GenOptions};
use uspec_graph::{build_event_graph, GraphOptions};
use uspec_lang::lower::{lower_program, LowerOptions};
use uspec_lang::mir::Body;
use uspec_lang::parser::parse;
use uspec_pta::{Pta, PtaOptions, SpecDb};

/// Maximum tolerated enabled/disabled wall-time ratio. The acceptance bar
/// is < 3%; the slack above the typical sub-1% measurement absorbs shared-
/// machine noise without letting a real regression through.
const MAX_OVERHEAD: f64 = 1.03;

/// Min-of-N trials per arm; more trials than the throughput benches because
/// the assertion is on a ratio of two measurements.
const TRIALS: usize = 7;

fn workload(bodies: &[Body], specs: &SpecDb, reps: usize) -> usize {
    let popts = PtaOptions::default();
    let gopts = GraphOptions::default();
    // An armed sliding window in the loop keeps the serve-style per-request
    // path (slot rotation + histogram bucketing) inside the measured
    // overhead, not just spans and counters. The fake clock is derived
    // from the sink so the window actually rotates across slots.
    let win = uspec_telemetry::window!("bench.telemetry");
    let mut sink = 0usize;
    for _ in 0..reps {
        for body in bodies {
            let pta = Pta::run(body, specs, &popts);
            let graph = build_event_graph(body, &pta, &gopts);
            sink += pta.heap.len() + graph.num_events();
            win.record(sink as u64 * 7, (sink & 0xfff) as u64, false);
        }
    }
    sink
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (num_files, reps) = if smoke {
        (32, 2)
    } else {
        let files = std::env::var("USPEC_BENCH_FILES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        (files, 4)
    };

    let lib = java_library();
    let table = lib.api_table();
    let files = generate_corpus(
        &lib,
        &GenOptions {
            num_files,
            seed: 23,
            ..GenOptions::default()
        },
    );
    let bodies: Vec<Body> = files
        .iter()
        .flat_map(|f| {
            let program = parse(&f.source).expect("parses");
            lower_program(&program, &table, &LowerOptions::default()).expect("lowers")
        })
        .collect();
    let specs = SpecDb::empty();

    // Warm up both arms once (first-touch registration of every span and
    // counter happens here, outside the timed region).
    uspec_telemetry::set_enabled(true);
    std::hint::black_box(workload(&bodies, &specs, 1));
    uspec_telemetry::set_enabled(false);
    std::hint::black_box(workload(&bodies, &specs, 1));

    let mut on_secs = f64::INFINITY;
    let mut off_secs = f64::INFINITY;
    let mut sink = 0usize;
    for _ in 0..TRIALS {
        uspec_telemetry::set_enabled(false);
        let start = Instant::now();
        sink += workload(&bodies, &specs, reps);
        off_secs = off_secs.min(start.elapsed().as_secs_f64());

        uspec_telemetry::set_enabled(true);
        let start = Instant::now();
        sink += workload(&bodies, &specs, reps);
        on_secs = on_secs.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(sink);
    // Leave the process-global switch the way the rest of the suite
    // expects it.
    uspec_telemetry::set_enabled(true);

    let overhead = on_secs / off_secs.max(1e-9);
    let analyzed = (bodies.len() * reps) as f64;
    uspec_bench::print_table(
        "telemetry overhead: registry enabled vs disabled (bodies/sec)",
        &["arm", "bodies/sec", "seconds"],
        &[
            vec![
                "disabled".to_owned(),
                format!("{:.0}", analyzed / off_secs.max(1e-9)),
                format!("{off_secs:.4}"),
            ],
            vec![
                "enabled".to_owned(),
                format!("{:.0}", analyzed / on_secs.max(1e-9)),
                format!("{on_secs:.4}"),
            ],
        ],
    );
    println!(
        "  bodies: {}  reps: {reps}  trials: {TRIALS}  overhead: {:.2}% (budget {:.0}%)",
        bodies.len(),
        (overhead - 1.0) * 100.0,
        (MAX_OVERHEAD - 1.0) * 100.0
    );

    let envelope = uspec_bench::bench_envelope("perf_telemetry", smoke);
    let json = format!(
        "{{\n{envelope}  \"files\": {num_files},\n  \"bodies\": {},\n  \"reps\": {reps},\n  \"trials\": {TRIALS},\n  \"enabled_seconds\": {on_secs:.6},\n  \"disabled_seconds\": {off_secs:.6},\n  \"overhead_ratio\": {overhead:.4},\n  \"max_overhead_ratio\": {MAX_OVERHEAD}\n}}\n",
        bodies.len()
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_telemetry.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("  wrote {}", out.display()),
        Err(e) => eprintln!("  could not write {}: {e}", out.display()),
    }

    assert!(
        overhead < MAX_OVERHEAD,
        "telemetry overhead {overhead:.4} exceeds budget {MAX_OVERHEAD} \
         (enabled {on_secs:.4}s vs disabled {off_secs:.4}s)"
    );
}
