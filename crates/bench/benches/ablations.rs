//! Ablations called out in §7.1 and DESIGN.md:
//!
//! 1. **Intraprocedural initial analysis** (inlining depth 0) vs. the
//!    default context-sensitive interprocedural lowering — the paper
//!    observed "only a slight performance decline" with the less precise
//!    analysis.
//! 2. **Receiver-distance bound** in candidate extraction (default 10) —
//!    the paper observed no negative effect from bounding.
//! 3. **Full (bidirectional) event contexts** — the naive reading of §4.1;
//!    shows why censoring/directional contexts matter (the model otherwise
//!    latches onto transitive-closure paths and mis-scores induced edges).

use uspec::{precision_recall, PipelineOptions};
use uspec_bench::{f3, print_table, standard_run_with, BenchUniverse};
use uspec_lang::LowerOptions;

fn pr_at(ctx: &uspec_bench::BenchCtx, tau: f64) -> (f64, f64, usize) {
    let pts = precision_recall(&ctx.result.learned, |s| ctx.lib.is_true_spec(s), &[tau]);
    (pts[0].precision, pts[0].recall, ctx.result.learned.len())
}

/// Candidate ranking quality: probability that a uniformly chosen (valid,
/// invalid) candidate pair is ordered correctly by score (AUC).
fn auc(ctx: &uspec_bench::BenchCtx) -> f64 {
    let labeled: Vec<(f64, bool)> = ctx
        .result
        .learned
        .scored
        .iter()
        .map(|s| (s.score, ctx.lib.is_true_spec(&s.spec)))
        .collect();
    let (mut pairs, mut correct) = (0.0f64, 0.0f64);
    for (sp, lp) in labeled.iter().filter(|(_, l)| *l) {
        for (sn, ln) in labeled.iter().filter(|(_, l)| !*l) {
            let _ = (lp, ln);
            pairs += 1.0;
            if sp > sn {
                correct += 1.0;
            } else if (sp - sn).abs() < 1e-12 {
                correct += 0.5;
            }
        }
    }
    if pairs == 0.0 {
        1.0
    } else {
        correct / pairs
    }
}

/// Mean score of valid candidates minus mean score of invalid ones.
fn separation(ctx: &uspec_bench::BenchCtx) -> f64 {
    let mut sums = [0.0f64; 2];
    let mut counts = [0usize; 2];
    for s in &ctx.result.learned.scored {
        let idx = usize::from(ctx.lib.is_true_spec(&s.spec));
        sums[idx] += s.score;
        counts[idx] += 1;
    }
    sums[1] / counts[1].max(1) as f64 - sums[0] / counts[0].max(1) as f64
}

#[allow(clippy::field_reassign_with_default)]
fn main() {
    let universe = BenchUniverse::Java;
    let tau = 0.6;
    let mut rows = Vec::new();

    let mut add = |name: &str, opts: PipelineOptions| {
        let ctx = standard_run_with(universe, 42, opts);
        let (p, r, n) = pr_at(&ctx, tau);
        rows.push(vec![
            name.to_string(),
            f3(p),
            f3(r),
            f3(auc(&ctx)),
            f3(separation(&ctx)),
            n.to_string(),
        ]);
    };

    add(
        "default (interproc depth 2, dist 10)",
        PipelineOptions::default(),
    );

    let mut intra = PipelineOptions::default();
    intra.lower = LowerOptions { inline_depth: 0 };
    add("intraprocedural initial analysis (§7.1)", intra);

    let mut fi = PipelineOptions::default();
    fi.pta.flow_sensitive = false;
    add("flow-insensitive initial analysis", fi);

    let mut d1 = PipelineOptions::default();
    d1.extract.max_receiver_distance = 3;
    add("distance bound 3", d1);

    let mut d2 = PipelineOptions::default();
    d2.extract.max_receiver_distance = 100;
    add("distance bound 100", d2);

    let mut strict = PipelineOptions::default();
    strict.extract.max_induced_edges = 1;
    add("strict single-induced-edge (Alg. 1 literal)", strict);

    let mut k1 = PipelineOptions::default();
    k1.train.context_depth = 1;
    add("context depth k=1 (anchors only)", k1);

    let mut k3 = PipelineOptions::default();
    k3.train.context_depth = 3;
    add("context depth k=3", k3);

    let mut full = PipelineOptions::default();
    full.train.full_contexts = true;
    add("full bidirectional contexts", full);

    let mut uncensored = PipelineOptions::default();
    uncensored.train.full_contexts = true;
    uncensored.train.censor_positive_paths = false;
    add("full contexts, no censoring (learns closure)", uncensored);

    print_table(
        &format!("§7.1 ablations (Java, τ = {tau})"),
        &[
            "configuration",
            "precision",
            "recall",
            "ranking AUC",
            "separation",
            "candidates",
        ],
        &rows,
    );
    println!(
        "  expected: intraprocedural ranks candidates worse (the §7.1 'slight\n  decline'); the distance bound is harmless; disabling the §4.2 censoring\n  costs ranking quality (the model partially learns the transitive closure).\n  Flow-insensitive ρ matches the default here because generated programs\n  are near-SSA (each value gets a fresh variable) — the mode's precision\n  difference on reused variables is covered by unit tests in uspec-pta."
    );
}
