//! Tab. 5 / Tab. 6 — number of selected specifications and spanned API
//! classes, grouped by Java package prefix (Tab. 5) and Python library
//! (Tab. 6), for the τ = 0.6 selection.
//!
//! Expected shape: java.util leads the Java table; containers dominate;
//! the Python table spans numpy/pandas/os/re/django/collections etc.

use std::collections::BTreeMap;
use uspec_bench::{print_table, standard_run, BenchUniverse};
use uspec_lang::Symbol;

fn main() {
    for universe in [BenchUniverse::Java, BenchUniverse::Python] {
        let ctx = standard_run(universe, 42);
        let tau = 0.6;
        let mut by_group: BTreeMap<Symbol, (usize, std::collections::BTreeSet<Symbol>)> =
            BTreeMap::new();
        for s in ctx.result.learned.selected(tau) {
            let class = s.spec.class();
            let group = ctx
                .lib
                .class(class)
                .map(|c| c.group)
                .unwrap_or_else(|| Symbol::intern("<other>"));
            let entry = by_group.entry(group).or_default();
            entry.0 += 1;
            entry.1.insert(class);
        }
        let mut rows: Vec<(Symbol, usize, usize)> = by_group
            .into_iter()
            .map(|(g, (n, cs))| (g, n, cs.len()))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let table: Vec<Vec<String>> = rows
            .iter()
            .take(12)
            .map(|(g, n, c)| vec![g.to_string(), n.to_string(), c.to_string()])
            .collect();
        let (title, col) = match universe {
            BenchUniverse::Java => (
                "Tab. 5: selected Java specifications by package prefix",
                "Java package prefix",
            ),
            BenchUniverse::Python => (
                "Tab. 6: selected Python specifications by library",
                "Python library",
            ),
        };
        print_table(
            &format!("{title} (τ = {tau})"),
            &[col, "Specifications", "API classes"],
            &table,
        );
        let total: usize = rows.iter().map(|r| r.1).sum();
        let classes: usize = rows.iter().map(|r| r.2).sum();
        println!("  total: {total} specifications across {classes} classes");
    }
}
