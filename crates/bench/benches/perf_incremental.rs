//! Incremental-rebuild benchmark: single-file edit vs full cold run.
//!
//! The job graph's acceptance bar: after editing ONE file of a large
//! corpus, a warm `run_pipeline_cached` must re-execute only that file's
//! analysis cone (plus the model fold and the cheap re-scoring it
//! implies), and come in at least [`MIN_EDIT_SPEEDUP`]× faster than
//! analyzing the whole corpus from scratch. This bench measures three
//! arms over the same corpus:
//!
//! * **cold** — empty store, everything executes and is written;
//! * **warm** — unchanged corpus, every durable job replays;
//! * **edit** — one file's body is changed between runs; its per-file
//!   jobs and the model re-execute, everything else replays.
//!
//! All arms must produce byte-identical learned specs for their corpus
//! (the edit arm is checked against an uncached run of the *edited*
//! corpus). Pass `--smoke` for a quick CI-sized run; `USPEC_BENCH_FILES`
//! scales full runs. Writes `BENCH_incremental.json` at the repo root.

use std::time::Instant;

use uspec::{run_pipeline_cached, PipelineOptions};
use uspec_corpus::{java_library, SliceSource};
use uspec_store::ArtifactStore;

/// Minimum tolerated cold / single-file-edit wall-time ratio.
const MIN_EDIT_SPEEDUP: f64 = 10.0;

/// Min-of-N trials per arm.
const TRIALS: usize = 5;

fn timed_run(
    sources: &[(String, String)],
    opts: &PipelineOptions,
    store: Option<&ArtifactStore>,
) -> (f64, String) {
    let lib = java_library();
    let start = Instant::now();
    let result = run_pipeline_cached(&SliceSource::new(sources), &lib.api_table(), opts, store);
    let secs = start.elapsed().as_secs_f64();
    let specs = serde_json::to_string(&result.learned).expect("specs serialize");
    (secs, specs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let num_files = if smoke {
        96
    } else {
        std::env::var("USPEC_BENCH_FILES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(512)
    };

    let lib = java_library();
    let sources = uspec_bench::corpus_sources(&lib, num_files, 31);
    // The edited corpus: append a comment-free no-op statement to one
    // mid-corpus file so its content fingerprint (and only its) changes.
    let mut edited = sources.clone();
    let victim = edited.len() / 2;
    edited[victim]
        .1
        .push_str("\nfn edited9999() { s0 = \"edited\"; }\n");
    let opts = PipelineOptions {
        shard_size: 64,
        ..PipelineOptions::default()
    };
    let dir = std::env::temp_dir().join(format!("uspec-perf-incr-{}", std::process::id()));

    let mut cold_secs = f64::INFINITY;
    let mut warm_secs = f64::INFINITY;
    let mut edit_secs = f64::INFINITY;
    let (_, reference) = timed_run(&sources, &opts, None);
    let (_, reference_edited) = timed_run(&edited, &opts, None);
    for _ in 0..TRIALS {
        // Cold: a fresh store populated from scratch.
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).expect("store opens");
        let (secs, specs) = timed_run(&sources, &opts, Some(&store));
        cold_secs = cold_secs.min(secs);
        assert_eq!(reference, specs, "cold differs from uncached");

        // Warm: nothing changed, every durable job replays.
        let (secs, specs) = timed_run(&sources, &opts, Some(&store));
        warm_secs = warm_secs.min(secs);
        assert_eq!(reference, specs, "warm differs from uncached");

        // Edit: one file changed — only its cone re-executes.
        let (secs, specs) = timed_run(&edited, &opts, Some(&store));
        edit_secs = edit_secs.min(secs);
        assert_eq!(
            reference_edited, specs,
            "edit rerun differs from an uncached run of the edited corpus"
        );
    }
    let bytes = ArtifactStore::open(&dir)
        .and_then(|s| s.stats())
        .map(|s| s.bytes)
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);

    let warm_speedup = cold_secs / warm_secs.max(1e-9);
    let edit_speedup = cold_secs / edit_secs.max(1e-9);
    let per_arm = |secs: f64| {
        vec![
            format!("{:.0}", num_files as f64 / secs.max(1e-9)),
            format!("{secs:.4}"),
        ]
    };
    uspec_bench::print_table(
        "incremental job graph: full cold vs warm vs single-file edit",
        &["arm", "files/sec", "seconds"],
        &[
            [vec!["cold".to_owned()], per_arm(cold_secs)].concat(),
            [vec!["warm (no edit)".to_owned()], per_arm(warm_secs)].concat(),
            [vec!["warm (1 edit)".to_owned()], per_arm(edit_secs)].concat(),
        ],
    );
    println!(
        "  files: {num_files}  trials: {TRIALS}  cache: {bytes} bytes  \
         edit speedup: {edit_speedup:.1}x (floor {MIN_EDIT_SPEEDUP:.0}x)  \
         warm speedup: {warm_speedup:.1}x"
    );

    let envelope = uspec_bench::bench_envelope("perf_incremental", smoke);
    let json = format!(
        "{{\n{envelope}  \"files\": {num_files},\n  \"trials\": {TRIALS},\n  \"cold_seconds\": {cold_secs:.6},\n  \"warm_seconds\": {warm_secs:.6},\n  \"edit_seconds\": {edit_secs:.6},\n  \"warm_speedup\": {warm_speedup:.4},\n  \"edit_speedup\": {edit_speedup:.4},\n  \"min_edit_speedup\": {MIN_EDIT_SPEEDUP},\n  \"cache_bytes\": {bytes},\n  \"specs_identical\": true\n}}\n"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_incremental.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("  wrote {}", out.display()),
        Err(e) => eprintln!("  could not write {}: {e}", out.display()),
    }

    // The smoke corpus is too small for the floor to be meaningful (fixed
    // per-run costs dominate); assert it only on full-sized runs.
    if !smoke {
        assert!(
            edit_speedup >= MIN_EDIT_SPEEDUP,
            "single-file-edit speedup {edit_speedup:.2}x below the \
             {MIN_EDIT_SPEEDUP:.0}x floor (cold {cold_secs:.4}s vs edit \
             {edit_secs:.4}s)"
        );
    }
}
