//! Sensitivity analysis beyond the paper's tables: how the learned
//! specification quality depends on corpus size and corpus noise.
//!
//! The paper trains once on a fixed GitHub snapshot; with a generator we
//! can ask the questions reviewers usually do:
//!
//! * **Learning curve** — how many files does USpec need before the τ = 0.6
//!   selection stabilizes? Expected: precision is high even for small
//!   corpora (the model only has to beat the structural matcher), while
//!   recall climbs with corpus size as rarer APIs accumulate matches.
//! * **Noise robustness** — increasing the rate of non-aliasing usage
//!   (mismatched keys) and unrelated-call noise should degrade recall
//!   gracefully, not collapse precision: mismatched retrievals don't match
//!   the patterns in the first place (C4), so they dilute rather than
//!   poison the evidence.

use uspec::{precision_recall, run_pipeline, PipelineOptions};
use uspec_bench::{f3, print_table, BenchUniverse};
use uspec_corpus::{generate_corpus, java_library, python_library, GenOptions};

fn run_with(universe: BenchUniverse, gen_opts: &GenOptions) -> (f64, f64, usize) {
    let lib = match universe {
        BenchUniverse::Java => java_library(),
        BenchUniverse::Python => python_library(),
    };
    let sources: Vec<(String, String)> = generate_corpus(&lib, gen_opts)
        .into_iter()
        .map(|f| (f.name, f.source))
        .collect();
    let result = run_pipeline(&sources, &lib.api_table(), &PipelineOptions::default());
    let p = precision_recall(&result.learned, |s| lib.is_true_spec(s), &[0.6]);
    (p[0].precision, p[0].recall, result.learned.len())
}

fn main() {
    // ---- Learning curve -------------------------------------------------
    let mut rows = Vec::new();
    for files in [100usize, 250, 500, 1000, 2000, 4000] {
        let (p, r, n) = run_with(
            BenchUniverse::Java,
            &GenOptions {
                num_files: files,
                seed: 42,
                ..GenOptions::default()
            },
        );
        rows.push(vec![files.to_string(), f3(p), f3(r), n.to_string()]);
    }
    print_table(
        "Learning curve (Java, τ = 0.6)",
        &["files", "precision", "recall", "candidates"],
        &rows,
    );

    // ---- Noise robustness ------------------------------------------------
    let mut rows = Vec::new();
    for (mismatch, noise) in [(0.0, 0.5), (0.25, 1.5), (0.5, 3.0), (0.75, 6.0)] {
        let (p, r, n) = run_with(
            BenchUniverse::Java,
            &GenOptions {
                num_files: 2000,
                seed: 42,
                mismatch_prob: mismatch,
                noise_weight: noise,
                ..GenOptions::default()
            },
        );
        rows.push(vec![
            format!("{mismatch:.2}"),
            format!("{noise:.1}"),
            f3(p),
            f3(r),
            n.to_string(),
        ]);
    }
    print_table(
        "Noise robustness (Java, 2000 files, τ = 0.6)",
        &[
            "mismatch rate",
            "noise weight",
            "precision",
            "recall",
            "candidates",
        ],
        &rows,
    );
    println!("  expected: recall degrades gracefully with noise; precision holds.");
}
