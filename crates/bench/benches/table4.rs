//! Tab. 4 — comparison of the spec-augmented API-aware may-alias analysis
//! against the API-unaware baseline, over freshly sampled files.
//!
//! Every call site where the two analyses give different aliasing
//! information is classified as: (i) increased points-to coverage while
//! precise, (ii) less precise because of a wrong specification, (iii) less
//! precise due to the §6.4 coverage-increasing ⊤/⊥ approach, or (iv) less
//! precise for other reasons.
//!
//! Expected shape: > 80% of differing sites are precise coverage increases;
//! wrong-spec imprecision is the rarest category (the paper: once per
//! ~6900 Java lines); the §6.4 category sits in between.

use uspec::{compare_on_corpus, DiffCategory};
use uspec_bench::{corpus_sources, print_table, standard_run, BenchUniverse};
use uspec_pta::SpecDb;

fn main() {
    for universe in [BenchUniverse::Java, BenchUniverse::Python] {
        let ctx = standard_run(universe, 42);
        let learned = ctx.result.select(0.6);
        let truth = SpecDb::from_specs(ctx.lib.true_specs());
        // Fresh evaluation sample, as §7.3 samples 1000 files per language.
        let eval = corpus_sources(&ctx.lib, 1000, 31_337);
        let report = compare_on_corpus(&eval, &ctx.lib.api_table(), &learned, &truth, &ctx.opts);
        let counts = report.counts();
        let n = |c: DiffCategory| counts.get(&c).copied().unwrap_or(0);
        let total = report.diffs.len().max(1);
        let rate = |c: DiffCategory| match report.loc_rate(c) {
            Some(r) => format!("≈ 1 per {r} loc"),
            None => "-".into(),
        };
        let row = |label: &str, c: DiffCategory| {
            vec![
                label.to_string(),
                n(c).to_string(),
                format!("{:.1}%", 100.0 * n(c) as f64 / total as f64),
                rate(c),
            ]
        };
        print_table(
            &format!(
                "Tab. 4 ({universe:?}): {} differing call sites over {} files / {} loc ({} sites examined)",
                report.diffs.len(),
                eval.len(),
                report.total_loc,
                report.sites_examined
            ),
            &["category", "sites", "fraction", "frequency"],
            &[
                row("increased coverage, precise", DiffCategory::PreciseCoverage),
                row("less precise: wrong specification", DiffCategory::WrongSpec),
                row("less precise: coverage approach §6.4", DiffCategory::CoverageApproach),
                row("less precise: other", DiffCategory::Other),
            ],
        );
    }
}
