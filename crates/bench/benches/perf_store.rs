//! Artifact-store benchmark: cold vs warm pipeline runs.
//!
//! A warm run replays cached per-shard analysis and extraction payloads
//! instead of re-running the frontend, points-to analysis, and graph
//! construction — only SGD training and candidate scoring stay live. This
//! bench measures the end-to-end `run_pipeline_cached` wall time over the
//! same corpus with an empty cache (cold), a populated cache (warm), and
//! no cache at all (baseline), asserts the learned specs are byte-identical
//! across all three, and **asserts** warm is at least [`MIN_SPEEDUP`]×
//! faster than cold.
//!
//! Pass `--smoke` for a quick CI-sized run; `USPEC_BENCH_FILES` scales the
//! corpus for full runs. Writes `BENCH_store.json` at the repo root.

use std::time::Instant;

use uspec::{run_pipeline_cached, PipelineOptions};
use uspec_corpus::{java_library, SliceSource};
use uspec_store::ArtifactStore;

/// Minimum tolerated cold/warm wall-time ratio — the acceptance bar for
/// the cache actually skipping the expensive stages.
const MIN_SPEEDUP: f64 = 3.0;

/// Min-of-N trials per arm.
const TRIALS: usize = 5;

fn timed_run(
    sources: &[(String, String)],
    opts: &PipelineOptions,
    store: Option<&ArtifactStore>,
) -> (f64, String) {
    let lib = java_library();
    let start = Instant::now();
    let result = run_pipeline_cached(&SliceSource::new(sources), &lib.api_table(), opts, store);
    let secs = start.elapsed().as_secs_f64();
    let specs = serde_json::to_string(&result.learned).expect("specs serialize");
    (secs, specs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let num_files = if smoke {
        96
    } else {
        std::env::var("USPEC_BENCH_FILES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(512)
    };

    let lib = java_library();
    let sources = uspec_bench::corpus_sources(&lib, num_files, 31);
    let opts = PipelineOptions {
        shard_size: 64,
        ..PipelineOptions::default()
    };
    let dir = std::env::temp_dir().join(format!("uspec-perf-store-{}", std::process::id()));

    let mut baseline_secs = f64::INFINITY;
    let mut cold_secs = f64::INFINITY;
    let mut warm_secs = f64::INFINITY;
    let mut reference: Option<String> = None;
    for _ in 0..TRIALS {
        let (secs, specs) = timed_run(&sources, &opts, None);
        baseline_secs = baseline_secs.min(secs);
        match &reference {
            None => reference = Some(specs),
            Some(r) => assert_eq!(r, &specs, "uncached runs disagree"),
        }

        // Cold: a fresh store populated from scratch.
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).expect("store opens");
        let (secs, specs) = timed_run(&sources, &opts, Some(&store));
        cold_secs = cold_secs.min(secs);
        assert_eq!(reference.as_deref(), Some(specs.as_str()), "cold differs");

        // Warm: every shard of both passes replays from the store.
        let (secs, specs) = timed_run(&sources, &opts, Some(&store));
        warm_secs = warm_secs.min(secs);
        assert_eq!(reference.as_deref(), Some(specs.as_str()), "warm differs");
    }
    let bytes = ArtifactStore::open(&dir)
        .and_then(|s| s.stats())
        .map(|s| s.bytes)
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);

    let speedup = cold_secs / warm_secs.max(1e-9);
    let write_overhead = cold_secs / baseline_secs.max(1e-9);
    let per_arm = |secs: f64| {
        vec![
            format!("{:.0}", num_files as f64 / secs.max(1e-9)),
            format!("{secs:.4}"),
        ]
    };
    uspec_bench::print_table(
        "artifact store: cold vs warm pipeline runs (files/sec)",
        &["arm", "files/sec", "seconds"],
        &[
            [vec!["no cache".to_owned()], per_arm(baseline_secs)].concat(),
            [vec!["cold".to_owned()], per_arm(cold_secs)].concat(),
            [vec!["warm".to_owned()], per_arm(warm_secs)].concat(),
        ],
    );
    println!(
        "  files: {num_files}  trials: {TRIALS}  cache: {bytes} bytes  \
         warm speedup: {speedup:.1}x (floor {MIN_SPEEDUP:.0}x)  \
         cold write overhead: {:.1}%",
        (write_overhead - 1.0) * 100.0
    );

    let envelope = uspec_bench::bench_envelope("perf_store", smoke);
    let json = format!(
        "{{\n{envelope}  \"files\": {num_files},\n  \"trials\": {TRIALS},\n  \"baseline_seconds\": {baseline_secs:.6},\n  \"cold_seconds\": {cold_secs:.6},\n  \"warm_seconds\": {warm_secs:.6},\n  \"warm_speedup\": {speedup:.4},\n  \"min_warm_speedup\": {MIN_SPEEDUP},\n  \"cache_bytes\": {bytes},\n  \"specs_identical\": true\n}}\n"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_store.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("  wrote {}", out.display()),
        Err(e) => eprintln!("  could not write {}: {e}", out.display()),
    }

    assert!(
        speedup >= MIN_SPEEDUP,
        "warm speedup {speedup:.2}x below the {MIN_SPEEDUP:.0}x floor \
         (cold {cold_secs:.4}s vs warm {warm_secs:.4}s)"
    );
}
