//! §7.5 — comparison against the Atlas baseline (Bastani et al., PLDI'18).
//!
//! Atlas synthesizes tests against the library and observes object flows;
//! USpec learns from static usage only. Expected shape, per the paper:
//!
//! * Atlas is sound for the std-collection classes its implementation is
//!   tuned for (HashMap, Hashtable, ArrayList) — but argument-insensitive;
//! * Atlas is *unsound* for `java.util.Properties` (misses the
//!   getProperty/setProperty flow);
//! * Atlas produces nothing for factory-only classes (ResultSet, KeyStore,
//!   NodeList);
//! * USpec learns argument-sensitive specifications for all of these.

use uspec_atlas::{evaluate, run_atlas, AtlasOptions, ClassStatus};
use uspec_bench::{print_table, standard_run, BenchUniverse};
use uspec_lang::Symbol;

fn main() {
    let ctx = standard_run(BenchUniverse::Java, 42);
    let learned = ctx.result.select(0.6);
    let results = run_atlas(&ctx.lib, &AtlasOptions::default());
    let evals = evaluate(&ctx.lib, &results);

    let showcase = [
        "java.util.HashMap",
        "java.util.Hashtable",
        "java.util.ArrayList",
        "java.util.Properties",
        "android.util.SparseArray",
        "org.json.JSONObject",
        "java.sql.ResultSet",
        "java.security.KeyStore",
        "org.w3c.dom.NodeList",
    ];

    let mut rows = Vec::new();
    for class in showcase {
        let sym = Symbol::intern(class);
        let e = evals
            .iter()
            .find(|e| e.class == sym)
            .expect("class evaluated");
        let atlas_status = match e.status {
            ClassStatus::NoConstructor => "no constructor → empty".to_string(),
            ClassStatus::Sound => format!("sound ({} flows, arg-insensitive)", e.found.len()),
            ClassStatus::Unsound => format!(
                "UNSOUND ({} found, {} true flows missed)",
                e.found.len(),
                e.missed.len()
            ),
            ClassStatus::TriviallyEmpty => "empty (no flows exist)".to_string(),
        };
        let uspec_specs: Vec<String> = learned
            .iter()
            .filter(|s| s.class() == sym && ctx.lib.is_true_spec(s))
            .map(|s| format!("{s:?}"))
            .collect();
        let uspec = if uspec_specs.is_empty() {
            "-".to_string()
        } else {
            format!("{} correct arg-sensitive specs", uspec_specs.len())
        };
        rows.push(vec![class.to_string(), atlas_status, uspec]);
    }
    print_table(
        "§7.5: Atlas (dynamic active learning) vs USpec (τ = 0.6)",
        &["API class", "Atlas", "USpec"],
        &rows,
    );

    let total_atlas_flows: usize = evals.iter().map(|e| e.found.len()).sum();
    println!(
        "\n  Atlas inferred {total_atlas_flows} flow specs across {} classes; none are RetSame/RetArg instantiations (no argument conditions).",
        evals
            .iter()
            .filter(|e| !e.found.is_empty())
            .count()
    );
    println!(
        "  USpec selected {} specifications, all argument-sensitive.",
        learned.len()
    );
}
