//! Model-independent pair blueprints: the enumeration half of Alg. 1.
//!
//! Candidate extraction factors into two stages with very different
//! inputs. *Enumeration* — walking `A_G`, matching the store/retrieve
//! patterns, collecting induced edges and their labeled featurizations —
//! depends only on a file's event graphs and the extraction options.
//! *Scoring* — applying ψ to each induced edge — additionally depends on
//! the trained model. Splitting them lets the incremental pipeline cache
//! blueprints per file and re-score them under a fresh model without
//! touching the event graphs at all, which is what makes a single-file
//! edit cheap: every unchanged file re-enters extraction as a decoded
//! blueprint, not a rebuilt graph.
//!
//! [`Extractor`](crate::Extractor) is reimplemented on top of this module
//! (enumerate, then score immediately), so live and cached extraction
//! share one enumeration and one scoring path by construction — there is
//! no second implementation to drift.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use uspec_graph::{EventGraph, EventId, Pos};
use uspec_model::{EdgeModel, LabeledToken};
use uspec_pta::Spec;

use crate::extract::{CandidateSet, ExtractOptions};
use crate::matching::{induced_edges, match_patterns, match_ret_recv, PatternMatch};
use crate::provenance::{EvidenceKey, EvidenceRecord, ProvenanceIndex};

/// Everything needed to score one induced edge later: the featurization
/// (position-pair key plus labeled tokens) and the provenance metadata of
/// the match it came from. File identity is *not* part of a blueprint —
/// the scorer stamps it on, so blueprints are content-addressed by file
/// bytes alone and survive renames and corpus reordering.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairBlueprint {
    /// The candidate specification this edge supports.
    pub spec: Spec,
    /// Position code of the edge's source event.
    pub x1: u8,
    /// Position code of the edge's destination event.
    pub x2: u8,
    /// Labeled tokens of the censored featurization, exactly what
    /// [`EdgeModel::explain_tokens`] consumes.
    pub tokens: Vec<LabeledToken>,
    /// Evidence key with `file` left 0; the scorer fills it in.
    pub key: EvidenceKey,
    /// Source line of the edge's source event.
    pub line_src: u32,
    /// Source line of the edge's destination event.
    pub line_dst: u32,
    /// Pattern kind name (`RetSame` / `RetArg` / `RetRecv`).
    pub kind: String,
    /// Rendering of the source event (`method@pos`).
    pub src_event: String,
    /// Rendering of the destination event (`method@pos`).
    pub dst_event: String,
}

/// The complete model-independent extraction state of one file: induced
/// edges in enumeration order plus the counters Alg. 1 accumulates before
/// any scoring happens.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FileBlueprints {
    /// Scorable induced edges, in `A_G` enumeration order.
    pub edges: Vec<PairBlueprint>,
    /// Per-candidate pattern-match counts, in `Spec` order. A pair list
    /// rather than a map: blueprints are durable cache payloads, and JSON
    /// objects require string keys while [`Spec`] is structured.
    pub match_counts: Vec<(Spec, usize)>,
    /// Matches skipped for inducing zero or too many edges.
    pub skipped_multi_edge: usize,
    /// Call-site pairs examined (|A_G| summed over the file's graphs).
    pub pairs_examined: usize,
}

/// Streaming blueprint builder: feed one file's event graphs in order,
/// then take the [`FileBlueprints`].
#[derive(Debug)]
pub struct BlueprintExtractor {
    opts: ExtractOptions,
    full_contexts: bool,
    context_depth: usize,
    counts: BTreeMap<Spec, usize>,
    out: FileBlueprints,
}

impl BlueprintExtractor {
    /// Creates a builder. `full_contexts` and `context_depth` must match
    /// the training options of whatever model will score the blueprints —
    /// they pin the featurization, which is captured here rather than at
    /// scoring time.
    pub fn new(opts: ExtractOptions, full_contexts: bool, context_depth: usize) -> Self {
        BlueprintExtractor {
            opts,
            full_contexts,
            context_depth,
            counts: BTreeMap::new(),
            out: FileBlueprints::default(),
        }
    }

    /// Processes one event graph (the enumeration half of Alg. 1's loop
    /// body).
    pub fn add_graph(&mut self, g: &EventGraph) {
        if self.opts.enable_ret_recv {
            let sites: Vec<_> = g.api_sites().map(|(s, _)| s).collect();
            for m in sites {
                if let Some(pm) = match_ret_recv(g, m) {
                    if !(self.opts.skip_unknown_class && pm.spec.class().as_str() == "?") {
                        self.record_match(g, pm);
                    }
                }
            }
        }
        // A_G: call-site pairs (m1, m2) whose receiver events are connected
        // by an edge ⟨m2,0⟩ → ⟨m1,0⟩ within the distance bound.
        for (m1, _info1) in g.api_sites() {
            let Some(recv1) = g.event_id(m1, Pos::Recv) else {
                continue;
            };
            for &p in g.parents(recv1) {
                let pe = g.event(p);
                if pe.pos != Pos::Recv {
                    continue;
                }
                let m2 = pe.site;
                if g.edge_distance(p, recv1)
                    .is_none_or(|d| d > self.opts.max_receiver_distance)
                {
                    continue;
                }
                self.out.pairs_examined += 1;
                for pm in match_patterns(g, m1, m2) {
                    if self.opts.skip_unknown_class && pm.spec.class().as_str() == "?" {
                        continue;
                    }
                    self.record_match(g, pm);
                }
            }
        }
    }

    /// Records one pattern match: counts it and captures blueprints for
    /// its induced edges (Alg. 1 line 6, with the small-cap relaxation).
    fn record_match(&mut self, g: &EventGraph, pm: PatternMatch) {
        *self.counts.entry(pm.spec).or_default() += 1;
        let edges = induced_edges(g, &pm);
        if edges.is_empty() || edges.len() > self.opts.max_induced_edges {
            self.out.skipped_multi_edge += 1;
            return;
        }
        for (e1, e2) in edges {
            self.out.edges.push(self.blueprint(g, &pm, e1, e2));
        }
    }

    /// Captures one induced edge: featurization plus provenance metadata.
    fn blueprint(
        &self,
        g: &EventGraph,
        pm: &PatternMatch,
        e1: EventId,
        e2: EventId,
    ) -> PairBlueprint {
        let f =
            uspec_model::featurize_labeled(g, e1, e2, true, self.full_contexts, self.context_depth);
        let desc = |e: EventId| {
            let ev = g.event(e);
            let (method, line) = g
                .site_info(ev.site)
                .map(|i| (i.method.qualified(), i.line))
                .unwrap_or_else(|| ("?".to_owned(), 0));
            (format!("{method}@{}", ev.pos), line)
        };
        let (src_event, line_src) = desc(e1);
        let (dst_event, line_dst) = desc(e2);
        let kind = match pm.spec {
            Spec::RetSame { .. } => "RetSame",
            Spec::RetArg { .. } => "RetArg",
            Spec::RetRecv { .. } => "RetRecv",
        };
        PairBlueprint {
            spec: pm.spec,
            x1: f.x1,
            x2: f.x2,
            tokens: f.tokens,
            key: EvidenceKey {
                file: 0,
                m1_node: pm.m1.node.0,
                m1_ctx: pm.m1.ctx.0,
                m2_node: pm.m2.node.0,
                m2_ctx: pm.m2.ctx.0,
                e1: e1.0,
                e2: e2.0,
            },
            line_src,
            line_dst,
            kind: kind.to_owned(),
            src_event,
            dst_event,
        }
    }

    /// Finishes enumeration.
    pub fn finish(self) -> FileBlueprints {
        let mut out = self.out;
        out.match_counts = self.counts.into_iter().collect();
        out
    }
}

/// Scores one file's blueprints under `model`, stamping `file_index` /
/// `file_name` onto the evidence, and merges the result into `set` and
/// `provenance`. Edge order — and therefore `Γ_S` order — is blueprint
/// order, which is `A_G` enumeration order.
pub fn score_blueprints_into(
    model: &EdgeModel,
    file_index: u64,
    file_name: &str,
    blueprints: &FileBlueprints,
    set: &mut CandidateSet,
    provenance: &mut ProvenanceIndex,
) {
    for &(spec, n) in &blueprints.match_counts {
        *set.match_counts.entry(spec).or_default() += n;
    }
    set.skipped_multi_edge += blueprints.skipped_multi_edge;
    set.pairs_examined += blueprints.pairs_examined;
    for bp in &blueprints.edges {
        match model.explain_tokens((bp.x1, bp.x2), &bp.tokens) {
            Some(exp) => {
                set.confidences.entry(bp.spec).or_default().push(exp.conf);
                let rec = EvidenceRecord {
                    key: EvidenceKey {
                        file: file_index,
                        ..bp.key
                    },
                    file: file_name.to_owned(),
                    line_src: bp.line_src,
                    line_dst: bp.line_dst,
                    kind: bp.kind.clone(),
                    src_event: bp.src_event.clone(),
                    dst_event: bp.dst_event.clone(),
                    conf: exp.conf,
                    margin: exp.margin,
                    bias: exp.bias,
                    contributions: exp.contributions,
                };
                provenance.record(bp.spec, rec);
            }
            None => set.skipped_no_model += 1,
        }
    }
}

/// Convenience wrapper: score a file's blueprints into fresh accumulators.
pub fn score_blueprints(
    model: &EdgeModel,
    file_index: u64,
    file_name: &str,
    blueprints: &FileBlueprints,
) -> (CandidateSet, ProvenanceIndex) {
    let mut set = CandidateSet::default();
    let mut provenance = ProvenanceIndex::default();
    score_blueprints_into(
        model,
        file_index,
        file_name,
        blueprints,
        &mut set,
        &mut provenance,
    );
    (set, provenance)
}
