//! Candidate scoring and specification selection (§5.2–5.4).

use serde::{Deserialize, Serialize};
use uspec_pta::{Spec, SpecDb};

use crate::extract::CandidateSet;

/// How `score(S)` is computed from the edge-confidence list `Γ_S`.
///
/// The paper's implementation uses the average of the `k = 10` highest
/// values; the alternatives are kept for the §7.2 scoring-function
/// ablation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScoreFn {
    /// Mean of the `k` highest confidences (fewer if `|Γ_S| < k`).
    TopKAvg(usize),
    /// The single highest confidence.
    Max,
    /// The `q`-quantile of the confidences (e.g. 0.95).
    Percentile(f64),
    /// Match-count based scoring (ignores the probabilistic model):
    /// `n / (n + c)` normalized into `[0, 1)`.
    MatchCount {
        /// Soft normalization constant `c`.
        soft: f64,
    },
}

impl Default for ScoreFn {
    fn default() -> ScoreFn {
        ScoreFn::TopKAvg(10)
    }
}

impl ScoreFn {
    /// Computes `score(S)` from `Γ_S` and the match count.
    pub fn score(&self, gamma: &[f32], matches: usize) -> f64 {
        match *self {
            ScoreFn::TopKAvg(k) => {
                if gamma.is_empty() {
                    return 0.0;
                }
                let mut sorted: Vec<f32> = gamma.to_vec();
                sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite confidences"));
                let k = k.max(1).min(sorted.len());
                sorted[..k].iter().map(|&v| v as f64).sum::<f64>() / k as f64
            }
            ScoreFn::Max => gamma.iter().copied().fold(0.0f32, f32::max) as f64,
            ScoreFn::Percentile(q) => {
                if gamma.is_empty() {
                    return 0.0;
                }
                let mut sorted: Vec<f32> = gamma.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite confidences"));
                let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
                sorted[idx] as f64
            }
            ScoreFn::MatchCount { soft } => {
                let n = matches as f64;
                n / (n + soft.max(1e-9))
            }
        }
    }
}

/// A candidate specification with its score and match count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScoredSpec {
    /// The candidate.
    pub spec: Spec,
    /// `score(S)` under the chosen scoring function.
    pub score: f64,
    /// Number of pattern matches in the corpus.
    pub matches: usize,
    /// Number of scored induced edges (`|Γ_S|`).
    pub scored_edges: usize,
}

/// The ranked outcome of the learning pipeline: all scored candidates,
/// ready for τ-thresholded selection (§5.3).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LearnedSpecs {
    /// Candidates sorted by descending score.
    pub scored: Vec<ScoredSpec>,
}

impl LearnedSpecs {
    /// Scores every candidate of an extraction.
    ///
    /// Following Alg. 1, a candidate only materializes through its `Γ_S`
    /// list: matches whose induced edges were never scored (zero or
    /// multiple induced edges at every match) do not produce a candidate.
    pub fn from_candidates(set: &CandidateSet, score_fn: ScoreFn) -> LearnedSpecs {
        let mut scored: Vec<ScoredSpec> = set
            .confidences
            .iter()
            .filter(|(_, gamma)| !gamma.is_empty())
            .map(|(&spec, gamma)| {
                let matches = set.match_counts.get(&spec).copied().unwrap_or(0);
                ScoredSpec {
                    spec,
                    score: score_fn.score(gamma, matches),
                    matches,
                    scored_edges: gamma.len(),
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then_with(|| a.spec.cmp(&b.spec))
        });
        LearnedSpecs { scored }
    }

    /// Candidates with `score(S) ≥ τ`.
    pub fn selected(&self, tau: f64) -> impl Iterator<Item = &ScoredSpec> {
        self.scored.iter().filter(move |s| s.score >= tau)
    }

    /// Builds the closed [`SpecDb`] of specifications selected at `τ`
    /// (§5.3 selection plus the §5.4 extension).
    pub fn select(&self, tau: f64) -> SpecDb {
        SpecDb::from_specs(self.selected(tau).map(|s| s.spec))
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.scored.len()
    }

    /// Whether there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.scored.is_empty()
    }

    /// Looks up one candidate's entry.
    pub fn get(&self, spec: &Spec) -> Option<&ScoredSpec> {
        self.scored.iter().find(|s| &s.spec == spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::MethodId;

    fn spec(i: u8) -> Spec {
        Spec::RetSame {
            method: MethodId::new("C", format!("m{i}").as_str(), 0),
        }
    }

    #[test]
    fn top_k_avg_uses_highest_values() {
        let f = ScoreFn::TopKAvg(3);
        let gamma = [0.1, 0.9, 0.8, 0.7, 0.2];
        let s = f.score(&gamma, 5);
        assert!((s - (0.9 + 0.8 + 0.7) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn top_k_avg_with_fewer_values_averages_all() {
        let f = ScoreFn::TopKAvg(10);
        assert!((f.score(&[0.4, 0.6], 2) - 0.5).abs() < 1e-6);
        assert_eq!(f.score(&[], 0), 0.0);
    }

    #[test]
    fn max_and_percentile() {
        let gamma = [0.1, 0.5, 0.9];
        assert!((ScoreFn::Max.score(&gamma, 3) - 0.9).abs() < 1e-6);
        assert!((ScoreFn::Percentile(0.5).score(&gamma, 3) - 0.5).abs() < 1e-6);
        assert!((ScoreFn::Percentile(1.0).score(&gamma, 3) - 0.9).abs() < 1e-6);
    }

    #[test]
    fn match_count_scoring_monotone() {
        let f = ScoreFn::MatchCount { soft: 20.0 };
        assert!(f.score(&[], 100) > f.score(&[], 10));
        assert!(f.score(&[], 1) < 0.1);
        assert!(f.score(&[], 10_000) > 0.99);
    }

    #[test]
    fn selection_thresholds() {
        let mut set = CandidateSet::default();
        set.match_counts.insert(spec(1), 5);
        set.confidences.insert(spec(1), vec![0.9, 0.95]);
        set.match_counts.insert(spec(2), 5);
        set.confidences.insert(spec(2), vec![0.2, 0.3]);
        let learned = LearnedSpecs::from_candidates(&set, ScoreFn::default());
        assert_eq!(learned.len(), 2);
        assert_eq!(learned.scored[0].spec, spec(1), "sorted by score");
        assert_eq!(learned.selected(0.6).count(), 1);
        assert_eq!(learned.selected(0.0).count(), 2);
        let db = learned.select(0.6);
        assert!(db.contains(&spec(1)));
        assert!(!db.contains(&spec(2)));
    }

    #[test]
    fn unscored_matches_do_not_materialize() {
        // Alg. 1 only yields candidates through their Γ_S lists; a match
        // whose induced edges were never scored produces no candidate.
        let mut set = CandidateSet::default();
        set.match_counts.insert(spec(3), 7);
        let learned = LearnedSpecs::from_candidates(&set, ScoreFn::default());
        assert!(learned.get(&spec(3)).is_none());
        assert!(learned.is_empty());
    }
}
