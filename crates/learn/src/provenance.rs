//! Provenance: tracing a candidate specification's score back to the
//! corpus evidence that produced it.
//!
//! Every confidence in a candidate's `Γ_S` list comes from the model
//! scoring one *induced edge* of one pattern match in one file. This
//! module records, per candidate spec, the strongest such pieces of
//! evidence — source file and line of both call sites, the inducing
//! pattern, and the model's per-feature logit contributions — in a
//! deterministic, capped structure.
//!
//! ## Determinism
//!
//! Evidence is ranked by descending `|margin|` (the logit magnitude, i.e.
//! how opinionated the model was), with the stable [`EvidenceKey`] as the
//! tie-break. Insertion keeps only the current top [`EVIDENCE_CAP`]
//! records and [`ProvenanceIndex::merge`] re-ranks concatenated lists
//! under the same total order, so the retained set equals the global
//! top-k over all evidence regardless of how the corpus was chunked into
//! shards — the same argument that makes `Γ_S` lists shard-invariant.
//! Overflow is counted, never silent: `total` is the number of scored
//! edges including the ones the cap dropped.

use serde::{Deserialize, Serialize};
use uspec_pta::Spec;

/// Maximum retained evidence records per candidate spec.
pub const EVIDENCE_CAP: usize = 8;

/// Stable identity of one piece of evidence: the corpus file index plus
/// the matched call-site pair and induced-edge events inside that file's
/// event graph. All components are invariant across shard layouts (file
/// indices are corpus-stable, event ids are per-file deterministic), so
/// ordering by key is reproducible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EvidenceKey {
    /// Corpus-stable index of the file.
    pub file: u64,
    /// AST node of the later (reading) call site `m1`.
    pub m1_node: u32,
    /// Calling context of `m1`.
    pub m1_ctx: u32,
    /// AST node of the earlier (writing) call site `m2`.
    pub m2_node: u32,
    /// Calling context of `m2`.
    pub m2_ctx: u32,
    /// Source event of the induced edge.
    pub e1: u32,
    /// Destination event of the induced edge.
    pub e2: u32,
}

/// One scored induced edge: where it came from and how the model judged
/// it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvidenceRecord {
    /// Stable identity (also the ranking tie-break).
    pub key: EvidenceKey,
    /// Source file name.
    pub file: String,
    /// 1-based line of the edge's source event's call site (0 = unknown).
    pub line_src: u32,
    /// 1-based line of the edge's destination event's call site.
    pub line_dst: u32,
    /// Inducing pattern kind: `RetArg`, `RetSame`, or `RetRecv`.
    pub kind: String,
    /// Human-readable source event, e.g. `HashMap.put/2@2`.
    pub src_event: String,
    /// Human-readable destination event, e.g. `HashMap.get/1@ret`.
    pub dst_event: String,
    /// Model confidence ϕ for the edge (an entry of `Γ_S`).
    pub conf: f32,
    /// Raw logit behind `conf`.
    pub margin: f32,
    /// Intercept of the ψ model that scored the edge.
    pub bias: f32,
    /// Per-feature logit contributions, sorted by descending |weight|.
    pub contributions: Vec<(String, f32)>,
}

/// Ranking order: |margin| descending, then [`EvidenceKey`] ascending.
/// Total on finite margins, which SGD-trained models always produce.
fn rank(a: &EvidenceRecord, b: &EvidenceRecord) -> std::cmp::Ordering {
    b.margin
        .abs()
        .partial_cmp(&a.margin.abs())
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.key.cmp(&b.key))
}

/// What happens to a spec's score when its top evidence is removed from
/// `Γ_S` — the "score would flip if …" counterfactual.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Counterfactual {
    /// The confidence that was dropped (the top evidence's `conf`).
    pub dropped_conf: f32,
    /// Score with the full `Γ_S`.
    pub score: f64,
    /// Score after dropping one occurrence of `dropped_conf`.
    pub score_without: f64,
}

/// Capped evidence for one candidate spec.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SpecProvenance {
    /// Top-[`EVIDENCE_CAP`] records under [`rank`], strongest first.
    pub evidence: Vec<EvidenceRecord>,
    /// Total scored edges for the spec, including capped-out ones.
    pub total: u64,
    /// Attached after all shards merge; see
    /// [`ProvenanceIndex::attach_counterfactuals`].
    pub counterfactual: Option<Counterfactual>,
}

impl SpecProvenance {
    /// Number of records the cap dropped.
    pub fn overflow(&self) -> u64 {
        self.total.saturating_sub(self.evidence.len() as u64)
    }

    fn insert(&mut self, rec: EvidenceRecord) {
        self.total += 1;
        let pos = self
            .evidence
            .iter()
            .position(|e| rank(&rec, e) == std::cmp::Ordering::Less)
            .unwrap_or(self.evidence.len());
        if pos < EVIDENCE_CAP {
            self.evidence.insert(pos, rec);
            self.evidence.truncate(EVIDENCE_CAP);
        }
    }
}

/// Per-spec provenance for a whole candidate set. Deterministic: iteration
/// and serialization order is the `Spec` order, evidence order is
/// [`rank`].
#[derive(Clone, Debug, Default)]
pub struct ProvenanceIndex {
    specs: std::collections::BTreeMap<Spec, SpecProvenance>,
}

impl ProvenanceIndex {
    /// Records one scored induced edge for `spec`.
    pub fn record(&mut self, spec: Spec, rec: EvidenceRecord) {
        self.specs.entry(spec).or_default().insert(rec);
    }

    /// Merges another index (e.g. from a parallel chunk or a cached
    /// shard). Re-ranking the concatenation under the same total order
    /// keeps the result identical to a single-pass build over the union.
    pub fn merge(&mut self, other: ProvenanceIndex) {
        for (spec, sp) in other.specs {
            let slot = self.specs.entry(spec).or_default();
            slot.evidence.extend(sp.evidence);
            slot.evidence.sort_by(rank);
            slot.evidence.truncate(EVIDENCE_CAP);
            slot.total += sp.total;
            if slot.counterfactual.is_none() {
                slot.counterfactual = sp.counterfactual;
            }
        }
    }

    /// Provenance of one spec.
    pub fn get(&self, spec: &Spec) -> Option<&SpecProvenance> {
        self.specs.get(spec)
    }

    /// Iterates specs in `Spec` order.
    pub fn iter(&self) -> impl Iterator<Item = (&Spec, &SpecProvenance)> {
        self.specs.iter()
    }

    /// Number of specs with recorded evidence.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no evidence was recorded.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Keeps only the given specs (e.g. the scored ones a spec file
    /// carries).
    pub fn retain_specs(&mut self, keep: impl Fn(&Spec) -> bool) {
        self.specs.retain(|s, _| keep(s));
    }

    /// Computes, for every spec with evidence, what its score becomes when
    /// the top evidence's confidence is removed from `Γ_S` (one bit-exact
    /// occurrence). Called once after all shards merged, with the same
    /// `score_fn` the selection used, so the counterfactual is invariant
    /// across shard layouts.
    pub fn attach_counterfactuals(
        &mut self,
        candidates: &crate::CandidateSet,
        score_fn: crate::ScoreFn,
    ) {
        for (spec, sp) in self.specs.iter_mut() {
            let Some(top) = sp.evidence.first() else {
                continue;
            };
            let Some(gamma) = candidates.confidences.get(spec) else {
                continue;
            };
            let matches = candidates.match_counts.get(spec).copied().unwrap_or(0);
            let mut without: Vec<f32> = gamma.clone();
            if let Some(pos) = without
                .iter()
                .position(|c| c.to_bits() == top.conf.to_bits())
            {
                without.remove(pos);
            }
            sp.counterfactual = Some(Counterfactual {
                dropped_conf: top.conf,
                score: score_fn.score(gamma, matches),
                score_without: score_fn.score(&without, matches),
            });
        }
    }
}

// Manual serde: the per-spec map is keyed by `Spec`, which the vendored
// serde stack cannot use as a JSON map key, so it is flattened into
// (already sorted) pairs — the same scheme the edge model uses.
impl Serialize for ProvenanceIndex {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let specs: Vec<(&Spec, &SpecProvenance)> = self.specs.iter().collect();
        let mut st = ser.serialize_struct("ProvenanceIndex", 1)?;
        st.serialize_field("specs", &specs)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for ProvenanceIndex {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<ProvenanceIndex, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            specs: Vec<(Spec, SpecProvenance)>,
        }
        let raw = Raw::deserialize(de)?;
        Ok(ProvenanceIndex {
            specs: raw.specs.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_lang::MethodId;

    fn spec() -> Spec {
        Spec::RetArg {
            target: MethodId::new("HashMap", "get", 1),
            source: MethodId::new("HashMap", "put", 2),
            x: 2,
        }
    }

    fn rec(file: u64, e1: u32, margin: f32) -> EvidenceRecord {
        EvidenceRecord {
            key: EvidenceKey {
                file,
                e1,
                ..EvidenceKey::default()
            },
            file: format!("f{file}"),
            line_src: 1,
            line_dst: 2,
            kind: "RetArg".into(),
            src_event: "HashMap.put/2@2".into(),
            dst_event: "HashMap.get/1@ret".into(),
            conf: 1.0 / (1.0 + (-margin).exp()),
            margin,
            bias: 0.0,
            contributions: vec![("ctx1 L HashMap.put/2@2".into(), margin)],
        }
    }

    #[test]
    fn cap_keeps_global_top_k_regardless_of_insertion_order() {
        // 2*CAP records inserted in two different orders and via a merge of
        // two halves all retain the same top CAP.
        let n = 2 * EVIDENCE_CAP as u32;
        let records: Vec<EvidenceRecord> =
            (0..n).map(|i| rec(0, i, 0.1 * (i as f32 + 1.0))).collect();

        let mut fwd = ProvenanceIndex::default();
        for r in &records {
            fwd.record(spec(), r.clone());
        }
        let mut rev = ProvenanceIndex::default();
        for r in records.iter().rev() {
            rev.record(spec(), r.clone());
        }
        let mut halves = ProvenanceIndex::default();
        let mut left = ProvenanceIndex::default();
        for r in &records[..records.len() / 2] {
            left.record(spec(), r.clone());
        }
        let mut right = ProvenanceIndex::default();
        for r in &records[records.len() / 2..] {
            right.record(spec(), r.clone());
        }
        halves.merge(left);
        halves.merge(right);

        let json = |ix: &ProvenanceIndex| serde_json::to_string(ix).unwrap();
        assert_eq!(json(&fwd), json(&rev));
        assert_eq!(json(&fwd), json(&halves));

        let sp = fwd.get(&spec()).unwrap();
        assert_eq!(sp.evidence.len(), EVIDENCE_CAP);
        assert_eq!(sp.total, n as u64);
        assert_eq!(sp.overflow(), n as u64 - EVIDENCE_CAP as u64);
        // Strongest first.
        assert_eq!(sp.evidence[0].key.e1, n - 1);
        for w in sp.evidence.windows(2) {
            assert!(w[0].margin.abs() >= w[1].margin.abs());
        }
    }

    #[test]
    fn serde_roundtrip_is_byte_identical() {
        let mut ix = ProvenanceIndex::default();
        for i in 0..5 {
            ix.record(spec(), rec(1, i, -0.3 * (i as f32 + 1.0)));
        }
        ix.record(
            Spec::RetSame {
                method: MethodId::new("DB", "connect", 1),
            },
            rec(2, 0, 2.5),
        );
        let json = serde_json::to_string_pretty(&ix).unwrap();
        let back: ProvenanceIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(json, serde_json::to_string_pretty(&back).unwrap());
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn counterfactual_drops_one_bit_exact_occurrence() {
        let mut ix = ProvenanceIndex::default();
        let r = rec(0, 0, 3.0);
        let conf = r.conf;
        ix.record(spec(), r);

        let mut candidates = crate::CandidateSet::default();
        candidates
            .confidences
            .insert(spec(), vec![conf, conf, 0.25]);
        candidates.match_counts.insert(spec(), 3);
        ix.attach_counterfactuals(&candidates, crate::ScoreFn::TopKAvg(10));

        let cf = ix.get(&spec()).unwrap().counterfactual.clone().unwrap();
        assert_eq!(cf.dropped_conf, conf);
        let expected = (conf as f64 + conf as f64 + 0.25) / 3.0;
        assert!((cf.score - expected).abs() < 1e-9);
        let expected_without = (conf as f64 + 0.25) / 2.0;
        assert!((cf.score_without - expected_without).abs() < 1e-9);
        assert!(cf.score_without < cf.score);
    }
}
