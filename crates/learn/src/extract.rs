//! Candidate extraction over a corpus of event graphs — Alg. 1 of the paper.

use std::collections::BTreeMap;
use uspec_graph::EventGraph;
use uspec_model::EdgeModel;
use uspec_pta::Spec;

use crate::blueprint::{score_blueprints_into, BlueprintExtractor};
use crate::provenance::ProvenanceIndex;

/// Options for candidate extraction.
#[derive(Clone, Debug)]
pub struct ExtractOptions {
    /// Maximum event-graph distance between the receiver events of a call
    /// site pair (§7.1, "Bounded candidate extraction", default 10).
    pub max_receiver_distance: u32,
    /// Skip candidates whose class could not be resolved (`?`), since they
    /// cannot be aggregated meaningfully across files.
    pub skip_unknown_class: bool,
    /// Maximum number of induced edges per match that are scored. The paper
    /// ignores matches inducing more than a single edge; with our smaller
    /// corpus, chained consumers (two induced edges) are common enough that
    /// a small cap retains more signal. Set to 1 for strict Alg. 1
    /// behaviour.
    pub max_induced_edges: usize,
    /// Also extract candidates for the `RetRecv` extension pattern
    /// (builder-style "returns its receiver"); off by default to keep the
    /// paper's hypothesis class.
    pub enable_ret_recv: bool,
}

impl Default for ExtractOptions {
    fn default() -> ExtractOptions {
        ExtractOptions {
            max_receiver_distance: 10,
            skip_unknown_class: true,
            max_induced_edges: 4,
            enable_ret_recv: false,
        }
    }
}

/// Aggregated extraction state: for each candidate `S`, the list `Γ_S` of
/// edge confidences plus bookkeeping counters.
#[derive(Clone, Debug, Default)]
pub struct CandidateSet {
    /// Per-candidate edge-confidence lists (the paper's `Γ_S`).
    pub confidences: BTreeMap<Spec, Vec<f32>>,
    /// Per-candidate number of pattern matches across the corpus.
    pub match_counts: BTreeMap<Spec, usize>,
    /// Matches skipped because they induced zero or more than one edge
    /// (Alg. 1 considers only single-edge matches).
    pub skipped_multi_edge: usize,
    /// Matches skipped because the model has no ψ for the edge's position
    /// pair.
    pub skipped_no_model: usize,
    /// Number of call-site pairs examined (|A_G| summed over graphs).
    pub pairs_examined: usize,
}

impl CandidateSet {
    /// Number of distinct candidate specifications.
    pub fn len(&self) -> usize {
        self.match_counts.len()
    }

    /// Whether no candidates were found.
    pub fn is_empty(&self) -> bool {
        self.match_counts.is_empty()
    }

    /// Merges another extraction (e.g. from a parallel shard).
    pub fn merge(&mut self, other: CandidateSet) {
        for (spec, gs) in other.confidences {
            self.confidences.entry(spec).or_default().extend(gs);
        }
        for (spec, n) in other.match_counts {
            *self.match_counts.entry(spec).or_default() += n;
        }
        self.skipped_multi_edge += other.skipped_multi_edge;
        self.skipped_no_model += other.skipped_no_model;
        self.pairs_examined += other.pairs_examined;
    }

    /// Number of distinct API classes spanned by the candidates.
    pub fn num_classes(&self) -> usize {
        let classes: std::collections::BTreeSet<_> =
            self.match_counts.keys().map(|s| s.class()).collect();
        classes.len()
    }
}

/// Streaming extractor implementing Alg. 1: feed event graphs one at a
/// time, then inspect the [`CandidateSet`].
#[derive(Debug)]
pub struct Extractor<'m> {
    model: &'m EdgeModel,
    opts: ExtractOptions,
    set: CandidateSet,
    provenance: ProvenanceIndex,
    /// Corpus-stable index and name of the file the graphs being added
    /// belong to; see [`Extractor::set_file`].
    file: (u64, String),
}

impl<'m> Extractor<'m> {
    /// Creates an extractor scoring induced edges with `model`.
    pub fn new(model: &'m EdgeModel, opts: ExtractOptions) -> Extractor<'m> {
        Extractor {
            model,
            opts,
            set: CandidateSet::default(),
            provenance: ProvenanceIndex::default(),
            file: (0, String::new()),
        }
    }

    /// Declares which corpus file subsequent [`add_graph`](Extractor::add_graph)
    /// calls belong to, so provenance records carry a stable file identity.
    /// Callers that never set a file get evidence attributed to an unnamed
    /// file 0.
    pub fn set_file(&mut self, index: u64, name: &str) {
        self.file = (index, name.to_owned());
    }

    /// Processes one event graph (the loop body of Alg. 1): enumerates its
    /// pair blueprints, then scores them immediately. Enumeration and
    /// scoring are the exact same code paths the incremental pipeline uses
    /// on cached blueprints, so live and replayed extraction cannot drift.
    pub fn add_graph(&mut self, g: &EventGraph) {
        let mut bp = BlueprintExtractor::new(
            self.opts.clone(),
            self.model.full_contexts(),
            self.model.context_depth(),
        );
        bp.add_graph(g);
        score_blueprints_into(
            self.model,
            self.file.0,
            &self.file.1,
            &bp.finish(),
            &mut self.set,
            &mut self.provenance,
        );
    }

    /// Finishes extraction, keeping only the candidate set.
    pub fn finish(self) -> CandidateSet {
        self.set
    }

    /// Finishes extraction, returning the candidate set together with the
    /// provenance index accumulated alongside it.
    pub fn finish_with_provenance(self) -> (CandidateSet, ProvenanceIndex) {
        (self.set, self.provenance)
    }
}

/// Convenience wrapper running Alg. 1 over a slice of graphs.
pub fn extract_candidates(
    graphs: &[EventGraph],
    model: &EdgeModel,
    opts: &ExtractOptions,
) -> CandidateSet {
    let mut ex = Extractor::new(model, opts.clone());
    for g in graphs {
        ex.add_graph(g);
    }
    ex.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_model::TrainOptions;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph_of(src: &str) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    fn corpus() -> (Vec<EventGraph>, Vec<EventGraph>) {
        // Training graphs: direct getFile/getName chains teach the model
        // that objects produced by getFile are consumed by getName.
        let mut train = Vec::new();
        for _ in 0..15 {
            train.push(graph_of(
                "fn main(db) { f = db.getFile(\"x\"); n = f.getName(); }",
            ));
            train.push(graph_of(
                "fn main(db) { c = db.openConn(\"d\"); c.execute(\"q\"); }",
            ));
        }
        // Candidate graphs: the store/retrieve idiom.
        let cand = vec![
            graph_of(
                r#"
                fn main(db) {
                    map = new HashMap();
                    map.put("key", db.getFile("x"));
                    y = map.get("key");
                    n = y.getName();
                }
                "#,
            ),
            graph_of(
                r#"
                fn main(db) {
                    map = new HashMap();
                    map.put("id", db.getFile("z"));
                    y = map.get("id");
                    n = y.getName();
                }
                "#,
            ),
        ];
        (train, cand)
    }

    #[test]
    fn extracts_and_scores_retarg_candidate() {
        let (train, cand) = corpus();
        let model = EdgeModel::train_on_graphs(&train, &TrainOptions::default());
        let set = extract_candidates(&cand, &model, &ExtractOptions::default());
        let get = uspec_lang::MethodId::new("HashMap", "get", 1);
        let put = uspec_lang::MethodId::new("HashMap", "put", 2);
        let spec = Spec::RetArg {
            target: get,
            source: put,
            x: 2,
        };
        assert_eq!(set.match_counts.get(&spec), Some(&2));
        let gamma = set.confidences.get(&spec).expect("confidences recorded");
        assert_eq!(gamma.len(), 2);
        assert!(
            gamma.iter().all(|&c| c > 0.5),
            "induced edges should be confident: {gamma:?}"
        );
    }

    #[test]
    fn distance_bound_prunes_pairs() {
        let (train, _) = corpus();
        let model = EdgeModel::train_on_graphs(&train, &TrainOptions::default());
        // Receiver events 12 noise calls apart.
        let noise: String = (0..12).map(|i| format!("map.noise{i}();\n")).collect();
        let src = format!(
            r#"
            fn main(db) {{
                map = new HashMap();
                map.put("key", db.getFile("x"));
                {noise}
                y = map.get("key");
            }}
            "#
        );
        let g = graph_of(&src);
        let tight = extract_candidates(
            std::slice::from_ref(&g),
            &model,
            &ExtractOptions {
                max_receiver_distance: 10,
                ..ExtractOptions::default()
            },
        );
        let loose = extract_candidates(
            std::slice::from_ref(&g),
            &model,
            &ExtractOptions {
                max_receiver_distance: 100,
                ..ExtractOptions::default()
            },
        );
        let is_put_get = |s: &Spec| matches!(s, Spec::RetArg { .. });
        assert!(!tight.match_counts.keys().any(is_put_get));
        assert!(loose.match_counts.keys().any(is_put_get));
    }

    #[test]
    fn provenance_records_every_scored_edge() {
        let (train, cand) = corpus();
        let model = EdgeModel::train_on_graphs(&train, &TrainOptions::default());
        let mut ex = Extractor::new(&model, ExtractOptions::default());
        for (i, g) in cand.iter().enumerate() {
            ex.set_file(i as u64, &format!("file{i}.src"));
            ex.add_graph(g);
        }
        let (set, prov) = ex.finish_with_provenance();
        let spec = Spec::RetArg {
            target: uspec_lang::MethodId::new("HashMap", "get", 1),
            source: uspec_lang::MethodId::new("HashMap", "put", 2),
            x: 2,
        };
        let gamma = set.confidences.get(&spec).unwrap();
        let sp = prov.get(&spec).expect("provenance for the candidate");
        assert_eq!(sp.total as usize, gamma.len(), "one record per Γ_S entry");
        assert!(!sp.evidence.is_empty());
        let top = &sp.evidence[0];
        assert!(top.file.starts_with("file"), "{:?}", top.file);
        assert_eq!(top.kind, "RetArg");
        assert!(!top.contributions.is_empty());
        assert!(
            gamma.iter().any(|c| c.to_bits() == top.conf.to_bits()),
            "evidence conf is an actual Γ_S entry"
        );
    }

    #[test]
    fn merge_accumulates() {
        let (train, cand) = corpus();
        let model = EdgeModel::train_on_graphs(&train, &TrainOptions::default());
        let opts = ExtractOptions::default();
        let mut a = extract_candidates(&cand[..1], &model, &opts);
        let b = extract_candidates(&cand[1..], &model, &opts);
        let whole = extract_candidates(&cand, &model, &opts);
        a.merge(b);
        assert_eq!(a.match_counts, whole.match_counts);
        assert_eq!(a.pairs_examined, whole.pairs_examined);
    }

    #[test]
    fn unknown_class_candidates_skipped_by_default() {
        let (train, _) = corpus();
        let model = EdgeModel::train_on_graphs(&train, &TrainOptions::default());
        // `m` is an unannotated parameter: receiver class is `?`.
        let g = graph_of(
            r#"
            fn main(m, db) {
                m.put("k", db.getFile("x"));
                y = m.get("k");
            }
            "#,
        );
        let set = extract_candidates(std::slice::from_ref(&g), &model, &ExtractOptions::default());
        assert!(set.is_empty(), "got {:?}", set.match_counts);
        let keep = extract_candidates(
            std::slice::from_ref(&g),
            &model,
            &ExtractOptions {
                skip_unknown_class: false,
                ..ExtractOptions::default()
            },
        );
        assert!(!keep.is_empty());
    }
}
