//! # uspec-learn
//!
//! Learning API aliasing specifications from event graphs — §5 of the paper.
//!
//! * [`matching`] — the hypothesis class: `RetSame(s)` / `RetArg(t, s, x)`
//!   pattern matching (conditions C1–C4 / C1'–C4') and the edges each match
//!   *induces*.
//! * [`blueprint`] — the model-independent half of Alg. 1: per-file pair
//!   blueprints (pattern matches, induced edges, labeled featurizations)
//!   that any trained model can score later, enabling cached re-scoring
//!   in the incremental pipeline.
//! * [`extract`] — Alg. 1: enumerate same-receiver call-site pairs within a
//!   bounded event-graph distance, instantiate candidates, and query the
//!   probabilistic model for each induced edge's confidence, accumulating
//!   `Γ_S` per candidate.
//! * [`scoring`] — `score(S)` functions (top-k average by default, the
//!   alternatives kept for the §7.2 ablation), ranking and τ-thresholded
//!   selection, with the §5.4 closure applied via
//!   [`uspec_pta::SpecDb`].
//! * [`provenance`] — evidence tracing: per-candidate capped top-k records
//!   of the scored induced edges (file:line, pattern, per-feature logit
//!   contributions) that produced each `Γ_S` entry.
//!
//! The selected [`uspec_pta::SpecDb`] plugs directly into the augmented
//! points-to analysis of `uspec-pta` (§6).

#![warn(missing_docs)]

pub mod blueprint;
pub mod extract;
pub mod matching;
pub mod provenance;
pub mod scoring;

pub use blueprint::{
    score_blueprints, score_blueprints_into, BlueprintExtractor, FileBlueprints, PairBlueprint,
};
pub use extract::{extract_candidates, CandidateSet, ExtractOptions, Extractor};
pub use matching::{induced_edges, match_patterns, PatternMatch};
pub use provenance::{
    Counterfactual, EvidenceKey, EvidenceRecord, ProvenanceIndex, SpecProvenance, EVIDENCE_CAP,
};
pub use scoring::{LearnedSpecs, ScoreFn, ScoredSpec};
// Re-export the spec types for convenience.
pub use uspec_pta::{Spec, SpecDb};
