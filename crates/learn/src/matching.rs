//! Pattern matching and induced edges (§5.1).

use uspec_graph::{EventGraph, EventId, Pos, SiteKind};
use uspec_lang::mir::CallSite;
use uspec_pta::Spec;

/// A successful match of a specification pattern at a call-site pair
/// `(m1, m2)` (with `m2` called before `m1`), together with the
/// instantiated candidate specification.
#[derive(Clone, Debug)]
pub struct PatternMatch {
    /// The later call site (the read, `t` for RetArg).
    pub m1: CallSite,
    /// The earlier call site (the write, `s`).
    pub m2: CallSite,
    /// The instantiated candidate specification `inst(R, m1, m2)`.
    pub spec: Spec,
}

/// Checks conditions (C1)–(C4) for `RetSame` and (C1'),(C2),(C3),(C4') for
/// `RetArg` on a call-site pair, returning every instantiated candidate.
///
/// Preconditions checked here: both sites are API calls with known events.
/// Condition (C3) — `m2` ordered before `m1` — is the caller's
/// responsibility (pairs come from receiver-event edges).
pub fn match_patterns(g: &EventGraph, m1: CallSite, m2: CallSite) -> Vec<PatternMatch> {
    let mut out = Vec::new();
    let (Some(i1), Some(i2)) = (g.site_info(m1), g.site_info(m2)) else {
        return out;
    };
    if i1.kind != SiteKind::ApiCall || i2.kind != SiteKind::ApiCall {
        return out;
    }
    // (C2): same receiver.
    if !g.same_receiver(m1, m2) {
        return out;
    }

    // RetSame: (C1) same identifier, (C4) all arguments equal.
    if i1.method == i2.method {
        let n = i1.method.nargs();
        let all_equal = (1..=n).all(|i| g.equal_args(m1, Pos::Arg(i as u8), m2, Pos::Arg(i as u8)));
        if all_equal {
            out.push(PatternMatch {
                m1,
                m2,
                spec: Spec::RetSame { method: i1.method },
            });
        }
    }

    // RetArg: (C1') nargs(m2) = nargs(m1) + 1, (C4') other args equal.
    if i2.method.nargs() == i1.method.nargs() + 1 {
        let n2 = i2.method.nargs();
        for x in 1..=n2 {
            let before_ok =
                (1..x).all(|i| g.equal_args(m1, Pos::Arg(i as u8), m2, Pos::Arg(i as u8)));
            let after_ok = ((x + 1)..=n2)
                .all(|j| g.equal_args(m1, Pos::Arg((j - 1) as u8), m2, Pos::Arg(j as u8)));
            if before_ok && after_ok {
                out.push(PatternMatch {
                    m1,
                    m2,
                    spec: Spec::RetArg {
                        target: i1.method,
                        source: i2.method,
                        x: x as u8,
                    },
                });
            }
        }
    }
    out
}

/// The edges induced by a pattern match (§5.1, "Induced edges").
///
/// * `RetArg(t, s, x)`: edges from every allocation event of `⟨m2, x⟩` to
///   every child of `⟨m1, ret⟩`.
/// * `RetSame(s)`: edges from every child of `⟨m2, ret⟩` to every child of
///   `⟨m1, ret⟩`.
/// * `RetRecv(m)` (extension): edges from every allocation event of
///   `⟨m1, 0⟩` to every child of `⟨m1, ret⟩`.
pub fn induced_edges(g: &EventGraph, pm: &PatternMatch) -> Vec<(EventId, EventId)> {
    let mut out = Vec::new();
    match pm.spec {
        Spec::RetArg { x, .. } => {
            let Some(arg_ev) = g.event_id(pm.m2, Pos::Arg(x)) else {
                return out;
            };
            let Some(ret_ev) = g.event_id(pm.m1, Pos::Ret) else {
                return out;
            };
            for a in g.alloc_set(arg_ev) {
                for &c in g.children(ret_ev) {
                    out.push((a, c));
                }
            }
        }
        Spec::RetSame { .. } => {
            let (Some(r2), Some(r1)) = (g.event_id(pm.m2, Pos::Ret), g.event_id(pm.m1, Pos::Ret))
            else {
                return out;
            };
            for &c2 in g.children(r2) {
                for &c1 in g.children(r1) {
                    if c1 != c2 {
                        out.push((c2, c1));
                    }
                }
            }
        }
        Spec::RetRecv { .. } => {
            let (Some(recv), Some(ret)) =
                (g.event_id(pm.m1, Pos::Recv), g.event_id(pm.m1, Pos::Ret))
            else {
                return out;
            };
            for a in g.alloc_set(recv) {
                for &c in g.children(ret) {
                    if a != c {
                        out.push((a, c));
                    }
                }
            }
        }
    }
    out
}

/// Matches the `RetRecv` extension pattern at a *single* call site: any API
/// call with both a receiver and a used return value is a candidate; the
/// probabilistic scoring of its induced edges does the filtering.
pub fn match_ret_recv(g: &EventGraph, m: CallSite) -> Option<PatternMatch> {
    let info = g.site_info(m)?;
    if info.kind != SiteKind::ApiCall {
        return None;
    }
    g.event_id(m, Pos::Recv)?;
    g.event_id(m, Pos::Ret)?;
    Some(PatternMatch {
        m1: m,
        m2: m,
        spec: Spec::RetRecv {
            method: info.method,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph_of(src: &str) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    fn site(g: &EventGraph, method: &str, nth: usize) -> CallSite {
        let mut sites: Vec<CallSite> = g
            .api_sites()
            .filter(|(_, i)| i.method.method.as_str() == method)
            .map(|(s, _)| s)
            .collect();
        sites.sort_by_key(|s| (s.node, s.ctx));
        sites[nth]
    }

    #[test]
    fn fig2_matches_retarg_get_put_2() {
        let g = graph_of(
            r#"
            fn main(db) {
                map = new HashMap();
                map.put("key", db.getFile("a"));
                x = map.get("key");
                n = x.getName();
            }
            "#,
        );
        let get = site(&g, "get", 0);
        let put = site(&g, "put", 0);
        let matches = match_patterns(&g, get, put);
        assert_eq!(matches.len(), 1);
        let Spec::RetArg { target, source, x } = matches[0].spec else {
            panic!("expected RetArg, got {:?}", matches[0].spec)
        };
        assert_eq!(target.qualified(), "HashMap.get/1");
        assert_eq!(source.qualified(), "HashMap.put/2");
        assert_eq!(x, 2);

        // The induced edge is exactly ℓ of Fig. 3:
        // ⟨getFile,ret⟩ → ⟨getName,0⟩.
        let edges = induced_edges(&g, &matches[0]);
        assert_eq!(edges.len(), 1);
        let (a, b) = edges[0];
        let ea = g.event(a);
        let eb = g.event(b);
        assert_eq!(
            g.site_info(ea.site).unwrap().method.method.as_str(),
            "getFile"
        );
        assert_eq!(ea.pos, Pos::Ret);
        assert_eq!(
            g.site_info(eb.site).unwrap().method.method.as_str(),
            "getName"
        );
        assert_eq!(eb.pos, Pos::Recv);
    }

    #[test]
    fn different_keys_do_not_match() {
        let g = graph_of(
            r#"
            fn main(db) {
                map = new HashMap();
                map.put("k1", db.getFile("a"));
                x = map.get("k2");
                n = x.getName();
            }
            "#,
        );
        let matches = match_patterns(&g, site(&g, "get", 0), site(&g, "put", 0));
        assert!(matches.is_empty(), "got {matches:?}");
    }

    #[test]
    fn different_receivers_do_not_match() {
        let g = graph_of(
            r#"
            fn main(db) {
                m1 = new HashMap();
                m2 = new HashMap();
                m1.put("k", db.getFile("a"));
                x = m2.get("k");
            }
            "#,
        );
        let matches = match_patterns(&g, site(&g, "get", 0), site(&g, "put", 0));
        assert!(matches.is_empty());
    }

    #[test]
    fn ret_same_matches_repeated_calls() {
        let g = graph_of(
            r#"
            fn main(view) {
                a = view.findViewById(7);
                b = view.findViewById(7);
                a.show();
                b.show();
            }
            "#,
        );
        let m2 = site(&g, "findViewById", 0);
        let m1 = site(&g, "findViewById", 1);
        let matches = match_patterns(&g, m1, m2);
        assert_eq!(matches.len(), 1);
        assert!(matches[0].spec.to_string().contains("RetSame"));
        // Induced: ⟨find(0),ret⟩'s child ⟨show,0⟩ → ⟨find(1),ret⟩'s child.
        let edges = induced_edges(&g, &matches[0]);
        assert_eq!(edges.len(), 1);
    }

    #[test]
    fn ret_same_different_args_do_not_match() {
        let g = graph_of(
            r#"
            fn main(view) {
                a = view.findViewById(7);
                b = view.findViewById(8);
            }
            "#,
        );
        let matches = match_patterns(&g, site(&g, "findViewById", 1), site(&g, "findViewById", 0));
        assert!(matches.is_empty());
    }

    #[test]
    fn zero_arg_ret_same_matches() {
        // next()/next() structurally matches RetSame — the probabilistic
        // scoring is what filters it out, not the matcher.
        let g = graph_of(
            r#"
            fn main(it) {
                a = it.next();
                b = it.next();
                a.use1();
                b.use2();
            }
            "#,
        );
        let matches = match_patterns(&g, site(&g, "next", 1), site(&g, "next", 0));
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn multiple_x_positions_all_instantiate() {
        let g = graph_of(
            r#"
            fn main(db) {
                m = new Table();
                m.store("k", "k");
                x = m.fetch("k");
            }
            "#,
        );
        let matches = match_patterns(&g, site(&g, "fetch", 0), site(&g, "store", 0));
        let xs: Vec<u8> = matches
            .iter()
            .filter_map(|m| match m.spec {
                Spec::RetArg { x, .. } => Some(x),
                _ => None,
            })
            .collect();
        assert_eq!(xs, vec![1, 2], "both argument positions are candidates");
    }
}

#[cfg(test)]
mod ret_recv_tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph_of(src: &str) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    #[test]
    fn builder_call_matches_ret_recv() {
        let g = graph_of(
            r#"
            fn main() {
                sb = new SB();
                b = sb.append("a");
                b.use1();
            }
            "#,
        );
        let append = g
            .api_sites()
            .find(|(_, i)| i.method.method.as_str() == "append")
            .map(|(s, _)| s)
            .unwrap();
        let pm = match_ret_recv(&g, append).expect("matches");
        assert!(matches!(pm.spec, Spec::RetRecv { .. }));
        // Induced edge: ⟨newSB,ret⟩ → ⟨use1,0⟩.
        let edges = induced_edges(&g, &pm);
        assert_eq!(edges.len(), 1);
        let (a, b) = edges[0];
        assert_eq!(
            g.site_info(g.event(a).site).unwrap().method.method.as_str(),
            "<new>"
        );
        assert_eq!(g.event(b).pos, Pos::Recv);
    }

    #[test]
    fn unused_return_does_not_match_ret_recv() {
        let g = graph_of(
            r#"
            fn main() {
                sb = new SB();
                sb.clear();
            }
            "#,
        );
        let clear = g
            .api_sites()
            .find(|(_, i)| i.method.method.as_str() == "clear")
            .map(|(s, _)| s)
            .unwrap();
        // clear() returns a value object per the API-unaware assumption,
        // but nothing consumes it: no ⟨m,ret⟩ consumers means no induced
        // edges; whether it "matches" depends on ret event presence.
        if let Some(pm) = match_ret_recv(&g, clear) {
            assert!(induced_edges(&g, &pm).is_empty());
        }
    }

    #[test]
    fn static_calls_never_match_ret_recv() {
        let g = graph_of("fn main() { a = DB.connect(\"dsn\"); a.use1(); }");
        let connect = g
            .api_sites()
            .find(|(_, i)| i.method.method.as_str() == "connect")
            .map(|(s, _)| s)
            .unwrap();
        assert!(match_ret_recv(&g, connect).is_none(), "no receiver event");
    }
}

#[cfg(test)]
mod multi_key_matching_tests {
    use super::*;
    use uspec_graph::{build_event_graph, GraphOptions};
    use uspec_lang::lower::{lower_program, LowerOptions};
    use uspec_lang::parser::parse;
    use uspec_lang::registry::ApiTable;
    use uspec_pta::{Pta, PtaOptions, SpecDb};

    fn graph_of(src: &str) -> EventGraph {
        let program = parse(src).unwrap();
        let body = lower_program(&program, &ApiTable::new(), &LowerOptions::default())
            .unwrap()
            .pop()
            .unwrap();
        let pta = Pta::run(&body, &SpecDb::empty(), &PtaOptions::default());
        build_event_graph(&body, &pta, &GraphOptions::default())
    }

    fn sites(g: &EventGraph, m: &str) -> Vec<CallSite> {
        let mut out: Vec<CallSite> = g
            .api_sites()
            .filter(|(_, i)| i.method.method.as_str() == m)
            .map(|(s, _)| s)
            .collect();
        out.sort_by_key(|s| s.node);
        out
    }

    #[test]
    fn safeconfigparser_style_x3_match() {
        // set(section, option, value) / get(section, option): the C4'
        // conditions pair positions (1,1) and (2,2); x = 3.
        let g = graph_of(
            r#"
            fn main(db) {
                c = new Cfg();
                c.set("sec", "opt", db.make());
                v = c.get("sec", "opt");
            }
            "#,
        );
        let matches = match_patterns(&g, sites(&g, "get")[0], sites(&g, "set")[0]);
        let xs: Vec<u8> = matches
            .iter()
            .filter_map(|m| match m.spec {
                Spec::RetArg { x, .. } => Some(x),
                _ => None,
            })
            .collect();
        assert_eq!(xs, vec![3]);
    }

    #[test]
    fn wrong_section_breaks_x3_match() {
        let g = graph_of(
            r#"
            fn main(db) {
                c = new Cfg();
                c.set("sec", "opt", db.make());
                v = c.get("other", "opt");
            }
            "#,
        );
        let matches = match_patterns(&g, sites(&g, "get")[0], sites(&g, "set")[0]);
        assert!(matches.is_empty(), "got {matches:?}");
    }
}
